"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments that lack the ``wheel`` package (legacy editable
installs go through ``setup.py develop``, which needs this file).
"""

from setuptools import setup

setup()
