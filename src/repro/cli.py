"""Command-line interface: run the paper's experiments from a terminal.

Usage (after ``pip install -e .``)::

    python -m repro throughput --threads 1 2 4 8 --ops 150
    python -m repro rank --betas 1.0 0.5 0.25
    python -m repro sssp --threads 1 4 8 --graph-size 2000
    python -m repro process --n 16 --beta 0.5 --steps 20000
    python -m repro divergence --n 16 --steps 40000
    python -m repro potential --n 16 --beta 1.0 --steps 20000
    python -m repro graph-choice --n 36
    python -m repro sweep --backend both --replicas 64 --steps 20000
    python -m repro worker --queue-dir /shared/q --betas 1.0 0.5 --seeds 4
    python -m repro serve --shards 4 --workers 4 --scaling 1 2 4

Every subcommand prints a paper-style table and, where a curve is the
point, an ASCII chart.  All experiments accept ``--seed`` for exact
reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.ascii_plot import line_chart
from repro.bench.tables import format_table
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed (default 1)")


def _add_sweep_grid_args(p: argparse.ArgumentParser) -> None:
    """The sweep-grid arguments shared by ``sweep`` and ``worker``.

    Both subcommands must expand *identical* grids from identical
    arguments — cache keys and queue cell keys are derived from them, so
    a ``worker`` invocation with the same flags as a ``sweep`` addresses
    the same cells.
    """
    p.add_argument(
        "--backend",
        choices=["reference", "vector", "both"],
        default="vector",
        help="'both' times the backends head to head and KS-tests parity",
    )
    p.add_argument("--n", type=int, default=256, help="number of queues")
    p.add_argument("--betas", type=float, nargs="+", default=[1.0])
    p.add_argument("--gamma", type=float, default=0.0, help="insertion bias bound")
    p.add_argument("--replicas", type=int, default=64)
    p.add_argument("--prefill", type=int, default=16384)
    p.add_argument("--steps", type=int, default=20000)
    p.add_argument(
        "--ref-replicas",
        type=int,
        default=None,
        help="reference-side replicas when timing 'both' (default min(replicas, 8))",
    )
    p.add_argument(
        "--oracle",
        action="store_true",
        help="score rows against the exact stationary rank law "
        "(oracle_mean/oracle_ks/oracle_mean_err columns)",
    )
    p.add_argument("--json", type=str, default=None, help="write rows as JSON here")
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="run root seeds seed..seed+N-1 as independent sweep cells (default 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'The Power of Choice in Priority Scheduling'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("throughput", help="Figure 1: simulated throughput vs threads")
    p.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--ops", type=int, default=150, help="insert+delete pairs per thread")
    p.add_argument("--prefill", type=int, default=4000)
    p.add_argument(
        "--contenders",
        nargs="+",
        default=["mq1.0", "mq0.5", "lj", "klsm"],
        help="any of: mq<beta>, lj, klsm, spray",
    )
    _add_seed(p)

    p = sub.add_parser("rank", help="Figure 2: mean rank vs beta (concurrent model)")
    p.add_argument("--betas", type=float, nargs="+", default=[1.0, 0.75, 0.5, 0.25])
    p.add_argument("--queues", type=int, default=8)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--prefill", type=int, default=20000)
    p.add_argument("--ops", type=int, default=1000)
    _add_seed(p)

    p = sub.add_parser("sssp", help="Figure 3: simulated parallel Dijkstra")
    p.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--graph-size", type=int, default=2000)
    p.add_argument("--betas", type=float, nargs="+", default=[1.0, 0.5])
    _add_seed(p)

    p = sub.add_parser("process", help="sequential (1+beta) process statistics")
    p.add_argument("--n", type=int, default=16, help="number of queues")
    p.add_argument("--beta", type=float, default=1.0)
    p.add_argument("--gamma", type=float, default=0.0, help="insertion bias bound")
    p.add_argument("--prefill", type=int, default=20000)
    p.add_argument("--steps", type=int, default=20000)
    _add_seed(p)

    p = sub.add_parser("divergence", help="Theorem 6: single vs two choice over time")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--prefill", type=int, default=40000)
    p.add_argument("--steps", type=int, default=40000)
    _add_seed(p)

    p = sub.add_parser("potential", help="Theorem 3: Gamma potential over time")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--beta", type=float, default=1.0)
    p.add_argument("--steps", type=int, default=20000)
    p.add_argument("--alpha", type=float, default=None)
    _add_seed(p)

    p = sub.add_parser("graph-choice", help="Section 6: the process on graphs")
    p.add_argument("--n", type=int, default=36)
    p.add_argument("--prefill", type=int, default=10000)
    p.add_argument("--steps", type=int, default=10000)
    _add_seed(p)

    p = sub.add_parser(
        "sweep",
        help="replica sweep of the (1+beta) process: reference vs vector backend",
    )
    _add_sweep_grid_args(p)
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan (beta x seed) cells out across N worker processes (default serial)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="resumable result cache: completed cells persist here and are "
        "reused on re-run (crash/Ctrl-C safe)",
    )
    p.add_argument(
        "--manifest",
        type=str,
        default=None,
        help="write the run manifest (grid, cache hits, per-cell wall time, "
        "git SHA) as JSON here; defaults to <json>.manifest.json when --json is set",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="give each failing cell up to N extra attempts (exponential "
        "backoff with deterministic jitter; TypeError/ValueError are fatal "
        "and never retried)",
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell soft timeout in seconds: an over-budget cell counts "
        "as a failed attempt (parallel mode abandons it and respawns the "
        "worker pool; serial mode checks after the cell returns)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="whole-sweep deadline in seconds; cells still unfinished when "
        "it expires fail with SweepDeadlineExceeded",
    )
    p.add_argument(
        "--on-error",
        choices=["raise", "quarantine"],
        default="raise",
        help="'quarantine' records cells that exhaust their attempts in the "
        "manifest's failures section and keeps sweeping; 'raise' aborts on "
        "the first exhausted cell.  Exit codes: 0 = every cell completed "
        "(and, with --backend both, parity held); 1 = quarantined cells "
        "(the summary line reports quarantined=N) or a parity failure",
    )
    p.add_argument(
        "--max-pool-restarts",
        type=int,
        default=3,
        help="worker-pool rebuild budget after crashed workers or hung cells",
    )
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="JSON fault-injection plan chaos-testing the sweep itself "
        "(see repro.orchestrate.policy.SweepFaultPlan; used by CI)",
    )
    _add_seed(p)

    p = sub.add_parser(
        "worker",
        help="drain one worker's share of a multi-host sweep from a shared "
        "queue directory (start the same command on every machine)",
    )
    _add_sweep_grid_args(p)
    p.add_argument(
        "--queue-dir",
        type=str,
        required=True,
        help="queue directory on a filesystem every worker can reach (NFS "
        "or local); created by the first worker, validated by the rest",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds without heartbeats before a cell's lease counts as "
        "stale and another worker may take it over (default 30; keep well "
        "above --heartbeat plus worst-case clock skew on the shared fs)",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        help="lease renewal interval in seconds (default lease-ttl/3)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="idle poll interval while waiting on other workers' leases",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="queue-wide attempt budget per cell: a cell that fails this "
        "many attempts (across distinct workers when several run) is "
        "quarantined for everyone",
    )
    p.add_argument(
        "--worker-id",
        type=str,
        default=None,
        help="stable worker name for leases and the shard manifest "
        "(default host-pid-suffix)",
    )
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="JSON fault-injection plan; kinds kill/zombie/pause_heartbeat "
        "exercise the lease protocol itself (used by CI)",
    )
    p.add_argument(
        "--manifest",
        type=str,
        default=None,
        help="also write the queue-wide *merged* manifest here once the "
        "queue is drained (per-worker shard manifests always land in "
        "<queue-dir>/manifests/)",
    )
    p.add_argument(
        "--gc-tmp-age",
        type=float,
        default=3600.0,
        help="on startup, reap cache temp files older than this many "
        "seconds (orphans of SIGKILLed workers; default 3600)",
    )
    _add_seed(p)

    p = sub.add_parser(
        "serve",
        help="live sharded MultiQueue over shared memory: real processes, real cores",
    )
    p.add_argument("--shards", type=int, default=4, help="shard-owner processes")
    p.add_argument("--workers", type=int, default=4, help="loadgen processes")
    p.add_argument("--ops", type=int, default=20000, help="offered operations")
    p.add_argument("--prefill", type=int, default=2048)
    p.add_argument("--beta", type=float, default=0.5)
    p.add_argument("--gamma", type=float, default=0.0, help="insertion bias bound")
    p.add_argument("--policy", choices=["mq", "single", "rr"], default="mq")
    p.add_argument(
        "--mode", choices=["poisson", "onoff", "diurnal", "trace"], default="poisson"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="aggregate offered ops/s (0 = closed throttle, as fast as possible)",
    )
    p.add_argument("--on-s", type=float, default=0.5, help="onoff: burst length")
    p.add_argument("--off-s", type=float, default=0.5, help="onoff: quiet length")
    p.add_argument("--burst-factor", type=float, default=8.0)
    p.add_argument("--period-s", type=float, default=4.0, help="diurnal period")
    p.add_argument(
        "--trace", type=str, default=None, help="arrival trace file (seconds per line)"
    )
    p.add_argument(
        "--scaling",
        type=int,
        nargs="+",
        default=None,
        metavar="SHARDS",
        help="rerun the same load at each shard count and report speedup",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="cross-validate the rank-vs-beta shape against the simulator "
        "(exit 1 on shape disagreement)",
    )
    p.add_argument(
        "--betas",
        type=float,
        nargs="+",
        default=[0.0, 0.5, 1.0],
        help="beta grid for --validate",
    )
    p.add_argument(
        "--supervise",
        action="store_true",
        help="respawn crashed shard owners from their durable "
        "snapshot+journal state (epoch-fenced takeovers)",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="standing chaos harness: seeded kill/stall/zombie schedule "
        "against the live cluster, with the journal-based conservation "
        "audit (implies --supervise; exit 1 on any violation)",
    )
    p.add_argument("--kills", type=int, default=3, help="chaos: SIGKILLs to inject")
    p.add_argument(
        "--stalls", type=int, default=0,
        help="chaos: transient SIGSTOP/SIGCONT stalls to inject",
    )
    p.add_argument(
        "--zombies", type=int, default=1,
        help="chaos: owners left SIGSTOPped until the supervisor fences "
        "them awake",
    )
    p.add_argument(
        "--chaos-seed", type=int, default=None,
        help="fault-schedule seed (default: --seed)",
    )
    p.add_argument(
        "--chaos-start-s", type=float, default=0.25,
        help="chaos: first-fault offset after traffic starts",
    )
    p.add_argument(
        "--chaos-window-s", type=float, default=1.2,
        help="chaos: faults are spread over this many seconds",
    )
    p.add_argument(
        "--dead-after-s", type=float, default=None,
        help="heartbeat staleness treated as owner death "
        "(default 2.0, or 0.35 under --chaos)",
    )
    p.add_argument(
        "--chaos-manifest", type=str, default=None,
        help="write the executed fault schedule (the chaos manifest) "
        "to this JSON file",
    )
    p.add_argument("--json", type=str, default=None, help="write raw result JSON here")
    _add_seed(p)

    p = sub.add_parser(
        "chaos",
        help="chaos engine: run the MultiQueue under injected faults and audit invariants",
    )
    p.add_argument("--queues", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument(
        "--steps", type=int, default=4000, help="total operations across all threads"
    )
    p.add_argument("--prefill", type=int, default=4000)
    p.add_argument("--beta", type=float, default=1.0)
    p.add_argument("--delete-locking", choices=["better", "both"], default="better")
    p.add_argument("--crash", type=int, default=1, help="workers to crash-stop")
    p.add_argument(
        "--crash-release-locks",
        action="store_true",
        help="crashed workers release their locks (graceful crash)",
    )
    p.add_argument("--stalls", type=int, default=1, help="targeted lock-holder stalls")
    p.add_argument("--stall-cycles", type=float, default=200_000.0)
    p.add_argument("--preempt-prob", type=float, default=0.002)
    p.add_argument("--preempt-cycles", type=float, default=50_000.0)
    p.add_argument("--spike-prob", type=float, default=0.001)
    p.add_argument("--spike-cycles", type=float, default=5_000.0)
    p.add_argument(
        "--lease", type=float, default=0.0, help="lock lease in cycles (0 = off)"
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=5e6,
        help="livelock watchdog budget in cycles (0 = off)",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    _add_seed(p)

    p = sub.add_parser(
        "sanitize",
        help="run a workload/chaos scenario under happens-before race detection",
    )
    p.add_argument(
        "--scenario",
        choices=["workload", "chaos"],
        default="workload",
        help="plain workload, or faulted run with lock leases/revocation",
    )
    p.add_argument(
        "--variant",
        choices=["lock-better", "lock-both", "broken-nolock"],
        default="lock-better",
        help="locking discipline (broken-nolock is the known-racy mutant)",
    )
    p.add_argument("--seeds", type=int, default=1, help="run seeds 1..N (default 1)")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--ops", type=int, default=100, help="insert+delete pairs per thread")
    p.add_argument("--queues", type=int, default=4)
    p.add_argument("--prefill", type=int, default=500)
    p.add_argument(
        "--lease", type=float, default=0.0, help="lock lease in cycles (0 = scenario default)"
    )
    _add_seed(p)

    p = sub.add_parser(
        "lint",
        help="static syscall-discipline lint over src/repro/concurrent (SAN101-104)",
    )
    p.add_argument(
        "paths", nargs="*", default=None, help="files/dirs to lint (default: the models)"
    )
    p.add_argument(
        "--json", action="store_true", help="emit violations/suppressions as JSON"
    )

    p = sub.add_parser(
        "check",
        help="whole-program determinism + lock-order checker (DET101-106, SAN105-106)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/dirs to analyze (default: the installed repro tree)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline suppression file; stale entries fail the run",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    p.add_argument(
        "--reason",
        default="baselined pre-existing finding; fix before extending this code",
        help="reason recorded on entries written by --write-baseline",
    )

    sub.add_parser("experiments", help="list all reproduced experiments")

    p = sub.add_parser(
        "report", help="print all archived benchmark tables (benchmarks/results/)"
    )
    p.add_argument("--ids", nargs="*", default=None, help="limit to experiment ids")

    return parser


# -- subcommand implementations ---------------------------------------------


def _contender_factory(spec: str, threads: int):
    from repro.concurrent import ConcurrentMultiQueue, KLSMPQ, LindenJonssonPQ, SprayListPQ

    if spec.startswith("mq"):
        beta = float(spec[2:]) if len(spec) > 2 else 1.0

        def make(engine, rng):
            return ConcurrentMultiQueue(engine, n_queues=2 * threads, beta=beta, rng=rng)

        return make
    if spec == "lj":
        return lambda engine, rng: LindenJonssonPQ(engine, rng=rng)
    if spec == "klsm":
        return lambda engine, rng: KLSMPQ(engine, relaxation=256, rng=rng)
    if spec == "spray":
        return lambda engine, rng: SprayListPQ(engine, n_threads=threads, rng=rng)
    raise SystemExit(f"unknown contender {spec!r} (use mq<beta>, lj, klsm, spray)")


def cmd_throughput(args) -> None:
    from repro.sim.workload import run_throughput_experiment

    rows = []
    for threads in args.threads:
        row = {"threads": threads}
        for spec in args.contenders:
            res = run_throughput_experiment(
                _contender_factory(spec, threads),
                threads,
                args.ops,
                prefill=args.prefill,
                seed=args.seed,
            )
            row[spec] = res.throughput
        rows.append(row)
    print(format_table(rows, title="throughput (ops/Mcycle) vs threads", floatfmt=".0f"))
    series = {spec: [r[spec] for r in rows] for spec in args.contenders}
    print()
    print(line_chart(args.threads, series, title="throughput curves"))


def cmd_rank(args) -> None:
    from repro.concurrent import ConcurrentMultiQueue, OpRecorder
    from repro.sim.engine import Engine
    from repro.sim.workload import AlternatingWorkload

    rows = []
    for beta in args.betas:
        rec = OpRecorder()
        eng = Engine()
        model = ConcurrentMultiQueue(
            eng, args.queues, beta=beta, rng=args.seed, recorder=rec
        )
        model.prefill(np.random.default_rng(args.seed).integers(2**40, size=args.prefill))
        AlternatingWorkload(model, args.threads, args.ops, rng=args.seed + 1).spawn_on(eng)
        eng.run()
        trace = rec.rank_trace()
        rows.append(
            {
                "beta": beta,
                "mean rank": trace.mean_rank(),
                "p99 rank": trace.quantile(0.99),
                "max rank": trace.max_rank(),
            }
        )
    print(
        format_table(
            rows,
            title=f"mean rank vs beta ({args.queues} queues, {args.threads} threads)",
        )
    )
    print()
    print(
        line_chart(
            args.betas,
            {"mean rank": [r["mean rank"] for r in rows]},
            title="rank vs beta (log y)",
            logy=True,
        )
    )


def cmd_sssp(args) -> None:
    from repro.concurrent import ConcurrentMultiQueue
    from repro.graphs import dijkstra, parallel_dijkstra, road_network

    graph = road_network(args.graph_size, rng=args.seed)
    reference = dijkstra(graph, 0)
    rows = []
    for threads in args.threads:
        row = {"threads": threads}
        for beta in args.betas:

            def make(engine, rng, threads=threads, beta=beta):
                return ConcurrentMultiQueue(
                    engine, n_queues=2 * threads, beta=beta, rng=rng
                )

            res = parallel_dijkstra(graph, 0, make, n_threads=threads, seed=args.seed)
            if not np.array_equal(res.dist, reference.dist):
                raise SystemExit("internal error: distances diverged")
            row[f"beta={beta} Mcyc"] = res.sim_time / 1e6
        rows.append(row)
    print(
        format_table(
            rows,
            title=(
                f"parallel SSSP on synthetic road network "
                f"({graph.n_vertices} vertices); lower is better"
            ),
        )
    )


def cmd_process(args) -> None:
    from repro.core.policies import biased_insert_probs

    pi = biased_insert_probs(args.n, args.gamma) if args.gamma else None
    proc = SequentialProcess(
        args.n, args.prefill + args.steps, beta=args.beta, insert_probs=pi, rng=args.seed
    )
    run = proc.run_steady_state_sampled(args.prefill, args.steps, sample_every=max(args.steps // 20, 1))
    summary = run.trace.summary()
    summary.update(
        {
            "n": args.n,
            "beta": args.beta,
            "gamma": args.gamma,
            "E[max top rank]": float(run.max_top_ranks.mean()),
            "bound n/beta^2": args.n / args.beta**2,
        }
    )
    print(format_table([summary], title="sequential (1+beta) process"))
    means = run.trace.windowed_means(max(args.steps // 40, 1))
    print()
    from repro.analysis.ascii_plot import sparkline

    print(f"rank cost over time (should be flat): {sparkline(means, width=60)}")


def cmd_divergence(args) -> None:
    capacity = args.prefill + args.steps
    sample = max(args.steps // 10, 1)
    single = SingleChoiceProcess(args.n, capacity, rng=args.seed)
    run_s = single.run_steady_state_sampled(args.prefill, args.steps, sample_every=sample)
    double = SequentialProcess(args.n, capacity, beta=1.0, rng=args.seed)
    run_d = double.run_steady_state_sampled(args.prefill, args.steps, sample_every=sample)
    rows = [
        {
            "t": int(t),
            "single-choice max rank": int(s),
            "two-choice max rank": int(d),
        }
        for t, s, d in zip(run_s.sample_steps, run_s.max_top_ranks, run_d.max_top_ranks)
    ]
    print(format_table(rows, title="Theorem 6: divergence of the single-choice process"))
    print()
    print(
        line_chart(
            [r["t"] for r in rows],
            {
                "single": [r["single-choice max rank"] for r in rows],
                "two-choice": [r["two-choice max rank"] for r in rows],
            },
            title="max top rank over time",
        )
    )


def cmd_potential(args) -> None:
    from repro.core.exponential import ExponentialTopProcess
    from repro.core.potential import PotentialTracker, recommended_alpha

    proc = ExponentialTopProcess(args.n, beta=args.beta, rng=args.seed)
    alpha = args.alpha if args.alpha is not None else recommended_alpha(args.beta)
    tracker = PotentialTracker(proc, alpha=alpha)
    series = tracker.run(args.steps, sample_every=max(args.steps // 50, 1))
    g = series.gamma_over_n(args.n)
    print(
        format_table(
            [
                {
                    "n": args.n,
                    "beta": args.beta,
                    "alpha": alpha,
                    "mean Gamma/n": float(g.mean()),
                    "max Gamma/n": float(g.max()),
                }
            ],
            title="Theorem 3: Gamma potential (floor 2.0 by AM-GM)",
            floatfmt=".4f",
        )
    )
    from repro.analysis.ascii_plot import sparkline

    print(f"\nGamma(t)/n over time: {sparkline(g, width=60)}")


def cmd_graph_choice(args) -> None:
    from repro.graphs.choice_process import GraphChoiceProcess
    from repro.graphs.generators import complete_graph, cycle_graph, random_regular_graph

    rows = []
    for name, graph in [
        ("cycle", cycle_graph(args.n)),
        ("random 4-regular", random_regular_graph(args.n, 4, rng=args.seed)),
        ("complete", complete_graph(args.n)),
    ]:
        proc = GraphChoiceProcess(graph, args.prefill + args.steps, rng=args.seed)
        trace = proc.run_steady_state(args.prefill, args.steps)
        rows.append(
            {"graph": name, "mean rank": trace.mean_rank(), "max rank": trace.max_rank()}
        )
    print(format_table(rows, title=f"Section 6 graph choice process, n={args.n}"))


def _resolve_sweep_fn(args):
    """Map shared grid args to ``(cell function, fixed kwargs, seeds)``.

    Used by both ``sweep`` and ``worker`` so the two subcommands address
    byte-identical cells (cache keys and queue cell keys are derived
    from exactly these values).
    """
    from repro.vector.sweep import sweep_cell_backend, sweep_cell_compare

    seeds = list(range(args.seed, args.seed + max(args.seeds, 1)))
    common = dict(
        n=args.n,
        prefill=args.prefill,
        steps=args.steps,
        replicas=args.replicas,
        gamma=args.gamma,
        oracle=args.oracle,
    )
    if args.backend == "both":
        fn = sweep_cell_compare
        common["ref_replicas"] = args.ref_replicas
    else:
        fn = sweep_cell_backend
        common["backend"] = args.backend
    return fn, common, seeds


def _load_fault_plan(args):
    if not args.fault_plan:
        return None
    from repro.orchestrate import SweepFaultPlan

    return SweepFaultPlan.load(args.fault_plan)


def _print_sweep_results(args, run) -> None:
    """Shared result rendering for ``sweep`` and ``worker``: the table,
    parity warnings, optional JSON rows, and the quarantine error line
    (which exits 1 — quarantined cells are holes, never silent)."""
    import json

    rows = []
    payload = []
    for cell_result in run.results:
        result = cell_result.payload
        payload.append(result)
        if args.backend == "both":
            for side in ("reference", "vector"):
                rows.append(dict(result[side]))
            rows[-1]["speedup"] = round(result["speedup"], 2)
            rows[-1]["ks_p"] = round(result["ks_p_value"], 4)
            if args.oracle:
                for key in ("oracle_mean", "oracle_ks", "oracle_mean_err"):
                    rows[-1][key] = result[key]
            if not result["parity_ok"]:
                print(
                    f"WARNING: rank-law KS test failed at beta={result['beta']} "
                    f"(p={result['ks_p_value']:.2e})",
                    file=sys.stderr,
                )
        else:
            rows.append(dict(result))
    title = (
        f"replica sweep: n={args.n}, replicas={args.replicas}, "
        f"prefill={args.prefill}, steps={args.steps}"
    )
    if rows:
        columns = list(rows[0].keys())
        for extra in ("speedup", "ks_p", "oracle_mean", "oracle_ks", "oracle_mean_err"):
            if any(extra in r for r in rows) and extra not in columns:
                columns.append(extra)
        print(format_table(rows, columns=columns, title=title))
    else:
        print(f"{title}: no completed cells")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    if run.failures:
        # Partial results were archived above, but the exit code and the
        # summary make the holes impossible to miss in scripts and CI.
        print(
            f"ERROR: quarantined={len(run.failures)} cell(s) failed, "
            f"first: {run.failures[0].summary()}",
            file=sys.stderr,
        )
        raise SystemExit(1)
    if args.backend == "both":
        failed = [r for r in payload if not r["parity_ok"]]
        if failed:
            raise SystemExit(1)


def cmd_sweep(args) -> None:
    from repro.bench.harness import sweep_cells

    fn, common, seeds = _resolve_sweep_fn(args)
    manifest_path = args.manifest
    if manifest_path is None and args.json:
        manifest_path = f"{args.json}.manifest.json"
    fault_hook = _load_fault_plan(args)
    run = sweep_cells(
        fn,
        "beta",
        args.betas,
        seeds,
        workers=args.workers,
        cache_dir=args.cache_dir,
        manifest_path=manifest_path,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        deadline=args.deadline,
        on_error=args.on_error,
        fault_hook=fault_hook,
        max_pool_restarts=args.max_pool_restarts,
        **common,
    )
    if args.workers or args.cache_dir or manifest_path or not run.ok:
        print(f"{run.manifest.describe()}\n")
    if manifest_path:
        print(f"manifest: {manifest_path}")
    _print_sweep_results(args, run)


def cmd_worker(args) -> None:
    from repro.bench.harness import queue_worker

    fn, common, seeds = _resolve_sweep_fn(args)
    report, run = queue_worker(
        fn,
        "beta",
        args.betas,
        seeds,
        queue_dir=args.queue_dir,
        lease_ttl_s=args.lease_ttl,
        heartbeat_s=args.heartbeat,
        max_attempts=args.max_attempts,
        worker_id=args.worker_id,
        fault_plan=_load_fault_plan(args),
        poll_s=args.poll,
        # Each CLI worker is its own process: an injected "kill" fault
        # delivers a real SIGKILL, leaving the lease to go stale.
        allow_sigkill=True,
        gc_tmp_age_s=args.gc_tmp_age,
        merged_manifest_path=args.manifest,
        **common,
    )
    print(
        f"worker {report.worker_id}: claimed {report.cells_claimed}, "
        f"committed {report.cells_committed} "
        f"({report.cache_hits} from cache), "
        f"{report.takeovers} takeover(s), "
        f"{report.zombie_writes_fenced} fenced write(s), "
        f"{report.failures_recorded} failure(s) recorded "
        f"in {report.elapsed_s:.2f}s"
    )
    if run.manifest is not None:
        print(f"{run.manifest.describe()}\n")
    if args.manifest:
        print(f"merged manifest: {args.manifest}")
    _print_sweep_results(args, run)


def cmd_chaos(args) -> None:
    from repro.concurrent import ConcurrentMultiQueue, InvariantAuditor, OpRecorder
    from repro.sim.engine import DeadlockError, Engine, LivelockError
    from repro.sim.faults import (
        CrashStop,
        DelaySpike,
        FaultInjector,
        FaultPlan,
        LockHolderPreempt,
        LockHolderStall,
    )
    from repro.sim.workload import AlternatingWorkload

    ops_per_thread = max(args.steps // (2 * args.threads), 1)
    # Rough per-op cycle figure (Figure 1's single-thread throughput) to
    # place time-triggered faults inside the run without a pilot run.
    horizon = 600.0 * args.steps / args.threads
    faults = []
    for k in range(args.crash):
        faults.append(
            CrashStop(
                at=(k + 1) / (args.crash + 1) * 0.5 * horizon,
                thread=f"worker-{k}",
                release_locks=args.crash_release_locks,
            )
        )
    min_locks = 2 if args.delete_locking == "both" else 1
    for k in range(args.stalls):
        faults.append(
            LockHolderStall(
                at=(k + 1) / (args.stalls + 1) * 0.6 * horizon,
                duration=args.stall_cycles,
                min_locks=min_locks,
            )
        )
    if args.preempt_prob > 0:
        faults.append(LockHolderPreempt(prob=args.preempt_prob, cycles=args.preempt_cycles))
    if args.spike_prob > 0:
        faults.append(DelaySpike(prob=args.spike_prob, cycles=args.spike_cycles))

    recorder = OpRecorder()
    engine = Engine(progress_budget=args.watchdog or None)
    model = ConcurrentMultiQueue(
        engine,
        args.queues,
        beta=args.beta,
        rng=args.seed,
        recorder=recorder,
        delete_locking=args.delete_locking,
        lock_lease=args.lease or None,
    )
    model.prefill(np.random.default_rng(args.seed).integers(2**40, size=args.prefill))
    AlternatingWorkload(model, args.threads, ops_per_thread, rng=args.seed + 1).spawn_on(
        engine
    )
    injector = FaultInjector(FaultPlan(faults, rng=args.fault_seed)).attach(engine)

    print(
        f"chaos: {args.threads} threads x {2 * ops_per_thread} ops, "
        f"{args.queues} queues, locking={args.delete_locking}, "
        f"lease={args.lease or 'off'}, watchdog={args.watchdog or 'off'}"
    )
    print(
        f"plan:  {args.crash} crash(es), {args.stalls} stall(s) of "
        f"{args.stall_cycles:.0f} cycles, preempt p={args.preempt_prob}, "
        f"spike p={args.spike_prob} (fault seed {args.fault_seed})"
    )
    try:
        engine.run()
    except (DeadlockError, LivelockError) as err:
        print(f"\nABORT ({type(err).__name__}): {err}")
        raise SystemExit(1)

    report = InvariantAuditor(model, recorder=recorder, engine=engine).audit()
    completed = sum(
        s.result for s in engine.stats.values() if isinstance(s.result, int)
    )
    trace = recorder.rank_trace()
    row = {
        "completed ops": completed,
        "Mcycles": engine.now / 1e6,
        "mean rank": trace.mean_rank() if len(trace) else float("nan"),
        "max rank": trace.max_rank() if len(trace) else float("nan"),
        "lock fail ratio": model.lock_failure_ratio(),
        "injected stalls": sum(injector.injected_stalls.values())
        + len(injector.fired_stalls),
        "crashes": len(injector.crashed_tids),
    }
    row.update(report.summary())
    print()
    print(format_table([row], title="chaos run under fault injection"))
    for note in report.notes:
        print(f"note: {note}")
    if not report.ok:
        for violation in report.violations:
            print(f"VIOLATION: {violation}")
        raise SystemExit(1)
    print("\ninvariants: all checks passed")


def cmd_sanitize(args) -> None:
    from repro.sanitizer.scenarios import run_sanitized

    seeds = range(args.seed, args.seed + max(args.seeds, 1))
    failures = 0
    rows = []
    for seed in seeds:
        report = run_sanitized(
            scenario=args.scenario,
            variant=args.variant,
            seed=seed,
            n_threads=args.threads,
            ops_per_thread=args.ops,
            n_queues=args.queues,
            prefill=args.prefill,
            lease=args.lease or None,
        )
        row = {"seed": seed, "verdict": "ok" if report.ok else "RACY"}
        row.update(report.summary())
        rows.append(row)
        if not report.ok:
            failures += 1
            print(report.describe())
            print()
    print(
        format_table(
            rows,
            title=(
                f"sanitize: {args.scenario}/{args.variant}, "
                f"{args.threads} threads x {2 * args.ops} ops"
            ),
            floatfmt=".0f",
        )
    )
    if failures:
        print(f"\n{failures}/{len(rows)} seed(s) racy")
        raise SystemExit(1)
    print(f"\nall {len(rows)} seed(s) race-free (given the annotations)")


def cmd_lint(args) -> None:
    import json

    from repro.sanitizer.lint import lint_paths

    report = lint_paths(args.paths or None)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if not report.ok:
        raise SystemExit(1)


def cmd_check(args) -> None:
    import json

    from repro.staticcheck import run_check, write_baseline

    if args.write_baseline:
        report = run_check(args.paths or None)
        write_baseline(args.write_baseline, report.findings, args.reason)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.write_baseline}; "
            f"review the recorded reasons before committing"
        )
        return
    report = run_check(args.paths or None, baseline=args.baseline)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if not report.ok:
        raise SystemExit(1)


def cmd_serve(args) -> None:
    import json

    from repro.service.loadgen import ScheduleSpec
    from repro.service.server import run_scaling_sweep, run_service
    from repro.service.validate import compare_service_and_sim

    spec = ScheduleSpec(
        mode=args.mode,
        ops=args.ops,
        prefill=args.prefill,
        rate=args.rate,
        seed=args.seed,
        on_s=args.on_s,
        off_s=args.off_s,
        burst_factor=args.burst_factor,
        period_s=args.period_s,
        trace_path=args.trace,
    )
    if args.validate:
        result = compare_service_and_sim(
            args.shards,
            args.workers,
            betas=tuple(args.betas),
            ops=args.ops,
            prefill=args.prefill,
            seed=args.seed,
            gamma=args.gamma,
            rate=args.rate or 2000.0,
        )
        rows = [
            {
                "beta": row["beta"],
                "service mean": row["service"]["mean_rank"],
                "sim mean": row["sim"]["mean_rank"],
                "oracle mean": row["oracle_mean"],
                "service p99": row["service"]["p99_rank"],
                "sim p99": row["sim"]["p99_rank"],
                "ks stat": row["ks_stat"],
                "oracle ks": row["oracle_ks"],
            }
            for row in result["rows"]
        ]
        print(
            format_table(
                rows,
                title=f"service vs sim rank shape ({args.shards} shards, "
                f"{args.workers} loadgen workers)",
            )
        )
        print(
            f"\nworst-beta agreement: {result['worst_beta_agreement']}, "
            f"spearman rho: {result['spearman_rho']:.2f}"
        )
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result, fh, indent=2)
        if not result["ordering_agreement"]:
            print("SHAPE DISAGREEMENT: service does not reproduce the sim's rank law")
            raise SystemExit(1)
        print("shape agreement: ok")
        return
    if args.scaling:
        result = run_scaling_sweep(
            args.scaling,
            args.workers,
            spec,
            beta=args.beta,
            gamma=args.gamma,
            policy=args.policy,
            seed=args.seed,
        )
        rows = [
            {
                "shards": row["shards"],
                "ops/s": row["throughput_ops_s"],
                "speedup": row["speedup"],
                "delete p99 ms": row["delete_p99_ms"],
                "mean rank": row["rank"]["mean_rank"] if row["rank"] else float("nan"),
                "torn": row["torn"],
            }
            for row in result["rows"]
        ]
        print(
            format_table(
                rows,
                title=f"throughput scaling, beta={args.beta}, "
                f"{args.workers} loadgen workers",
                floatfmt=".2f",
            )
        )
    else:
        from repro.service.server import AllShardsDeadError

        chaos_spec = None
        if args.chaos:
            from repro.service.supervisor import ChaosSpec

            chaos_spec = ChaosSpec(
                kills=args.kills,
                stalls=args.stalls,
                zombies=args.zombies,
                seed=args.seed if args.chaos_seed is None else args.chaos_seed,
                start_s=args.chaos_start_s,
                window_s=args.chaos_window_s,
            )
        dead_after_s = args.dead_after_s
        if dead_after_s is None:
            dead_after_s = 0.35 if args.chaos else 2.0
        try:
            result = run_service(
                args.shards,
                args.workers,
                spec,
                beta=args.beta,
                gamma=args.gamma,
                policy=args.policy,
                seed=args.seed,
                supervise=args.supervise or args.chaos,
                chaos_spec=chaos_spec,
                dead_after_s=dead_after_s,
            )
        except AllShardsDeadError as err:
            from repro.service.loadgen import EXIT_ALL_SHARDS_DEAD

            record = {
                "error": "all_shards_dead",
                "heartbeat_ages_s": {str(s): age for s, age in err.ages.items()},
                "message": str(err),
            }
            print(json.dumps(record), file=sys.stderr)
            if args.json:
                with open(args.json, "w") as fh:
                    json.dump(record, fh, indent=2)
            raise SystemExit(EXIT_ALL_SHARDS_DEAD)
        headline = {
            "ops/s": result["throughput_ops_s"],
            "wall s": result["wall_s"],
            "insert p99 ms": result["insert_p99_ms"],
            "delete p99 ms": result["delete_p99_ms"],
            "empties": result["empties"],
            "mean rank": result["rank"]["mean_rank"] if result["rank"] else float("nan"),
            "torn": result["audit"]["torn"],
        }
        print(
            format_table(
                [headline],
                title=f"service run: {args.shards} shards, {args.workers} workers, "
                f"beta={args.beta}, policy={args.policy}, mode={args.mode}",
                floatfmt=".2f",
            )
        )
        shard_rows = [
            {
                "shard": row["shard"],
                "inserts": row["inserts"],
                "deletes": row["deletes"],
                "empties": row["empties"],
                "ops/s": result["per_shard_ops_s"][row["shard"]],
            }
            for row in result["per_shard"]
        ]
        print()
        print(format_table(shard_rows, title="per-shard load", floatfmt=".0f"))
        violations = []
        supervision = result.get("supervision")
        if supervision is not None:
            incident_rows = [
                {
                    "shard": inc["shard"],
                    "kind": inc["kind"],
                    "recovery s": inc["recovery_s"] if inc["recovery_s"] else float("nan"),
                    "replayed": inc["replayed"] if inc["replayed"] is not None else 0,
                    "heap": inc["recovered_heap"]
                    if inc["recovered_heap"] is not None
                    else 0,
                    "ok": "yes" if inc["takeover_ok"] else "no",
                }
                for inc in supervision["incidents"]
            ]
            print()
            if incident_rows:
                print(
                    format_table(
                        incident_rows,
                        title=f"recovery incidents ({supervision['takeovers']} takeovers)",
                        floatfmt=".3f",
                    )
                )
            else:
                print("supervision: no incidents")
            conservation = result["conservation"]
            print(
                f"conservation: {'ok' if conservation['ok'] else 'VIOLATED'} "
                f"(events_match={conservation['events_match']}, "
                f"epoch_regressions={conservation['epoch_regressions']}, "
                f"residual_total={conservation['residual_total']})"
            )
            post = result.get("post_recovery")
            if post is not None and post.get("oracle_ks") is not None:
                print(
                    f"post-recovery: n={post['n_ranks']}, "
                    f"oracle ks={post['oracle_ks']:.3f}, "
                    f"oracle mean err={post['oracle_mean_err']:.3f}"
                )
            if args.chaos:
                if not conservation["ok"]:
                    violations.append("conservation violated")
                if conservation["epoch_regressions"]:
                    violations.append(
                        f"{conservation['epoch_regressions']} unfenced zombie commits"
                    )
                if result["audit"]["torn"]:
                    violations.append(f"{result['audit']['torn']} torn slots")
                if result["audit"]["pending"]:
                    violations.append(
                        f"{result['audit']['pending']} pending journal entries"
                    )
                if supervision["takeovers"] < 1:
                    violations.append("no takeovers observed")
        if args.chaos_manifest and result.get("chaos") is not None:
            with open(args.chaos_manifest, "w") as fh:
                json.dump(result["chaos"], fh, indent=2)
            print(f"chaos manifest written to {args.chaos_manifest}")
        if any(code == 4 for code in result.get("loadgen_exitcodes", [])):
            from repro.service.loadgen import EXIT_ALL_SHARDS_DEAD

            if args.json:
                result.pop("rank_values", None)
                with open(args.json, "w") as fh:
                    json.dump(result, fh, indent=2)
            print("a load generator found every shard dead", file=sys.stderr)
            raise SystemExit(EXIT_ALL_SHARDS_DEAD)
        if violations:
            if args.json:
                result.pop("rank_values", None)
                with open(args.json, "w") as fh:
                    json.dump(result, fh, indent=2)
            print("chaos violations: " + "; ".join(violations), file=sys.stderr)
            raise SystemExit(1)
    if args.json:
        result.pop("rank_values", None)
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)


def cmd_experiments(args) -> None:
    from repro.bench.registry import coverage_report

    rows = coverage_report()
    print(format_table(rows, title="Reproduced experiments (see DESIGN.md)"))


def cmd_report(args) -> None:
    import pathlib

    from repro.bench.registry import all_experiments, get_experiment

    specs = (
        [get_experiment(i) for i in args.ids] if args.ids else all_experiments()
    )
    results_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    missing = []
    for spec in specs:
        path = results_dir / f"{spec.result_name}.txt"
        print(f"===== {spec.experiment_id} ({spec.paper_ref}) =====")
        if path.exists():
            print(path.read_text().rstrip())
        else:
            print("(no archived result; run pytest benchmarks/ --benchmark-only)")
            missing.append(spec.experiment_id)
        print()
    if missing:
        print(f"missing results for: {', '.join(missing)}")


_COMMANDS = {
    "throughput": cmd_throughput,
    "rank": cmd_rank,
    "sssp": cmd_sssp,
    "process": cmd_process,
    "divergence": cmd_divergence,
    "potential": cmd_potential,
    "graph-choice": cmd_graph_choice,
    "sweep": cmd_sweep,
    "worker": cmd_worker,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "sanitize": cmd_sanitize,
    "lint": cmd_lint,
    "check": cmd_check,
    "experiments": cmd_experiments,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
