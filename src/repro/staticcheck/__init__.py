"""Whole-program static checker for determinism and lock ordering.

``repro check`` (see :mod:`repro.staticcheck.driver`) parses the
``repro`` source tree — never imports it — builds a call graph with
per-function effect summaries propagated to fixpoint, and verifies two
whole-program contracts the runtime silently depends on:

* **cell purity** (DET101–DET106): every orchestrator sweep cell and
  core/vector entry point is a deterministic function of
  ``(params, seed)`` — no unseeded entropy, no wall-clock in cached
  payloads, no environment reads, no hash-salted values or set-order
  dependence, no module-global mutation from worker code;
* **lock ordering** (SAN105–SAN106): blocking lock acquisitions stay
  deadlock-free even when they hide behind helper calls, via an
  interprocedural lockset check and a static lock-acquisition graph
  with cycle detection.

See ``docs/staticcheck.md`` for the rule table and baseline workflow.
"""

from repro.staticcheck.callgraph import Project
from repro.staticcheck.driver import load_project, run_check
from repro.staticcheck.report import (
    CheckReport,
    Finding,
    RULES,
    SuppressedFinding,
    load_baseline,
    write_baseline,
)

__all__ = [
    "CheckReport",
    "Finding",
    "Project",
    "RULES",
    "SuppressedFinding",
    "load_baseline",
    "load_project",
    "run_check",
    "write_baseline",
]
