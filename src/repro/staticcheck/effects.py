"""The effect lattice: what a function *does* that purity cares about.

Every function in the analyzed tree gets a summary of its **direct**
effects — facts established by looking at its own AST, before any
interprocedural propagation.  The lattice is a powerset of seven flags:

==============  =============================================================
ENTROPY         draws OS entropy: ``np.random.default_rng()`` / unseeded
                ``SeedSequence``, the legacy ``numpy.random`` global RNG,
                the stdlib ``random`` module, ``uuid4``, ``os.urandom``,
                ``secrets``, or ``as_generator(None)`` / a literal-``None``
                seed handed to ``spawn_seeds``
WALL_CLOCK      reads the wall clock (``time.time``/``perf_counter``/
                ``monotonic``/``process_time`` and ``datetime`` equivalents)
ENV             reads the process environment or host identity
                (``os.environ``, ``os.getenv``, ``socket.gethostname``, ...)
FILESYSTEM      touches the filesystem (``open``, ``os.listdir``,
                ``Path.read_text``, ...); tracked for summaries, no DET rule
GLOBAL_MUT      mutates module-level state (``global`` + store, or
                ``.append``/``[k] =``/attribute stores on module globals)
STR_HASH        calls builtin ``hash()`` — salted per process since 3.3, so
                any value derived from it is not stable across runs
UNORDERED_ITER  iterates a set (literal, comprehension, or ``set(...)``)
                without ``sorted(...)`` — iteration order varies with hash
                salting, so anything it feeds is order-nondeterministic
==============  =============================================================

Direct effects carry a :class:`Witness` — file, line, and a one-line
description of the offending construct — so the determinism pass can
point a finding at the exact site even when it is three calls below the
cell that makes it a problem.

Matching is by *canonical name*: each module's import table is resolved
so ``np.random.default_rng``, ``from numpy.random import default_rng``,
and ``from numpy import random; random.default_rng`` all normalise to
``numpy.random.default_rng``.  The seed helpers ``as_generator`` /
``spawn_seeds`` are matched by terminal name so re-exports (e.g. via
``repro.utils``) cannot dodge the check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

# -- the lattice -------------------------------------------------------------

ENTROPY = "entropy"
WALL_CLOCK = "wall_clock"
ENV = "env"
FILESYSTEM = "filesystem"
GLOBAL_MUT = "global_mutation"
STR_HASH = "str_hash"
UNORDERED_ITER = "unordered_iteration"

ALL_EFFECTS = (
    ENTROPY, WALL_CLOCK, ENV, FILESYSTEM, GLOBAL_MUT, STR_HASH, UNORDERED_ITER,
)


@dataclass(frozen=True)
class Witness:
    """Where a direct effect happens: the site a finding should point at."""

    file: str
    line: int
    detail: str


@dataclass(frozen=True)
class EffectSite:
    """One direct effect occurrence, attributed to its owning function."""

    effect: str
    function: str  # fully-qualified name of the function containing the site
    witness: Witness


# -- canonical-name tables ---------------------------------------------------

#: Calls that draw entropy whatever their arguments.
ENTROPY_CALLS = frozenset({
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.getrandbits", "random.randbytes", "random.seed",
    "numpy.random.random", "numpy.random.random_sample", "numpy.random.rand",
    "numpy.random.randn", "numpy.random.randint", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.permutation", "numpy.random.seed",
    "numpy.random.standard_normal", "numpy.random.uniform",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice",
    "os.urandom",
})

#: Calls that draw entropy only when called with no argument (or an
#: explicit literal ``None``): seeded, they are the reproducible path.
ENTROPY_IF_UNSEEDED = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence",
})

#: repro's own seed coercers, matched by terminal name (re-export-proof):
#: ``as_generator()`` / ``as_generator(None)`` is the entropy-by-default
#: footgun, legal only at the CLI boundary.
SEED_COERCERS = frozenset({"as_generator"})

#: Spawning independent streams from ``None`` is *never* reproducible —
#: flagged wherever it appears (and rejected at runtime by rngtools).
SEED_SPAWNERS = frozenset({"spawn_seeds", "RngStreams"})

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

ENV_CALLS = frozenset({
    "os.getenv", "os.uname", "socket.gethostname", "socket.getfqdn",
    "platform.node", "platform.platform", "getpass.getuser", "os.getlogin",
    "os.cpu_count", "multiprocessing.cpu_count",
})

#: Names whose mere *read* is an environment dependency.
ENV_READS = frozenset({"os.environ", "sys.argv"})

FILESYSTEM_CALLS = frozenset({
    "open", "io.open", "os.listdir", "os.scandir", "os.walk", "os.stat",
    "os.replace", "os.rename", "os.unlink", "os.remove", "os.mkdir",
    "os.makedirs", "os.open", "os.rmdir", "glob.glob", "glob.iglob",
    "shutil.copy", "shutil.copyfile", "shutil.move", "shutil.rmtree",
    "tempfile.mkstemp", "tempfile.mkdtemp", "tempfile.NamedTemporaryFile",
})

#: Method names that read/write files on any receiver (Path idiom) —
#: informational only, so the unknown-receiver imprecision is acceptable.
FILESYSTEM_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "iterdir", "rglob", "touch",
})

#: ``x.<name>(...)`` calls that mutate the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft",
})


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _first_arg(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "rng"):
            return kw.value
    return None


def _unseeded(call: ast.Call) -> bool:
    """No argument at all, or an explicit literal ``None`` seed."""
    arg = _first_arg(call)
    return arg is None or _is_none(arg)


class _SetTracker:
    """Which local names (syntactically) hold sets inside one function."""

    def __init__(self, func: ast.AST, canon) -> None:
        self.names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, canon, self.names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)

    def is_set(self, node: ast.expr, canon) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        return _is_set_expr(node, canon, self.names)


def _is_set_expr(node: ast.expr, canon, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and canon(node.func) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left, canon, set_names) and _is_set_expr(
            node.right, canon, set_names
        )
    return False


def direct_effects(
    func: ast.AST,
    qualname: str,
    rel_file: str,
    canon,
    module_globals: Set[str],
) -> List[EffectSite]:
    """Scan one function body for direct effects.

    ``canon`` maps an expression to its canonical dotted name (or
    ``None``); ``module_globals`` names the module-level bindings of the
    enclosing module (for GLOBAL_MUT).  Nested functions and lambdas are
    included: they are part of this function's behaviour whenever they
    run, and over-approximating is the conservative direction.
    """
    sites: List[EffectSite] = []
    declared_global: Set[str] = set()
    local_stores: Set[str] = _local_store_names(func)
    sets = _SetTracker(func, canon)

    def emit(effect: str, node: ast.AST, detail: str) -> None:
        sites.append(
            EffectSite(effect, qualname, Witness(rel_file, node.lineno, detail))
        )

    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = canon(node.func)
            terminal = name.rsplit(".", 1)[-1] if name else (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if name in ENTROPY_CALLS:
                emit(ENTROPY, node, f"{name}() draws from the global/OS entropy source")
            elif name in ENTROPY_IF_UNSEEDED and _unseeded(node):
                emit(ENTROPY, node, f"{name}() without a seed draws OS entropy")
            elif terminal in SEED_COERCERS and _unseeded(node):
                emit(
                    ENTROPY, node,
                    f"{terminal}(None) coerces to a fresh-entropy generator",
                )
            elif terminal in SEED_SPAWNERS and node.args and _is_none(node.args[0]):
                emit(
                    ENTROPY, node,
                    f"{terminal}(None, ...) spawns unreproducible streams",
                )
            elif name in WALL_CLOCK_CALLS:
                emit(WALL_CLOCK, node, f"{name}() reads the wall clock")
            elif name in ENV_CALLS:
                emit(ENV, node, f"{name}() reads the process environment")
            elif name in FILESYSTEM_CALLS:
                emit(FILESYSTEM, node, f"{name}() touches the filesystem")
            elif name is None and terminal in FILESYSTEM_METHODS:
                emit(FILESYSTEM, node, f".{terminal}() touches the filesystem")
            elif name == "hash":
                emit(
                    STR_HASH, node,
                    "builtin hash() is salted per process (PYTHONHASHSEED)",
                )
            if terminal in _MUTATOR_METHODS and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in module_globals
                    and base.id not in local_stores
                ):
                    emit(
                        GLOBAL_MUT, node,
                        f"mutates module-level {base.id!r} via .{terminal}()",
                    )
            if name in ("list", "tuple", "enumerate", "iter") and node.args:
                if sets.is_set(node.args[0], canon):
                    emit(
                        UNORDERED_ITER, node,
                        f"{name}() over a set: iteration order is hash-salted",
                    )
        elif isinstance(node, (ast.Name, ast.Attribute)):
            name = canon(node)
            if name in ENV_READS and isinstance(getattr(node, "ctx", None), ast.Load):
                emit(ENV, node, f"reads {name}")
        elif isinstance(node, ast.For):
            if sets.is_set(node.iter, canon):
                emit(
                    UNORDERED_ITER, node,
                    "for-loop over a set: iteration order is hash-salted",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if sets.is_set(gen.iter, canon):
                    emit(
                        UNORDERED_ITER, node,
                        "comprehension over a set: iteration order is hash-salted",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name, how in _global_store(target, module_globals, declared_global, local_stores):
                    emit(GLOBAL_MUT, node, f"{how} module-level {name!r}")

    return sites


def _local_store_names(func: ast.AST) -> Set[str]:
    """Names bound locally (assignment targets, params, for targets) —
    these shadow module globals for GLOBAL_MUT purposes."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for a in list(args.args) + list(args.posonlyargs) + list(args.kwonlyargs):
            names.add(a.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.With,)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
    return names


def _global_store(
    target: ast.expr,
    module_globals: Set[str],
    declared_global: Set[str],
    local_stores: Set[str],
):
    """Yield ``(name, description)`` for stores that hit module state."""
    if isinstance(target, ast.Name):
        if target.id in declared_global and target.id in module_globals:
            yield target.id, "rebinds (via `global`)"
    elif isinstance(target, ast.Subscript):
        base = target.value
        if (
            isinstance(base, ast.Name)
            and base.id in module_globals
            and base.id not in local_stores
        ):
            yield base.id, "item-assigns into"
    elif isinstance(target, ast.Attribute):
        base = target.value
        if (
            isinstance(base, ast.Name)
            and base.id in module_globals
            and base.id not in local_stores
        ):
            yield base.id, "attribute-assigns onto"
