"""Findings, suppressions, baselines: the accounting half of ``repro check``.

The reporting contract mirrors the sanitizer lint's, extended with a
baseline file for whole-tree adoption:

* **Inline suppressions** — ``# staticcheck: allow(DET102) reason`` on
  the witness line or the line above silences exactly that rule at that
  site.  A suppression with **no reason is void**: the finding stands,
  annotated, because a silent waiver documents nothing.
* **Baseline file** — a JSON list of ``{rule, file, symbol, reason}``
  records (``repro check --baseline FILE``).  Findings matching a
  baseline entry are *baselined*: counted and listed, never silent, and
  they do not fail the run.  A baseline entry that matches **no**
  current finding is *stale* — baseline drift — and fails the run, so
  the file can only ever shrink ratchet-style as findings are fixed.
* Exit is nonzero whenever un-suppressed findings or stale baseline
  entries remain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Rule registry: every finding carries one of these codes.
RULES = {
    "DET101": "unseeded entropy reachable from a deterministic root",
    "DET102": "wall-clock value reachable from a cell / flowing into a "
              "payload key outside the declared volatile set",
    "DET103": "process-environment read reachable from a deterministic root",
    "DET104": "builtin hash() (salted per process) reachable from a root",
    "DET105": "unordered set iteration feeding a deterministic root",
    "DET106": "module-level mutable state written from worker-executed code",
    "SAN105": "lock array re-acquired through a helper call: ascending-index "
              "order is unprovable across the call boundary",
    "SAN106": "cycle in the static lock-acquisition graph",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, pointing at the concrete offending site."""

    rule: str
    file: str
    line: int
    symbol: str  # function/method qualname the site lives in
    message: str
    path: Tuple[str, ...] = ()  # witness call chain, root first

    def describe(self) -> str:
        text = f"{self.file}:{self.line}: {self.rule} [{self.symbol}] {self.message}"
        if len(self.path) > 1:
            text += f"\n      via {' -> '.join(self.path)}"
        return text

    def to_dict(self) -> Dict:
        record = {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }
        if self.path:
            record["path"] = list(self.path)
        return record


@dataclass(frozen=True)
class SuppressedFinding:
    finding: Finding
    reason: str
    source: str  # "inline" or "baseline"

    def describe(self) -> str:
        return (
            f"{self.finding.file}:{self.finding.line}: {self.finding.rule} "
            f"suppressed ({self.source}) — {self.reason}"
        )

    def to_dict(self) -> Dict:
        record = self.finding.to_dict()
        record["reason"] = self.reason
        record["source"] = self.source
        return record


@dataclass
class CheckReport:
    """Everything one ``repro check`` run decided."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[SuppressedFinding] = field(default_factory=list)
    stale_baseline: List[Dict] = field(default_factory=list)
    #: Inline allow() comments that matched a finding but carried no
    #: reason: the finding stays in ``findings``; these are listed so the
    #: author knows *why* the waiver did not take.
    void_suppressions: List[Finding] = field(default_factory=list)
    modules_checked: int = 0
    functions_checked: int = 0
    roots: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def describe(self) -> str:
        lines = [
            f"check: {self.modules_checked} module(s), "
            f"{self.functions_checked} function(s), {len(self.roots)} root(s), "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppression(s)"
            + (f", {len(self.stale_baseline)} stale baseline entr(y/ies)"
               if self.stale_baseline else "")
        ]
        lines += ["  " + f.describe() for f in self.findings]
        for finding in self.void_suppressions:
            lines.append(
                f"  note: allow({finding.rule}) at {finding.file}:{finding.line} "
                f"is void — a suppression must carry a reason"
            )
        lines += ["  " + s.describe() for s in self.suppressed]
        for entry in self.stale_baseline:
            lines.append(
                f"  STALE baseline entry (fixed? delete it): "
                f"{entry.get('rule')} {entry.get('file')} [{entry.get('symbol')}]"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "modules_checked": self.modules_checked,
            "functions_checked": self.functions_checked,
            "roots": list(self.roots),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [s.to_dict() for s in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "rules": dict(RULES),
        }


# -- baselines ---------------------------------------------------------------


def load_baseline(path: Union[str, Path]) -> List[Dict]:
    """Read a baseline file; returns its suppression records.

    Every record must carry a non-empty ``reason`` — the loader rejects
    reasonless entries outright rather than letting them silently waive
    findings.
    """
    data = json.loads(Path(path).read_text())
    records = data.get("suppressions", []) if isinstance(data, dict) else data
    for record in records:
        missing = {"rule", "file", "symbol"} - set(record)
        if missing:
            raise ValueError(f"baseline entry {record!r} missing {sorted(missing)}")
        if not str(record.get("reason", "")).strip():
            raise ValueError(
                f"baseline entry for {record['rule']} at {record['file']} "
                f"[{record['symbol']}] has no reason; suppressions are never silent"
            )
    return records


def write_baseline(path: Union[str, Path], findings: Sequence[Finding], reason: str) -> None:
    """Write the current findings as a baseline (one record per finding)."""
    records = [
        {
            "rule": f.rule,
            "file": f.file,
            "symbol": f.symbol,
            "reason": reason,
        }
        for f in findings
    ]
    # One record per (rule, file, symbol): several sites in one function
    # collapse to a single entry, matched set-wise.
    unique: List[Dict] = []
    for record in records:
        if record not in unique:
            unique.append(record)
    Path(path).write_text(
        json.dumps({"version": 1, "suppressions": unique}, indent=2) + "\n"
    )


def _matches(record: Dict, finding: Finding) -> bool:
    return (
        record["rule"] == finding.rule
        and finding.file.replace("\\", "/").endswith(str(record["file"]).replace("\\", "/"))
        and record["symbol"] == finding.symbol
    )


def apply_baseline(
    report: CheckReport, records: Sequence[Dict]
) -> CheckReport:
    """Move baselined findings to ``suppressed``; record stale entries."""
    used = [False] * len(records)
    remaining: List[Finding] = []
    for finding in report.findings:
        hit = None
        for i, record in enumerate(records):
            if _matches(record, finding):
                hit = i
                break
        if hit is None:
            remaining.append(finding)
        else:
            used[hit] = True
            report.suppressed.append(
                SuppressedFinding(finding, str(records[hit]["reason"]), "baseline")
            )
    report.findings = remaining
    report.stale_baseline.extend(
        dict(record) for record, u in zip(records, used) if not u
    )
    return report


def apply_inline_suppressions(
    findings: Sequence[Finding],
    suppressions_by_file: Dict[str, Dict[int, Tuple[str, str]]],
) -> Tuple[List[Finding], List[SuppressedFinding], List[Finding]]:
    """Split findings by the ``# staticcheck: allow(...)`` comments.

    Returns ``(remaining, suppressed, void)`` where ``void`` lists
    findings whose matching allow() carried no reason (kept in
    ``remaining`` too — a reasonless waiver does not waive).
    """
    remaining: List[Finding] = []
    suppressed: List[SuppressedFinding] = []
    void: List[Finding] = []
    for finding in findings:
        table = suppressions_by_file.get(finding.file, {})
        entry = None
        for candidate in (finding.line, finding.line - 1):
            hit = table.get(candidate)
            if hit is not None and hit[0] == finding.rule:
                entry = hit
                break
        if entry is None:
            remaining.append(finding)
        elif not entry[1].strip():
            void.append(finding)
            remaining.append(finding)
        else:
            suppressed.append(SuppressedFinding(finding, entry[1], "inline"))
    return remaining, suppressed, void
