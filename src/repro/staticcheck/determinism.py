"""The determinism / cell-purity pass: rules DET101–DET106.

The orchestrator's content-addressed cache and the multi-host job queue
assume every sweep cell is a **pure, deterministic function of
``(fn, params, seed, config)``**.  This pass verifies that assumption
statically: it roots at every orchestrator cell and process entry point,
asks the call-graph summaries which effects each root can reach, and
maps effects to rules —

=======  ===================================================================
DET101   unseeded entropy (``default_rng()``/``SeedSequence()`` with no
         argument, ``as_generator(None)``, ``spawn_seeds(None, ...)``,
         stdlib ``random``, ``uuid4``, ...) reachable from a root.  The
         CLI (``repro.cli``) is the declared entropy *boundary* — sites
         inside it are exempt, everything below it must thread seeds.
DET102   wall-clock reads reachable from a root, plus (locally, in every
         root-reachable function) a wall-clock-derived value stored under
         a payload key outside the declared volatile sets
         (``VOLATILE_KEYS`` / ``FAILURE_VOLATILE_KEYS`` / ``wall``).
         ``repro.service`` is the declared wall-clock *boundary* (like
         the CLI is for entropy): the live service's product is
         measurement — latency, throughput, heartbeats — so wall-clock
         reads inside it are exempt, while the payload-key taint check
         still applies (measured values must land under declared
         volatile keys).
DET103   environment/host-identity reads reachable from a root — and
         anywhere inside cache-key construction, env-dependent keys
         poison cross-host cache sharing silently.
DET104   builtin ``hash()`` reachable from a root or key construction:
         salted per process, so derived values differ across workers.
DET105   unordered set iteration reachable from a root: results that
         depend on hash-salted iteration order are not replayable.
DET106   module-level mutable state written by root-reachable code:
         worker-executed writes to globals diverge across pool workers
         and vanish across process boundaries.
=======  ===================================================================

Roots are discovered, not declared:

* any function named ``sweep_cell_*`` anywhere in the tree;
* the function argument of every ``run_cells(...)`` / ``sweep_cells`` /
  ``sweep(...)`` / ``queue_worker(...)`` / ``QueueWorker(...)`` call
  site that resolves syntactically;
* module-level ``run_*`` / ``compare_*`` entry points of ``repro.core``,
  ``repro.vector``, and ``repro.service``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import FunctionInfo, Project
from repro.staticcheck.effects import (
    ENTROPY,
    ENV,
    GLOBAL_MUT,
    STR_HASH,
    UNORDERED_ITER,
    WALL_CLOCK,
    WALL_CLOCK_CALLS,
)
from repro.staticcheck.report import Finding

EFFECT_RULES = {
    ENTROPY: "DET101",
    WALL_CLOCK: "DET102",
    ENV: "DET103",
    STR_HASH: "DET104",
    UNORDERED_ITER: "DET105",
    GLOBAL_MUT: "DET106",
}

#: Call sites whose function argument is a purity root (terminal names).
ORCHESTRATION_ENTRY_POINTS = frozenset(
    {"run_cells", "sweep_cells", "sweep", "queue_worker", "QueueWorker"}
)

#: Payload keys that may legitimately carry wall-clock-derived values.
#: Seeded from the tree's own declarations (see ``declared_volatile_keys``)
#: plus the runner-internal fields.
BASE_VOLATILE_KEYS = frozenset(
    {"elapsed_s", "ops_per_sec", "speedup", "wall", "wall_s",
     "wall_s_per_attempt", "traceback", "started_at", "elapsed"}
)


def declared_volatile_keys(project: Project) -> Set[str]:
    """Read ``*VOLATILE_KEYS = frozenset({...})`` declarations from the
    analyzed tree itself (no imports), so the allowed set tracks the
    orchestrator's own contract instead of a copy that can drift."""
    keys: Set[str] = set(BASE_VOLATILE_KEYS)
    for module in project.modules.values():
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id.endswith("VOLATILE_KEYS")):
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    keys.add(sub.value)
    return keys


def discover_roots(project: Project) -> List[str]:
    """The purity roots: sweep cells, orchestrated functions, entry points."""
    roots: Set[str] = set()
    for qual, fn in project.functions.items():
        if fn.name.startswith("sweep_cell_"):
            roots.add(qual)
        elif (
            fn.class_name is None
            and (fn.name.startswith("run_") or fn.name.startswith("compare_"))
            and _is_entry_module(fn.module.name)
        ):
            roots.add(qual)
    # Call-site discovery: first arg (or fn=) of orchestration calls.
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.canon(node.func)
            terminal = name.rsplit(".", 1)[-1] if name else None
            if terminal not in ORCHESTRATION_ENTRY_POINTS:
                continue
            arg: Optional[ast.expr] = node.args[0] if node.args else None
            if arg is None:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        arg = kw.value
            if arg is None:
                continue
            resolved = project.resolve_symbol(module.canon(arg))
            if resolved is not None:
                roots.add(resolved)
    return sorted(roots)


def _is_entry_module(module_name: str) -> bool:
    parts = module_name.split(".")
    return "core" in parts or "vector" in parts or "service" in parts


#: Modules whose wall-clock reads are the *product*, not an impurity:
#: the live service measures latency, throughput, and owner liveness.
#: Mirrors the entropy boundary — reads inside these modules are exempt
#: from the DET102 reachability rule, but the payload-key taint check
#: still applies everywhere.
DEFAULT_WALL_CLOCK_BOUNDARY = (
    "repro.service.shm",
    "repro.service.server",
    "repro.service.loadgen",
    "repro.service.metrics",
    "repro.service.validate",
    "repro.service.supervisor",
)


def run_determinism_pass(
    project: Project,
    roots: Optional[Sequence[str]] = None,
    entropy_boundary: Sequence[str] = ("repro.cli",),
    wall_clock_boundary: Sequence[str] = DEFAULT_WALL_CLOCK_BOUNDARY,
    volatile_keys: Optional[Set[str]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run DET101–DET106; returns ``(findings, roots_used)``."""
    roots = list(roots) if roots is not None else discover_roots(project)
    boundary = set(entropy_boundary)
    wall_boundary = set(wall_clock_boundary)
    allowed_keys = volatile_keys if volatile_keys is not None else declared_volatile_keys(project)

    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int]] = set()

    for root in roots:
        for site in sorted(
            project.summaries.get(root, frozenset()),
            key=lambda s: (s.witness.file, s.witness.line),
        ):
            rule = EFFECT_RULES.get(site.effect)
            if rule is None:
                continue  # FILESYSTEM: summary-only, no DET rule
            owner = project.functions.get(site.function)
            if (
                site.effect == ENTROPY
                and owner is not None
                and owner.module.name in boundary
            ):
                continue
            if (
                site.effect == WALL_CLOCK
                and owner is not None
                and owner.module.name in wall_boundary
            ):
                continue
            dedupe = (rule, site.witness.file, site.witness.line)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            path = project.call_path(root, site.function)
            findings.append(
                Finding(
                    rule=rule,
                    file=site.witness.file,
                    line=site.witness.line,
                    symbol=site.function,
                    message=f"{site.witness.detail} (reachable from root {root})",
                    path=tuple(path),
                )
            )

    # DET102 payload-key taint: local, in every root-reachable function.
    reachable = _reachable_functions(project, roots)
    for qual in sorted(reachable):
        fn = project.functions.get(qual)
        if fn is None:
            continue
        for line, key in _wall_clock_key_sinks(fn, allowed_keys):
            dedupe = ("DET102", fn.module.rel, line)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            findings.append(
                Finding(
                    rule="DET102",
                    file=fn.module.rel,
                    line=line,
                    symbol=qual,
                    message=(
                        f"wall-clock-derived value stored under payload key "
                        f"{key!r}, which is not in the declared volatile set"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, roots


def _reachable_functions(project: Project, roots: Sequence[str]) -> Set[str]:
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        fn = project.functions.get(current)
        if fn is None:
            continue
        stack.extend(callee for callee, _ in fn.calls)
    return seen


def _wall_clock_key_sinks(
    fn: FunctionInfo, allowed_keys: Set[str]
) -> List[Tuple[int, str]]:
    """Local taint: wall-clock values stored under non-volatile keys.

    Taint seeds are wall-clock calls; it flows through arithmetic and
    simple assignments (textual order — good enough for the measurement
    idiom ``start = perf_counter() ... out["k"] = perf_counter() -
    start``).  Sinks are constant-keyed dict-literal entries and
    constant-keyed subscript stores.
    """
    canon = fn.module.canon
    tainted: Set[str] = set()

    def expr_tainted(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and canon(sub.func) in WALL_CLOCK_CALLS:
                return True
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
        return False

    sinks: List[Tuple[int, str]] = []

    def visit_block(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    if expr_tainted(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                tainted.add(target.id)
                            elif (
                                isinstance(target, ast.Subscript)
                                and isinstance(target.slice, ast.Constant)
                                and isinstance(target.slice.value, str)
                                and target.slice.value not in allowed_keys
                            ):
                                sinks.append((node.lineno, target.slice.value))
                elif isinstance(node, ast.AugAssign):
                    if expr_tainted(node.value) and isinstance(node.target, ast.Name):
                        tainted.add(node.target.id)
                elif isinstance(node, ast.Dict):
                    for key, value in zip(node.keys, node.values):
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in allowed_keys
                            and value is not None
                            and expr_tainted(value)
                        ):
                            sinks.append((node.lineno, key.value))

    body = getattr(fn.node, "body", [])
    visit_block(body)
    return sinks
