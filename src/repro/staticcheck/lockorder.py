"""Interprocedural lock-order pass: rules SAN105 and SAN106.

The per-function SAN103 lint proves ascending-index acquisition *within*
one function body; the deadlock-freedom contract of the blocking-acquire
paths (``hold_locks_op`` and whatever the buffered/NUMA variants add) is
a **whole-program** property.  The moment an acquisition hides behind a
helper call, SAN103 goes blind.  This pass doesn't:

* Every function gets an ordered event stream — ``Acquire`` /
  ``TryAcquire`` / ``Release`` syscalls (matched by terminal name, in or
  out of ``yield``) plus resolved helper calls — and a **may-analysis
  linear scan** tracks the set of lock tokens possibly held at each
  point.  A token is the ``(class, attribute)`` identity of the lock
  expression: ``self._locks[q]`` and ``self._locks[j]`` are one token
  (one lock *array*), because a static pass cannot separate indices and
  must treat the array as a unit.
* **SAN105** fires when a helper called while a token is held can
  *blocking*-acquire that same token somewhere in its call subtree:
  ascending-index order is unprovable across a call boundary, so the
  array-unit re-acquisition that SAN103 would police locally becomes a
  finding at the call site, with the witness chain down to the
  acquisition.
* **SAN106** builds the static lock-acquisition graph — edge ``A → B``
  whenever ``B`` may be blocking-acquired (locally or transitively)
  while ``A`` is held — and reports every cycle of length ≥ 2 with a
  witness call path per edge.  ``TryAcquire`` holds are edge *sources*
  but never edge *targets*: a try-acquirer can make someone wait, but
  never waits itself, so it cannot close a wait cycle.

Self-edges (re-acquiring the token you hold) are SAN103/SAN105
territory and are excluded from the cycle graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import FunctionInfo, Project
from repro.staticcheck.report import Finding

ACQUIRE_NAMES = frozenset({"Acquire"})
TRY_ACQUIRE_NAMES = frozenset({"TryAcquire"})
RELEASE_NAMES = frozenset({"Release"})


@dataclass(frozen=True)
class LockSite:
    """One blocking acquisition, attributed to its owning function."""

    token: str
    function: str
    file: str
    line: int


def _lock_token(expr: ast.expr, fn: FunctionInfo) -> Optional[str]:
    """Collapse a lock expression to its array/attribute identity.

    ``self._locks[q]`` → ``Cls._locks``; ``self._shared_lock`` →
    ``Cls._shared_lock``; a bare local name → ``<function>.<name>``.
    Indices are deliberately dropped: the pass reasons about lock
    *arrays*, not elements.
    """
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            owner = fn.class_name or fn.name
            return f"{fn.module.name}.{owner}.{node.attr}"
        canonical = fn.module.canon(node)
        return canonical or node.attr
    if isinstance(node, ast.Name):
        return f"{fn.qualname}.<local {node.id}>"
    return None


def _events(fn: FunctionInfo) -> List[Tuple[int, int, str, object]]:
    """Ordered event stream: ``(line, col, kind, payload)``.

    kinds: ``acquire`` / ``try_acquire`` / ``release`` with a token
    payload, ``call`` with a callee-qualname payload.  Sorting by
    position approximates textual order, which is all a may-analysis
    needs.
    """
    events: List[Tuple[int, int, str, object]] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        name = fn.module.canon(node.func)
        terminal = name.rsplit(".", 1)[-1] if name else None
        kind = None
        if terminal in ACQUIRE_NAMES:
            kind = "acquire"
        elif terminal in TRY_ACQUIRE_NAMES:
            kind = "try_acquire"
        elif terminal in RELEASE_NAMES:
            kind = "release"
        if kind is None or not node.args:
            continue
        token = _lock_token(node.args[0], fn)
        if token is None:
            continue
        events.append((node.lineno, node.col_offset, kind, token))
    for callee, line in fn.calls:
        events.append((line, 10_000, "call", callee))
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def _transitive_blocking(project: Project) -> Dict[str, FrozenSet[LockSite]]:
    """Fixpoint: every blocking acquisition reachable from each function."""
    direct: Dict[str, Set[LockSite]] = {}
    for qual, fn in project.functions.items():
        sites: Set[LockSite] = set()
        for line, _col, kind, payload in _events(fn):
            if kind == "acquire":
                sites.add(LockSite(str(payload), qual, fn.module.rel, line))
        direct[qual] = sites
    summaries: Dict[str, FrozenSet[LockSite]] = {
        q: frozenset(s) for q, s in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, fn in project.functions.items():
            merged = set(summaries[qual])
            for callee, _line in fn.calls:
                merged |= summaries.get(callee, frozenset())
            frozen = frozenset(merged)
            if frozen != summaries[qual]:
                summaries[qual] = frozen
                changed = True
    return summaries


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    file: str
    line: int
    function: str
    path: Tuple[str, ...]  # witness call chain to the dst acquisition


def run_lockorder_pass(project: Project) -> List[Finding]:
    """Run SAN105 + SAN106 over every function in the project."""
    transitive = _transitive_blocking(project)
    findings: List[Finding] = []
    edges: Dict[Tuple[str, str], _Edge] = {}

    def add_edge(edge: _Edge) -> None:
        if edge.src == edge.dst:
            return  # self-edges are SAN103/SAN105 territory
        edges.setdefault((edge.src, edge.dst), edge)

    for qual, fn in sorted(project.functions.items()):
        held: Set[str] = set()
        for line, _col, kind, payload in _events(fn):
            if kind in ("acquire", "try_acquire"):
                token = str(payload)
                if kind == "acquire":
                    for src in sorted(held):
                        add_edge(_Edge(src, token, fn.module.rel, line, qual, (qual,)))
                held.add(token)
            elif kind == "release":
                held.discard(str(payload))
            elif kind == "call" and held:
                callee = str(payload)
                callee_sites = transitive.get(callee, frozenset())
                for site in sorted(callee_sites, key=lambda s: (s.file, s.line)):
                    chain = tuple([qual] + project.call_path(callee, site.function))
                    if site.token in held:
                        findings.append(
                            Finding(
                                rule="SAN105",
                                file=fn.module.rel,
                                line=line,
                                symbol=qual,
                                message=(
                                    f"helper call may blocking-acquire {site.token!r} "
                                    f"(at {site.file}:{site.line}) while this function "
                                    f"already holds it; ascending-index order cannot "
                                    f"be proven across the call boundary"
                                ),
                                path=chain,
                            )
                        )
                    for src in sorted(held):
                        add_edge(
                            _Edge(src, site.token, site.file, site.line, qual, chain)
                        )

    findings.extend(_cycle_findings(edges))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def _cycle_findings(edges: Dict[Tuple[str, str], _Edge]) -> List[Finding]:
    """Every elementary cycle (length ≥ 2) in the acquisition graph,
    deduplicated by node set, reported with per-edge witness paths."""
    graph: Dict[str, List[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
    for dsts in graph.values():
        dsts.sort()

    findings: List[Finding] = []
    seen_cycles: Set[FrozenSet[str]] = set()

    def dfs(start: str, current: str, path: List[str]) -> None:
        for nxt in graph.get(current, ()):
            if nxt == start and len(path) >= 2:
                key = frozenset(path)
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                findings.append(_describe_cycle(path, edges))
            elif nxt not in path and nxt > start:
                # Only visit nodes ordered after the start: each cycle is
                # then enumerated exactly once, rooted at its least node.
                dfs(start, nxt, path + [nxt])

    for node in sorted(graph):
        dfs(node, node, [node])
    return findings


def _describe_cycle(path: List[str], edges: Dict[Tuple[str, str], _Edge]) -> Finding:
    cycle = path + [path[0]]
    hops = [edges[(cycle[i], cycle[i + 1])] for i in range(len(cycle) - 1)]
    first = hops[0]
    lines = [
        f"{hop.src} -> {hop.dst} ({hop.file}:{hop.line}, "
        f"via {' -> '.join(hop.path)})"
        for hop in hops
    ]
    return Finding(
        rule="SAN106",
        file=first.file,
        line=first.line,
        symbol=first.function,
        message=(
            "cycle in the static lock-acquisition graph: "
            + "; ".join(lines)
        ),
        path=first.path,
    )
