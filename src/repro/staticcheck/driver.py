"""``run_check``: load, analyze, suppress, report — the `repro check` core.

Ties the pieces together: parse the tree into a :class:`Project`
(:mod:`~repro.staticcheck.callgraph`), run the determinism pass
(:mod:`~repro.staticcheck.determinism`) and the lock-order pass
(:mod:`~repro.staticcheck.lockorder`), then apply inline
``# staticcheck: allow(RULE) reason`` comments and the optional baseline
file (:mod:`~repro.staticcheck.report`).  The analyzed code is never
imported, so the checker works on trees that would crash on import and
can never be fooled by import-time monkey-patching.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.staticcheck.callgraph import Project
from repro.staticcheck.determinism import (
    DEFAULT_WALL_CLOCK_BOUNDARY,
    run_determinism_pass,
)
from repro.staticcheck.lockorder import run_lockorder_pass
from repro.staticcheck.report import (
    CheckReport,
    Finding,
    apply_baseline,
    apply_inline_suppressions,
    load_baseline,
)


def default_root() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    return Path(__file__).resolve().parent.parent


def load_project(paths: Optional[Sequence[Union[str, Path]]] = None) -> Project:
    """Parse the tree(s) to analyze.

    With no ``paths``, the installed ``repro`` package source is scanned
    with proper dotted module names.  Explicit paths (fixture
    directories in tests, ad-hoc trees from the CLI) are scanned with
    bare-stem module names and report paths relative to each root.
    """
    if not paths:
        root = default_root()
        return Project.load(root, package="repro", rel_base=root.parent.parent)
    project = Project()
    for raw in paths:
        root = Path(raw).resolve()
        if root.is_file():
            sub = Project.load(root.parent, rel_base=root.parent)
            # Single-file scan: keep only that module.
            keep = {
                name: mod
                for name, mod in sub.modules.items()
                if mod.path == root
            }
            sub.modules = keep
            _merge(project, sub, only_modules=set(keep))
        else:
            _merge(project, Project.load(root, rel_base=root))
    # Cross-root resolution is rebuilt after the merge.
    for fn in project.functions.values():
        fn.calls = []
    project._resolve_calls()
    project._propagate()
    return project


def _merge(project: Project, sub: Project, only_modules: Optional[set] = None) -> None:
    for name, mod in sub.modules.items():
        if only_modules is not None and name not in only_modules:
            continue
        project.modules[name] = mod
    for qual, fn in sub.functions.items():
        if only_modules is not None and fn.module.name not in only_modules:
            continue
        project.functions[qual] = fn
    for qual, cls in sub.classes.items():
        if only_modules is not None and cls.module.name not in only_modules:
            continue
        project.classes[qual] = cls


def _suppression_tables(project: Project) -> Dict[str, Dict[int, Tuple[str, str]]]:
    return {mod.rel: mod.suppressions for mod in project.modules.values()}


def run_check(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    baseline: Optional[Union[str, Path]] = None,
    entropy_boundary: Sequence[str] = ("repro.cli",),
    wall_clock_boundary: Sequence[str] = DEFAULT_WALL_CLOCK_BOUNDARY,
) -> CheckReport:
    """Run every pass and return the consolidated report.

    ``baseline`` points at a suppression file (see
    :func:`repro.staticcheck.report.load_baseline`); entries that match
    no current finding are reported as stale and fail the run.
    """
    project = load_project(paths)
    det_findings, roots = run_determinism_pass(
        project,
        entropy_boundary=entropy_boundary,
        wall_clock_boundary=wall_clock_boundary,
    )
    lock_findings = run_lockorder_pass(project)
    findings: List[Finding] = det_findings + lock_findings

    remaining, suppressed, void = apply_inline_suppressions(
        findings, _suppression_tables(project)
    )
    report = CheckReport(
        findings=remaining,
        suppressed=suppressed,
        void_suppressions=void,
        modules_checked=len(project.modules),
        functions_checked=len(project.functions),
        roots=roots,
    )
    if baseline is not None:
        report = apply_baseline(report, load_baseline(baseline))
    report.findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return report
