"""Whole-program call graph with per-function effect summaries.

The analyzed tree is **parsed, never imported**: every module becomes an
AST plus an import table, every function/method a node in the call
graph.  Call edges are resolved syntactically —

* direct names, chased through ``import`` / ``from ... import`` tables
  (including package ``__init__`` re-exports, to a bounded depth);
* ``self.method(...)`` within a class, including base classes defined in
  the analyzed tree (one-level name-resolved MRO walk);
* ``ClassName(...)`` as a call to ``ClassName.__init__``;
* ``var.method(...)`` where ``var`` was locally assigned from a
  resolvable ``ClassName(...)`` construction (local type propagation);
* local function aliases: ``f = g`` / ``f = g if cond else h`` followed
  by ``f(...)`` resolves to ``g`` (and ``h``).

Effect summaries (:mod:`repro.staticcheck.effects`) are propagated to a
fixpoint over these edges: a function's summary is its own direct
effect sites unioned with every callee's, so the purity pass can ask
"does any path from this root reach entropy?" with one set lookup, and
the witness still points at the concrete offending line.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.effects import EffectSite, direct_effects


def _name_candidates(value: ast.expr) -> Iterator[ast.expr]:
    """Expressions a local alias assignment may bind: a bare name, or
    either arm of a conditional expression (``f = g if cond else h``)."""
    if isinstance(value, (ast.Name, ast.Attribute)):
        yield value
    elif isinstance(value, ast.IfExp):
        yield from _name_candidates(value.body)
        yield from _name_candidates(value.orelse)


@dataclass
class FunctionInfo:
    """One function or method in the analyzed tree."""

    qualname: str  # e.g. "repro.vector.sweep.run_vector_backend" or "...Cls.m"
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    module: "ModuleInfo"
    class_name: Optional[str] = None
    #: Resolved callees: (callee qualname, call line).
    calls: List[Tuple[str, int]] = field(default_factory=list)
    direct_sites: List[EffectSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    qualname: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    base_names: List[str] = field(default_factory=list)  # canonical base names


@dataclass
class ModuleInfo:
    """One parsed module: AST, imports, symbols, suppression comments."""

    name: str  # dotted module name ("repro.cli", or bare stem for fixtures)
    path: Path
    rel: str  # path relative to the scan root, for reports
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # local name -> qualname
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    global_names: Set[str] = field(default_factory=set)
    #: line -> (rule, reason) from ``# staticcheck: allow(RULE) reason``.
    suppressions: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    def canon(self, expr: ast.expr) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        Leading names are chased through this module's import table;
        names defined at module level resolve to ``<module>.<name>``;
        anything else (builtins, unresolved) passes through unchanged so
        callers can still match builtins like ``hash`` or ``sorted``.
        """
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        origin = self.imports.get(base)
        if origin is None:
            if base in self.functions:
                origin = self.functions[base]
            elif base in self.classes:
                origin = self.classes[base].qualname
            elif base in self.global_names:
                origin = f"{self.name}.{base}" if self.name else base
            else:
                origin = base
        parts.append(origin)
        return ".".join(reversed(parts))


_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*allow\(((?:DET|SAN)\d{3})\)\s*(.*)")


def _module_name(path: Path, root: Path, package: Optional[str]) -> str:
    """Dotted module name for ``path`` under ``root``.

    With ``package`` (e.g. ``"repro"`` when scanning ``src/repro``), the
    name is rooted there; without, bare stems (fixture directories).
    """
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]
    if package:
        parts = [package] + parts
    return ".".join(parts)


def _build_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                pkg_parts = module_name.split(".")
                # level 1 = current package (for a plain module, drop the
                # module's own name); deeper levels walk further up.
                pkg_parts = pkg_parts[: len(pkg_parts) - node.level]
                base = ".".join(pkg_parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


class Project:
    """The analyzed tree: modules, symbol index, call graph, summaries."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: qualname -> frozenset of reachable EffectSites (post-fixpoint).
        self.summaries: Dict[str, FrozenSet[EffectSite]] = {}

    # -- loading -------------------------------------------------------------

    @classmethod
    def load(
        cls,
        root: Path,
        package: Optional[str] = None,
        rel_base: Optional[Path] = None,
    ) -> "Project":
        """Parse every ``*.py`` under ``root`` into a project.

        ``package`` prefixes dotted module names (``"repro"`` for the
        real tree); ``rel_base`` controls how report paths are printed
        (default: relative to ``root``'s parent).
        """
        project = cls()
        root = Path(root).resolve()
        rel_base = (rel_base or root.parent).resolve()
        for path in sorted(root.rglob("*.py")):
            name = _module_name(path, root, package)
            try:
                rel = str(path.relative_to(rel_base))
            except ValueError:
                rel = str(path)
            project._load_module(name, path, rel)
        project._resolve_calls()
        project._propagate()
        return project

    def _load_module(self, name: str, path: Path, rel: str) -> None:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        module = ModuleInfo(name=name, path=path, rel=rel, tree=tree)
        module.imports = _build_imports(tree, name)
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                module.suppressions[lineno] = (match.group(1), match.group(2).strip())
        prefix = f"{name}." if name else ""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                module.functions[node.name] = qual
                self.functions[qual] = FunctionInfo(qual, node, module)
            elif isinstance(node, ast.ClassDef):
                cqual = f"{prefix}{node.name}"
                info = ClassInfo(cqual, node, module)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{cqual}.{item.name}"
                        info.methods[item.name] = mqual
                        self.functions[mqual] = FunctionInfo(
                            mqual, item, module, class_name=node.name
                        )
                module.classes[node.name] = info
                self.classes[cqual] = info
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        module.global_names.add(target.id)
        self.modules[name] = module
        # Base-class canonical names need the import table, done above.
        for cinfo in module.classes.values():
            for base in cinfo.node.bases:
                canonical = module.canon(base)
                if canonical:
                    cinfo.base_names.append(canonical)

    # -- symbol chasing ------------------------------------------------------

    def resolve_symbol(self, canonical: Optional[str], depth: int = 0) -> Optional[str]:
        """Chase a canonical name to a function qualname, through package
        re-exports (``from .runner import run_cells`` in ``__init__``)."""
        if canonical is None or depth > 4:
            return None
        if canonical in self.functions:
            return canonical
        if canonical in self.classes:
            init = self.classes[canonical].methods.get("__init__")
            if init is None:
                init = self._inherited_method(self.classes[canonical], "__init__")
            return init
        head, _, tail = canonical.rpartition(".")
        module = self.modules.get(head)
        if module is not None and tail in module.imports:
            return self.resolve_symbol(module.imports[tail], depth + 1)
        return None

    def resolve_class(self, canonical: Optional[str], depth: int = 0) -> Optional[ClassInfo]:
        if canonical is None or depth > 4:
            return None
        if canonical in self.classes:
            return self.classes[canonical]
        head, _, tail = canonical.rpartition(".")
        module = self.modules.get(head)
        if module is not None and tail in module.imports:
            return self.resolve_class(module.imports[tail], depth + 1)
        return None

    def _inherited_method(self, cinfo: ClassInfo, method: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = list(cinfo.base_names)
        while stack:
            base_name = stack.pop(0)
            if base_name in seen:
                continue
            seen.add(base_name)
            base = self.resolve_class(base_name)
            if base is None:
                continue
            if method in base.methods:
                return base.methods[method]
            stack.extend(base.base_names)
        return None

    def method_of(self, cinfo: ClassInfo, method: str) -> Optional[str]:
        return cinfo.methods.get(method) or self._inherited_method(cinfo, method)

    # -- call resolution -----------------------------------------------------

    def _resolve_calls(self) -> None:
        for fn in self.functions.values():
            self._resolve_function(fn)

    def _resolve_function(self, fn: FunctionInfo) -> None:
        module = fn.module
        #: local var -> ClassInfo (from ``x = ClassName(...)``).
        local_types: Dict[str, ClassInfo] = {}
        #: local var -> function qualnames (from ``f = g`` aliases).
        aliases: Dict[str, List[str]] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if isinstance(value, ast.Call):
                    cinfo = self.resolve_class(module.canon(value.func))
                    if cinfo is not None:
                        local_types[target.id] = cinfo
                else:
                    funcs = [
                        sym
                        for cand in _name_candidates(value)
                        for sym in [self.resolve_symbol(module.canon(cand))]
                        if sym is not None
                    ]
                    if funcs:
                        aliases[target.id] = funcs

        own_class = (
            module.classes.get(fn.class_name) if fn.class_name is not None else None
        )
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # self.method(...) → same class (or inherited).
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and own_class is not None
            ):
                target = self.method_of(own_class, func.attr)
                if target is not None:
                    fn.calls.append((target, node.lineno))
                continue
            # var.method(...) with locally-known type.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in local_types
            ):
                target = self.method_of(local_types[func.value.id], func.attr)
                if target is not None:
                    fn.calls.append((target, node.lineno))
                continue
            # Aliased local function variable.
            if isinstance(func, ast.Name) and func.id in aliases:
                for target in aliases[func.id]:
                    fn.calls.append((target, node.lineno))
                continue
            target = self.resolve_symbol(module.canon(func))
            if target is not None:
                fn.calls.append((target, node.lineno))

    # -- effect propagation --------------------------------------------------

    def _propagate(self) -> None:
        for fn in self.functions.values():
            fn.direct_sites = direct_effects(
                fn.node,
                fn.qualname,
                fn.module.rel,
                fn.module.canon,
                fn.module.global_names,
            )
        summaries: Dict[str, FrozenSet[EffectSite]] = {
            q: frozenset(fn.direct_sites) for q, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qual, fn in self.functions.items():
                merged = set(summaries[qual])
                for callee, _line in fn.calls:
                    merged |= summaries.get(callee, frozenset())
                frozen = frozenset(merged)
                if frozen != summaries[qual]:
                    summaries[qual] = frozen
                    changed = True
        self.summaries = summaries

    # -- queries -------------------------------------------------------------

    def call_path(self, root: str, target_fn: str) -> List[str]:
        """Shortest call chain ``root -> ... -> target_fn`` (BFS), as
        qualnames.  Empty when target is unreachable or equals root."""
        if root == target_fn:
            return [root]
        parents: Dict[str, str] = {}
        queue = deque([root])
        seen = {root}
        while queue:
            current = queue.popleft()
            fn = self.functions.get(current)
            if fn is None:
                continue
            for callee, _line in fn.calls:
                if callee in seen:
                    continue
                seen.add(callee)
                parents[callee] = current
                if callee == target_fn:
                    path = [callee]
                    while path[-1] in parents:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(callee)
        return []
