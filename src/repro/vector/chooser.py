"""Replica-batched choice streams for the vector engine.

The vector processes separate *what random choices are made* from *how
the state advances*: every process step asks a **choice source** for the
per-replica queue indices it needs.  Three sources cover the use cases:

* :class:`BatchedChooser` — the production source.  Pre-generates
  chunks of beta-coins, queue indices, and insertion choices with one
  RNG call per chunk, so the per-step cost is a slice.
* :class:`ArrayChoiceSource` — replays explicit choice arrays.  Used by
  the Appendix-A reduction tests, where the *same* stream must drive a
  round-robin process and a balls-into-bins allocation.
* :class:`ReferenceMirror` — byte-exact mirror of the RNG consumption
  of ``R`` independent reference processes
  (:class:`~repro.core.process.SequentialProcess` and friends).  Seeding
  replica ``r`` with the reference run's seed makes the vector engine
  consume *the same generator draws in the same order*, so the parity
  suite can assert trace equality label-for-label, redraws included.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies import RemovalChooser
from repro.utils.rngtools import SeedLike, as_generator

Draws = Tuple[np.ndarray, np.ndarray, np.ndarray]


class BatchedChooser:
    """Chunked (1+beta) choice stream over ``R`` replicas.

    Per removal step, yields ``(two, i, j)`` arrays of shape ``(R,)``:
    the beta-coin, the first queue index, and the second (meaningful only
    where ``two`` is set; drawn unconditionally, which is distribution-
    equivalent and keeps the stream rectangular).
    """

    def __init__(
        self,
        n: int,
        beta: float,
        replicas: int,
        rng: SeedLike = None,
        insert_probs: Optional[np.ndarray] = None,
        chunk: int = 2048,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.n = n
        self.beta = beta
        self.replicas = replicas
        self._rng = as_generator(rng)
        self._chunk = chunk
        self._cum = None if insert_probs is None else np.cumsum(insert_probs)
        self._ptr = chunk  # force refill on first use
        self._iptr = chunk
        self._two = np.empty((chunk, replicas), dtype=bool)
        self._i = np.empty((chunk, replicas), dtype=np.int64)
        self._j = np.empty((chunk, replicas), dtype=np.int64)
        self._ins = np.empty((chunk, replicas), dtype=np.int64)
        self._dchoice: dict = {}

    def _refill_removals(self) -> None:
        rng, shape = self._rng, (self._chunk, self.replicas)
        if self.beta >= 1.0:
            self._two.fill(True)
        elif self.beta <= 0.0:
            self._two.fill(False)
        else:
            self._two = rng.random(shape) < self.beta
        self._i = rng.integers(self.n, size=shape)
        self._j = rng.integers(self.n, size=shape)
        self._ptr = 0

    def removal_draws(self) -> Draws:
        """One removal step's ``(two, i, j)`` for every replica."""
        if self._ptr >= self._chunk:
            self._refill_removals()
        k = self._ptr
        self._ptr += 1
        return self._two[k], self._i[k], self._j[k]

    def removal_redraws(self, rows) -> Draws:
        """Fresh draws for the replicas in ``rows`` whose chosen queues
        were all empty.

        Mirrors the reference redraw semantics: a redraw repeats the full
        draw, beta-coin included.  Draws are i.i.d. across replicas, so
        which rows are being redrawn does not matter here — only how
        many (sources that own per-replica streams do use the rows).
        """
        count = rows if isinstance(rows, int) else len(rows)
        rng = self._rng
        if self.beta >= 1.0:
            two = np.ones(count, dtype=bool)
        elif self.beta <= 0.0:
            two = np.zeros(count, dtype=bool)
        else:
            two = rng.random(count) < self.beta
        return two, rng.integers(self.n, size=count), rng.integers(self.n, size=count)

    def insert_queues(self) -> np.ndarray:
        """Per-replica queue index for the next inserted label."""
        if self._iptr >= self._chunk:
            shape = (self._chunk, self.replicas)
            if self._cum is None:
                self._ins = self._rng.integers(self.n, size=shape)
            else:
                self._ins = np.searchsorted(
                    self._cum, self._rng.random(shape), side="right"
                )
            self._iptr = 0
        k = self._iptr
        self._iptr += 1
        return self._ins[k]

    def dchoice_draws(self, d: int) -> np.ndarray:
        """``(R, d)`` uniform queue indices for a best-of-d removal."""
        buf, ptr = self._dchoice.get(d, (None, self._chunk))
        if ptr >= self._chunk:
            buf = self._rng.integers(self.n, size=(self._chunk, self.replicas, d))
            ptr = 0
        self._dchoice[d] = (buf, ptr + 1)
        return buf[ptr]

    def dchoice_redraws(self, rows, d: int) -> np.ndarray:
        """Fresh ``(len(rows), d)`` draws for replicas that saw only empties."""
        count = rows if isinstance(rows, int) else len(rows)
        return self._rng.integers(self.n, size=(count, d))


class ArrayChoiceSource:
    """Replays explicit choice arrays (for exact-coupling tests).

    Parameters are step-major: ``two/i/j`` have shape ``(steps, R)`` and
    ``insert_q`` shape ``(inserts, R)``.  Redraw requests raise — callers
    must set up prefixed executions (ample prefill) so no chosen pair of
    queues is ever empty, and assert ``empty_redraws == 0``.
    """

    def __init__(
        self,
        two: Optional[np.ndarray] = None,
        i: Optional[np.ndarray] = None,
        j: Optional[np.ndarray] = None,
        insert_q: Optional[np.ndarray] = None,
    ) -> None:
        self._two, self._i, self._j = two, i, j
        self._ins = insert_q
        self._ptr = 0
        self._iptr = 0

    def removal_draws(self) -> Draws:
        k = self._ptr
        self._ptr += 1
        return self._two[k], self._i[k], self._j[k]

    def removal_redraws(self, rows) -> Draws:
        raise RuntimeError(
            "explicit choice stream hit an empty-queue redraw; "
            "use a larger prefill so the execution stays prefixed"
        )

    def insert_queues(self) -> np.ndarray:
        k = self._iptr
        self._iptr += 1
        return self._ins[k]


class ReferenceMirror:
    """Byte-exact mirror of ``R`` reference processes' RNG streams.

    Replica ``r`` owns one generator seeded like the reference run and
    one :class:`~repro.core.policies.RemovalChooser` sharing it — the
    same object layout :class:`~repro.core.process.SequentialProcess`
    builds — and every source method consumes draws in exactly the order
    the reference implementation does.  Driving the vector engine with
    this source therefore reproduces each reference replica's execution
    *exactly* (labels, queues, ranks, and redraw counts), which is the
    strongest form of parity the suite checks.
    """

    def __init__(
        self,
        n: int,
        beta: float,
        seeds: Sequence[SeedLike],
        insert_probs: Optional[np.ndarray] = None,
    ) -> None:
        self.n = n
        self.replicas = len(seeds)
        self._gens: List[np.random.Generator] = [as_generator(s) for s in seeds]
        self._choosers = [RemovalChooser(n, beta, g) for g in self._gens]
        self._cum = None if insert_probs is None else np.cumsum(insert_probs)

    def insert_queues(self) -> np.ndarray:
        out = np.empty(self.replicas, dtype=np.int64)
        if self._cum is None:
            for r, gen in enumerate(self._gens):
                out[r] = gen.integers(self.n)
        else:
            for r, gen in enumerate(self._gens):
                out[r] = np.searchsorted(self._cum, gen.random(), side="right")
        return out

    def removal_draws(self) -> Draws:
        two = np.empty(self.replicas, dtype=bool)
        i = np.empty(self.replicas, dtype=np.int64)
        j = np.zeros(self.replicas, dtype=np.int64)
        for r, chooser in enumerate(self._choosers):
            t, a, b = chooser.draw()
            two[r], i[r] = t, a
            if t:
                j[r] = b
        return two, i, j

    def removal_redraws(self, count_or_rows) -> Draws:
        rows = (
            range(count_or_rows)
            if isinstance(count_or_rows, int)
            else list(count_or_rows)
        )
        two = np.empty(len(rows), dtype=bool)
        i = np.empty(len(rows), dtype=np.int64)
        j = np.zeros(len(rows), dtype=np.int64)
        for k, r in enumerate(rows):
            t, a, b = self._choosers[r].draw()
            two[k], i[k] = t, a
            if t:
                j[k] = b
        return two, i, j

    def dchoice_draws(self, d: int) -> np.ndarray:
        out = np.empty((self.replicas, d), dtype=np.int64)
        for r, gen in enumerate(self._gens):
            for k in range(d):
                out[r, k] = gen.integers(self.n)
        return out

    def dchoice_redraws(self, rows, d: int) -> np.ndarray:
        rows = range(rows) if isinstance(rows, int) else list(rows)
        out = np.empty((len(rows), d), dtype=np.int64)
        for k, r in enumerate(rows):
            for c in range(d):
                out[k, c] = self._gens[r].integers(self.n)
        return out
