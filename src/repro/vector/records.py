"""Result containers for replica-batched runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.records import RankTrace


@dataclass
class VectorRunResult:
    """Rank costs of ``R`` replicas run in lockstep.

    Attributes
    ----------
    ranks:
        ``(removals, R)`` array; ``ranks[t, r]`` is the rank paid by
        replica ``r`` at removal step ``t`` (1-based, exact).
    empty_redraws:
        ``(R,)`` count of removal redraws forced by empty chosen queues.
    sample_steps, max_top_ranks, mean_top_ranks:
        Optional top-rank snapshots (only from sampled runs):
        ``sample_steps`` is ``(S,)``; the rank profiles are ``(S, R)``.
        ``max_top_ranks[s, r]`` is the Corollary 1 quantity
        ``max_i rank(top_i)`` of replica ``r`` at sample ``s``.
    """

    ranks: np.ndarray
    empty_redraws: np.ndarray
    sample_steps: Optional[np.ndarray] = None
    max_top_ranks: Optional[np.ndarray] = None
    mean_top_ranks: Optional[np.ndarray] = None
    meta: dict = field(default_factory=dict)

    @property
    def replicas(self) -> int:
        """Number of replicas ``R``."""
        return self.ranks.shape[1]

    @property
    def removals(self) -> int:
        """Removal steps per replica."""
        return self.ranks.shape[0]

    # -- per-replica statistics -----------------------------------------

    def per_replica_mean(self) -> np.ndarray:
        """Mean rank of each replica — one i.i.d. 'seed' estimate each."""
        return self.ranks.mean(axis=0)

    def per_replica_max(self) -> np.ndarray:
        """Worst rank paid by each replica."""
        return self.ranks.max(axis=0)

    def per_replica_quantile(self, q: float) -> np.ndarray:
        """Per-replica rank quantile (e.g. ``q=0.99``)."""
        return np.quantile(self.ranks, q, axis=0)

    # -- pooled views ----------------------------------------------------

    def pooled_ranks(self) -> np.ndarray:
        """All ranks of all replicas as one flat array."""
        return self.ranks.reshape(-1)

    def trace(self, replica: int) -> RankTrace:
        """One replica's run as a reference-style :class:`RankTrace`."""
        return RankTrace(self.ranks[:, replica].tolist())

    def summary(self) -> dict:
        """Headline statistics: across-replica spread of per-replica means."""
        from repro.analysis.stats import replica_rank_summary

        return {
            "replicas": self.replicas,
            "removals": self.removals,
            **replica_rank_summary(self.ranks),
        }

    def __repr__(self) -> str:
        return (
            f"VectorRunResult(replicas={self.replicas}, removals={self.removals}, "
            f"mean={float(self.ranks.mean()):.2f})"
        )


@dataclass
class VectorPotentialSeries:
    """Batched Theorem 3 potentials along an exponential-top run.

    ``phi``/``psi`` are ``(S, R)``; ``steps`` is ``(S,)``.
    """

    steps: np.ndarray
    phi: np.ndarray
    psi: np.ndarray

    @property
    def gamma(self) -> np.ndarray:
        """``Gamma(t) = Phi(t) + Psi(t)`` per sample per replica."""
        return self.phi + self.psi

    def gamma_over_n(self, n: int) -> np.ndarray:
        """``Gamma/n`` — Theorem 3 bounds its mean by a constant."""
        return self.gamma / n

    def summary(self, n: int) -> dict:
        """Across-replica statistics of the time-averaged ``Gamma/n``."""
        per_replica = self.gamma_over_n(n).mean(axis=0)
        sd = float(per_replica.std(ddof=1)) if per_replica.shape[0] > 1 else 0.0
        return {
            "replicas": int(self.phi.shape[1]),
            "samples": int(self.phi.shape[0]),
            "mean_gamma_over_n": float(per_replica.mean()),
            "mean_gamma_over_n_sd": sd,
            "max_gamma_over_n": float(self.gamma_over_n(n).max()),
        }
