"""The replica-batched process engine.

``R`` independent copies of a paper process advance in *lockstep*: one
step of the batch performs step ``t`` of every replica at once, with all
per-replica state held in rectangular numpy arrays —

* ``buf``  — ``(R, n, cap)`` ring buffers, one FIFO of labels per
  (replica, queue).  Labels enter in increasing order (the labelled
  process inserts consecutive integers; the exponential process inserts
  global ranks), so each buffer is sorted by construction and its head
  is the queue's top element.
* ``head``/``size`` — ``(R, n)`` ring positions and occupancies.
* a :class:`~repro.vector.index.BatchedRankIndex` holding the
  present-label sets of all replicas for exact rank-cost accounting.

The (1+beta) removal kernel is fully vectorized: gather the two
candidate tops of every replica (empty queues read as ``+inf``), pick
the smaller where the beta-coin came up heads, and redraw only the
replicas whose chosen queues were all empty — mirroring the reference
semantics of :meth:`repro.core.process.SequentialProcess.remove`
decision-for-decision, so that a replica driven by the same RNG stream
removes the same label at every step.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.vector.index import BatchedRankIndex
from repro.vector.records import VectorRunResult

#: Sentinel top for an empty queue — larger than any real label.
EMPTY = np.iinfo(np.int64).max

#: Removal steps per deferred-rank chunk.  The kernel advances queue
#: state step by step, but rank costs are reconstructed one chunk at a
#: time (one batched index query per chunk), which amortizes the
#: per-call overhead of the rank index across CHUNK_STEPS steps.
CHUNK_STEPS = 64


def _pow2_at_least(x: int) -> int:
    return 1 << max(4, math.ceil(math.log2(max(1, x))))


class VectorProcessBase:
    """Shared queue state and the batched (1+beta) removal kernel.

    Subclasses add their insertion rule (labelled, round-robin) or their
    generation phase (exponential).  ``source`` is a choice source from
    :mod:`repro.vector.chooser`.
    """

    def __init__(self, n_queues: int, capacity: int, replicas: int, source) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.n_queues = n_queues
        self.capacity = capacity
        self.replicas = replicas
        self._source = source
        self._index = BatchedRankIndex(replicas, capacity)
        self._rows = np.arange(replicas, dtype=np.int64)
        self._qids = np.arange(n_queues, dtype=np.int64)
        self._buf: Optional[np.ndarray] = None
        self._head: Optional[np.ndarray] = None
        self._size: Optional[np.ndarray] = None
        #: (R, n) current top label per queue, EMPTY where empty —
        #: maintained incrementally so the removal kernel compares tops
        #: with single gathers.
        self._tops = np.full((replicas, n_queues), EMPTY, dtype=np.int64)
        self._cap = 0
        self._capmask = 0
        #: Upper bound on the current max queue size (grows by one per
        #: append, re-tightened only when it reaches the ring capacity),
        #: so the append hot path checks a scalar instead of scanning.
        self._watermark = 0
        self._removal_steps = 0
        #: Per-replica count of removal redraws forced by empty queues.
        self.empty_redraws = np.zeros(replicas, dtype=np.int64)

    # -- state inspection ------------------------------------------------

    @property
    def present_count(self) -> int:
        """Labels currently present (equal across replicas, by lockstep)."""
        return self._index.present_count

    @property
    def removal_steps(self) -> int:
        """Removals performed so far (per replica)."""
        return self._removal_steps

    def queue_sizes(self) -> np.ndarray:
        """Current ``(R, n)`` queue occupancies (a copy)."""
        if self._size is None:
            return np.zeros((self.replicas, self.n_queues), dtype=np.int64)
        return self._size.copy()

    def top_labels(self) -> np.ndarray:
        """``(R, n)`` label on top of each queue (``EMPTY`` where empty)."""
        return self._tops.copy()

    def top_rank_profile(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-replica ``(max, mean)`` rank over all non-empty queue tops.

        The max is the Corollary 1 quantity; both are exact (computed
        against the current present-label sets).
        """
        tops = self._tops
        counts = self._index.count_leq_grid(np.where(tops == EMPTY, 0, tops))
        nonempty = self._size > 0 if self._size is not None else np.zeros_like(tops, bool)
        ranks = np.where(nonempty, counts, 0)
        occupied = np.maximum(nonempty.sum(axis=1), 1)
        return ranks.max(axis=1), ranks.sum(axis=1) / occupied

    # -- buffer management ----------------------------------------------

    def _alloc_from_assignment(self, assign: np.ndarray) -> None:
        """Build the ring buffers from an ``(R, m)`` queue assignment.

        ``assign[r, t]`` is the queue receiving label ``t`` in replica
        ``r``; labels ``0..m-1`` are laid out in increasing order within
        each queue (a stable grouping sort per replica).
        """
        replicas, m = assign.shape
        n = self.n_queues
        counts = np.zeros((replicas, n), dtype=np.int64)
        np.add.at(counts, (self._rows[:, None], assign), 1)
        max_size = int(counts.max()) if m else 0
        cap = _pow2_at_least(max_size + 8 + 4 * math.isqrt(max_size + 1))
        self._buf = np.zeros((replicas, n, cap), dtype=np.int64)
        self._head = np.zeros((replicas, n), dtype=np.int64)
        self._size = counts
        self._cap = cap
        self._capmask = cap - 1
        self._watermark = max_size
        labels = np.arange(m, dtype=np.int64)
        queue_range = np.arange(n)
        for r in range(replicas):
            order = np.argsort(assign[r], kind="stable")
            grouped = assign[r][order]
            starts = np.searchsorted(grouped, queue_range)
            within = labels - starts[grouped]
            self._buf[r, grouped, within] = order
        self._tops = np.where(counts > 0, self._buf[:, :, 0], EMPTY)

    def _grow(self) -> None:
        """Double ring capacity, re-linearizing every queue to head 0."""
        cap = self._cap
        idx = (self._head[:, :, None] + np.arange(cap)) & self._capmask
        linear = np.take_along_axis(self._buf, idx, axis=2)
        new = np.zeros((self.replicas, self.n_queues, 2 * cap), dtype=np.int64)
        new[:, :, :cap] = linear
        self._buf = new
        self._head.fill(0)
        self._cap = 2 * cap
        self._capmask = 2 * cap - 1

    def _append(self, queues: np.ndarray, label: int) -> None:
        """Append ``label`` to per-replica ``queues`` (one per replica)."""
        rows = self._rows
        if self._watermark >= self._cap:
            actual = int(self._size.max())
            if actual >= self._cap:
                self._grow()
            self._watermark = actual
        self._watermark += 1
        sizes = self._size[rows, queues]
        pos = (self._head[rows, queues] + sizes) & self._capmask
        self._buf[rows, queues, pos] = label
        self._size[rows, queues] = sizes + 1
        # Labels enter in increasing order, so the top changes only when
        # the queue was empty.
        tops = self._tops
        tops[rows, queues] = np.where(sizes == 0, label, tops[rows, queues])

    def _tops_at(self, rows: np.ndarray, queues: np.ndarray) -> np.ndarray:
        """Top label of ``queues[k]`` in replica ``rows[k]`` (EMPTY if none)."""
        return self._tops[rows, queues]

    # -- the batched (1+beta) removal kernel -----------------------------

    def _choose_removal_queues(self) -> np.ndarray:
        """One (1+beta) queue choice per replica, redrawing on empties."""
        rows = self._rows
        two, i, j = self._source.removal_draws()
        ti = self._tops_at(rows, i)
        tj = self._tops_at(rows, j)
        better_j = two & (tj < ti)
        pick = np.where(better_j, j, i)
        # The chosen queue's top is EMPTY iff both candidates were empty
        # (or the single candidate was): tj < ti is false when both are
        # EMPTY, so where(better_j, tj, ti) is the chosen top.
        empty = np.where(better_j, tj, ti) == EMPTY
        while empty.any():
            self.empty_redraws += empty
            sub = np.nonzero(empty)[0]
            two_s, i_s, j_s = self._source.removal_redraws(sub)
            ti_s = self._tops_at(sub, i_s)
            tj_s = self._tops_at(sub, j_s)
            better_s = two_s & (tj_s < ti_s)
            pick[sub] = np.where(better_s, j_s, i_s)
            still = np.where(better_s, tj_s, ti_s) == EMPTY
            empty = np.zeros_like(empty)
            empty[sub] = still
        return pick

    def _pop_step(self) -> Tuple[np.ndarray, np.ndarray]:
        """One (1+beta) pop in every replica — queue state only.

        Returns ``(labels, queues)``; the rank index is *not* updated
        (callers either update it immediately or defer a whole chunk).
        """
        rows = self._rows
        pick = self._choose_removal_queues()
        heads = self._head[rows, pick]
        labels = self._buf[rows, pick, heads & self._capmask]
        sizes = self._size[rows, pick] - 1
        self._head[rows, pick] = heads + 1
        self._size[rows, pick] = sizes
        successor = self._buf[rows, pick, (heads + 1) & self._capmask]
        self._tops[rows, pick] = np.where(sizes > 0, successor, EMPTY)
        self._removal_steps += 1
        return labels, pick

    def _removal_step(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove one element in every replica.

        Returns ``(labels, ranks, queues)``, each ``(R,)``.
        """
        if self._index.present_count == 0:
            raise LookupError("remove from empty process")
        labels, pick = self._pop_step()
        ranks = self._index.remove_trusted(labels)
        return labels, ranks, pick

    # -- deferred chunk rank accounting ----------------------------------

    def _tril_mask(self, k: int) -> np.ndarray:
        """Cached ``(k, k, 1)`` strict-lower-triangle mask (``s < t``)."""
        cached = getattr(self, "_tril_cache", None)
        if cached is None or cached.shape[0] < k:
            self._tril_cache = np.tril(np.ones((k, k), dtype=bool), -1)[:, :, None]
            cached = self._tril_cache
        return cached[:k, :k]

    def _flush_chunk(
        self, removed: np.ndarray, insert_start: int, insert_count: int
    ) -> np.ndarray:
        """Exact ranks for one chunk of deferred removals; syncs the index.

        ``removed`` is ``(k, R)`` — the labels popped at the chunk's
        steps, in order.  During the chunk the index still holds the
        chunk-*start* present sets, so the rank paid at step ``t`` is

            count_leq(start, x_t)                       (batched query)
          + #{chunk inserts before step t with label <= x_t}   (closed form:
              inserts are the consecutive labels insert_start + i, one
              per step, inserted *before* removal i)
          - #{chunk removals s < t with x_s < x_t}      (pairwise count)

        which is exactly the rank :class:`~repro.core.rank.RankOracle`
        would have reported step by step.
        """
        k = removed.shape[0]
        ranks = self._index.count_leq_grid(removed.T).T
        if insert_count:
            limit = np.minimum(np.arange(1, k + 1), insert_count)[:, None]
            ranks += np.clip(removed - insert_start + 1, 0, limit)
        earlier_smaller = removed[None, :, :] < removed[:, None, :]
        ranks -= (earlier_smaller & self._tril_mask(k)).sum(axis=1)
        self._index.apply_chunk(insert_start, insert_count, removed)
        return ranks

    def _on_remove(self, queues: np.ndarray) -> None:
        """Hook for subclasses (e.g. round-robin virtual-load counting)."""

    def run_drain(
        self, removals: int, sample_every: Optional[int] = None
    ) -> VectorRunResult:
        """Remove ``removals`` elements per replica; no inserts.

        With ``sample_every`` set, the top-rank profile is snapshotted
        every that many removals.
        """
        if removals < 0:
            raise ValueError(f"removals must be non-negative, got {removals}")
        ranks = np.empty((removals, self.replicas), dtype=np.int32)
        samples = [] if sample_every else None
        removed = np.empty((CHUNK_STEPS, self.replicas), dtype=np.int64)
        live = self._index.present_count
        done = 0
        while done < removals:
            k = min(CHUNK_STEPS, removals - done)
            if sample_every:
                # Align chunk ends with sample points so the index is
                # synced when the top-rank profile is taken.
                k = min(k, sample_every - done % sample_every)
            if live == 0:
                raise LookupError("remove from empty process")
            k = min(k, live)
            for s in range(k):
                removed[s], pick = self._pop_step()
                self._on_remove(pick)
            live -= k
            ranks[done : done + k] = self._flush_chunk(removed[:k], 0, 0)
            done += k
            if sample_every and done % sample_every == 0:
                samples.append((done, *self.top_rank_profile()))
        return self._package(ranks, samples)

    def _package(self, ranks: np.ndarray, samples) -> VectorRunResult:
        result = VectorRunResult(ranks=ranks, empty_redraws=self.empty_redraws.copy())
        if samples:
            result.sample_steps = np.asarray([s[0] for s in samples], dtype=np.int64)
            result.max_top_ranks = np.stack([s[1] for s in samples])
            result.mean_top_ranks = np.stack([s[2] for s in samples])
        return result
