"""Batched exact rank accounting across replicas.

:class:`BatchedRankIndex` is the replica-parallel counterpart of
:class:`repro.core.rank.RankOracle`: it tracks which labels of
``[0, capacity)`` are present in each of ``R`` independent replicas and
answers "how many present labels are <= x" for batches of per-replica
query labels in one shot.

The structure is a bit-packed counting hierarchy:

* a presence *bitmap*, ``(R, n_blocks, WORDS)`` uint64 with
  ``BLOCK = 128`` labels per block — a partial-block count is two
  masked popcounts;
* per-block counts ``(R, n_blocks)``;
* per-superblock counts (``~sqrt(n_blocks)`` blocks each).

Point queries (:meth:`remove`, :meth:`ranks_of`) walk all three levels
with bounded gathers.  The batched grid query (:meth:`count_leq_grid`),
which the vector engine calls once per deferred-rank chunk for
thousands of labels at a time, instead builds a fresh block prefix-sum
per call — one cumsum amortized over the whole batch — so each query
costs just two small gathers (its block's prefix plus a two-word
popcount).  Both paths compute exactly the prefix count a Fenwick tree
would, reorganized for replica-batched access.

The index assumes *lockstep* use — each :meth:`insert_all` inserts one
label into every replica, each :meth:`remove` removes one (per-replica)
label everywhere — which is how the vector engine drives it, and which
keeps the per-replica present counts equal by construction.
"""

from __future__ import annotations

import math

import numpy as np

#: Labels per presence block.  Must be a multiple of 64 (bit-packed).
BLOCK = 128
_BLOCK_SHIFT = 7
_BLOCK_MASK = BLOCK - 1
_WORDS = BLOCK // 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _prefix_masks() -> np.ndarray:
    """``masks[w]`` keeps bits for in-block offsets ``0..w`` (inclusive)."""
    masks = np.zeros((BLOCK, _WORDS), dtype=np.uint64)
    for within in range(BLOCK):
        for word in range(_WORDS):
            kept = min(64, max(0, within - word * 64 + 1))
            masks[within, word] = (
                _ALL_ONES if kept == 64 else np.uint64((1 << kept) - 1)
            )
    return masks


_PREFIX_MASKS = _prefix_masks()


class BatchedRankIndex:
    """Present-label sets and rank queries over ``R`` replicas.

    Parameters
    ----------
    replicas:
        Number of independent replicas ``R``.
    capacity:
        Size of the integer label universe ``[0, capacity)``, shared by
        all replicas (the vector processes insert the same consecutive
        labels everywhere; only *removals* diverge between replicas).
    """

    def __init__(self, replicas: int, capacity: int) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.replicas = replicas
        self.capacity = capacity
        n_blocks = -(-capacity // BLOCK)
        per_super = max(1, math.isqrt(n_blocks))
        n_super = -(-n_blocks // per_super)
        self._n_blocks = n_blocks
        self._per_super = per_super
        self._bits = np.zeros((replicas, n_blocks, _WORDS), dtype=np.uint64)
        self._blocks = np.zeros((replicas, n_super * per_super), dtype=np.int64)
        self._supers = np.zeros((replicas, n_super), dtype=np.int64)
        # View for the superblock-windowed point query.
        self._blocks3 = self._blocks.reshape(replicas, n_super, per_super)
        self._count = 0
        self._rows = np.arange(replicas, dtype=np.int64)
        self._super_offsets = np.arange(per_super, dtype=np.int64)
        self._super_ids = np.arange(n_super, dtype=np.int64)

    @property
    def present_count(self) -> int:
        """Labels currently present (identical across replicas, by lockstep)."""
        return self._count

    # -- presence ----------------------------------------------------------

    def _contains(self, rows: np.ndarray, labels: np.ndarray) -> np.ndarray:
        words = self._bits[rows, labels >> _BLOCK_SHIFT, (labels >> 6) & 1]
        return (words >> (labels & np.int64(63)).astype(np.uint64)) & np.uint64(1)

    # -- updates -----------------------------------------------------------

    def insert_all(self, label: int) -> None:
        """Mark ``label`` present in every replica (a lockstep insert)."""
        if not 0 <= label < self.capacity:
            raise ValueError(f"label {label} outside capacity {self.capacity}")
        block = label >> _BLOCK_SHIFT
        word = (label >> 6) & 1
        bit = np.uint64(1 << (label & 63))
        if self._bits[0, block, word] & bit:
            raise ValueError(f"label {label} already present")
        self._bits[:, block, word] |= bit
        self._blocks[:, block] += 1
        self._supers[:, block // self._per_super] += 1
        self._count += 1

    def bulk_fill(self, m: int) -> None:
        """Mark labels ``0..m-1`` present in every replica (prefill).

        Only valid on an empty index.
        """
        if self._count:
            raise ValueError("bulk_fill requires an empty index")
        if not 0 <= m <= self.capacity:
            raise ValueError(f"m must be in [0, {self.capacity}], got {m}")
        if m == 0:
            return
        flat = self._bits.reshape(self.replicas, -1)
        full_words, rem = divmod(m, 64)
        flat[:, :full_words] = _ALL_ONES
        if rem:
            flat[:, full_words] = np.uint64((1 << rem) - 1)
        full_blocks, brem = divmod(m, BLOCK)
        self._blocks[:, :full_blocks] = BLOCK
        if brem:
            self._blocks[:, full_blocks] = brem
        self._supers[:] = self._blocks3.sum(axis=2)
        self._count = m

    def remove(self, labels: np.ndarray) -> np.ndarray:
        """Remove one (per-replica) label everywhere; return its ranks.

        ``labels`` is an ``(R,)`` integer array, ``labels[r]`` the label
        leaving replica ``r``.  Returns the 1-based rank each label had
        among the labels present in its replica at the moment of removal
        — exactly :meth:`repro.core.rank.RankOracle.remove`, batched.
        """
        labels = np.asarray(labels)
        rows = self._rows
        if labels.shape != rows.shape:
            raise ValueError(f"expected ({self.replicas},) labels, got {labels.shape}")
        if np.any((labels < 0) | (labels >= self.capacity)):
            raise ValueError("label out of range")
        held = self._contains(rows, labels)
        if held.min() == 0:
            missing = int(np.nonzero(held == 0)[0][0])
            raise KeyError(
                f"label {int(labels[missing])} not present in replica {missing}"
            )
        return self.remove_trusted(labels)

    def remove_trusted(self, labels: np.ndarray) -> np.ndarray:
        """:meth:`remove` without validation — the engine's hot path.

        Callers must guarantee ``labels`` are in range and present (the
        engine does: removed labels come straight off its queue buffers).
        """
        rows = self._rows
        ranks = self._count_leq(rows, labels)
        blocks = labels >> _BLOCK_SHIFT
        bits = np.uint64(1) << (labels & np.int64(63)).astype(np.uint64)
        words = (labels >> 6) & 1
        self._bits[rows, blocks, words] &= ~bits
        self._blocks[rows, blocks] -= 1
        self._supers[rows, blocks // self._per_super] -= 1
        self._count -= 1
        return ranks

    def apply_chunk(
        self, insert_start: int, insert_count: int, removed: np.ndarray
    ) -> None:
        """Batch-apply one deferred chunk of lockstep updates.

        ``insert_count`` consecutive labels from ``insert_start`` become
        present in every replica, and ``removed`` — a ``(k, R)`` array of
        per-replica labels, column ``r`` holding ``k`` distinct labels —
        leaves.  Equivalent to ``insert_count`` calls to
        :meth:`insert_all` plus ``k`` calls to :meth:`remove` (sans rank
        return), collapsed into a handful of array operations.  Trusted:
        presence/absence is not validated.
        """
        if insert_count:
            stop = insert_start + insert_count
            if not 0 <= insert_start <= stop <= self.capacity:
                raise ValueError(
                    f"insert range [{insert_start}, {stop}) outside capacity"
                )
            flat = self._bits.reshape(self.replicas, -1)
            first_word, first_bit = divmod(insert_start, 64)
            last_word, last_bit = divmod(stop - 1, 64)
            if first_word == last_word:
                pattern = ((1 << (last_bit + 1)) - 1) & ~((1 << first_bit) - 1)
                flat[:, first_word] |= np.uint64(pattern)
            else:
                flat[:, first_word] |= np.uint64(((1 << 64) - 1) & ~((1 << first_bit) - 1))
                if last_word - first_word > 1:
                    flat[:, first_word + 1 : last_word] = _ALL_ONES
                flat[:, last_word] |= np.uint64((1 << (last_bit + 1)) - 1)
            labels = np.arange(insert_start, stop)
            blocks, per_block = np.unique(labels >> _BLOCK_SHIFT, return_counts=True)
            self._blocks[:, blocks] += per_block
            supers, inverse = np.unique(blocks // self._per_super, return_inverse=True)
            self._supers[:, supers] += np.bincount(inverse, weights=per_block).astype(
                np.int64
            )
            self._count += insert_count
        if removed is not None and removed.size:
            k = removed.shape[0]
            rows = np.broadcast_to(self._rows, (k, self.replicas))
            blocks = removed >> _BLOCK_SHIFT
            words = (removed >> 6) & 1
            keep = ~(np.uint64(1) << (removed & np.int64(63)).astype(np.uint64))
            np.bitwise_and.at(self._bits, (rows, blocks, words), keep)
            np.subtract.at(self._blocks, (rows, blocks), 1)
            np.subtract.at(self._supers, (rows, blocks // self._per_super), 1)
            self._count -= k

    # -- queries -----------------------------------------------------------

    def _partial_block_counts(
        self, rows: np.ndarray, blocks: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Count of present labels in each label's own block at or below it."""
        words = self._bits[rows, blocks]
        masked = words & _PREFIX_MASKS[labels & _BLOCK_MASK]
        return np.bitwise_count(masked).sum(axis=1, dtype=np.int64)

    def _count_leq(self, rows: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Count of present labels ``<= labels[k]`` in replica ``rows[k]``.

        The point-query path: bounded windows at every level (used for
        single removals and presence-checked rank reads).
        """
        blocks = labels >> _BLOCK_SHIFT
        supers = blocks // self._per_super
        counts = self._partial_block_counts(rows, blocks, labels)
        # Whole blocks below, within the label's superblock.
        bvals = self._blocks3[rows, supers]
        counts += (
            bvals * (self._super_offsets < (blocks - supers * self._per_super)[:, None])
        ).sum(axis=1)
        # Whole superblocks below.
        counts += (self._supers[rows] * (self._super_ids < supers[:, None])).sum(axis=1)
        return counts

    def ranks_of(self, labels: np.ndarray) -> np.ndarray:
        """Rank of each (per-replica, present) label, without removing it."""
        labels = np.asarray(labels)
        rows = self._rows
        if self._contains(rows, labels).min() == 0:
            raise KeyError("label not present")
        return self._count_leq(rows, labels)

    def count_leq_grid(self, labels: np.ndarray) -> np.ndarray:
        """Count present labels ``<= labels[r, q]`` for an ``(R, Q)`` grid.

        Labels need not be present (this is the batched
        :meth:`~repro.core.rank.RankOracle.rank_of_value`).  The batch
        path: one block prefix-sum per call, then two gathers per query
        — what the engine's deferred-rank flush and the top-rank
        snapshots use.
        """
        labels = np.asarray(labels)
        if labels.ndim != 2 or labels.shape[0] != self.replicas:
            raise ValueError(f"expected ({self.replicas}, Q) labels, got {labels.shape}")
        q = labels.shape[1]
        labels = np.clip(labels, 0, self.capacity - 1)
        blocks = labels >> _BLOCK_SHIFT
        # blocks_before[r, b] = total present labels in blocks < b.
        blocks_before = np.zeros((self.replicas, self._n_blocks + 1), dtype=np.int64)
        np.cumsum(
            self._blocks[:, : self._n_blocks], axis=1, out=blocks_before[:, 1:]
        )
        rows_grid = self._rows[:, None]
        counts = blocks_before[rows_grid, blocks]
        words = self._bits[rows_grid, blocks]
        masked = words & _PREFIX_MASKS[labels & _BLOCK_MASK]
        counts += np.bitwise_count(masked).sum(axis=2, dtype=np.int64)
        return counts

    def __repr__(self) -> str:
        return (
            f"BatchedRankIndex(replicas={self.replicas}, "
            f"capacity={self.capacity}, present={self._count})"
        )
