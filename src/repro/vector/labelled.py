"""Replica-batched variants of the labelled processes.

Each class mirrors its counterpart in :mod:`repro.core` —
:class:`VectorSequentialProcess` is ``R`` independent
:class:`~repro.core.process.SequentialProcess` runs advancing in
lockstep, and likewise for single-choice (beta=0), best-of-d, and
round-robin insertion.  The labels inserted are the same consecutive
integers in every replica (only the queue receiving them differs), which
keeps the present-label sets equal across replicas and makes the insert
side of the rank index a trivial column write.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policies import uniform_insert_probs
from repro.utils.rngtools import SeedLike
from repro.vector.chooser import BatchedChooser
from repro.vector.engine import CHUNK_STEPS, EMPTY, VectorProcessBase
from repro.vector.records import VectorRunResult


class VectorSequentialProcess(VectorProcessBase):
    """``R`` lockstep copies of the (1+beta)-sequential process.

    Parameters mirror :class:`~repro.core.process.SequentialProcess`,
    plus ``replicas`` and an optional explicit ``source`` (a choice
    stream from :mod:`repro.vector.chooser`); when ``source`` is omitted
    a :class:`~repro.vector.chooser.BatchedChooser` seeded from ``rng``
    drives all replicas with i.i.d. choices.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        replicas: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
        source=None,
    ) -> None:
        if insert_probs is not None:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            self.insert_probs = probs
        else:
            self.insert_probs = uniform_insert_probs(n_queues)
        if source is None:
            source = BatchedChooser(
                n_queues, beta, replicas, rng=rng, insert_probs=insert_probs
            )
        super().__init__(n_queues, capacity, replicas, source)
        self.beta = beta
        self._next_label = 0

    @property
    def labels_inserted(self) -> int:
        """Total labels inserted so far (per replica)."""
        return self._next_label

    def _draw_insert_queues(self, label: int) -> np.ndarray:
        """Per-replica queue for ``label``; round-robin overrides this."""
        return self._source.insert_queues()

    def insert(self) -> np.ndarray:
        """Insert the next consecutive label everywhere; returns queues."""
        label = self._next_label
        if label >= self.capacity:
            raise RuntimeError(
                f"capacity {self.capacity} exhausted; size the process larger"
            )
        if self._buf is None:
            self._alloc_from_assignment(np.empty((self.replicas, 0), dtype=np.int64))
        queues = self._draw_insert_queues(label)
        self._append(queues, label)
        self._index.insert_all(label)
        self._next_label += 1
        return queues

    def prefill(self, m: int) -> None:
        """Insert ``m`` consecutive labels (the paper's initial buffer).

        On a fresh process this takes a bulk path: the ``m`` per-replica
        queue choices are collected first, then the ring buffers and the
        rank index are built in one shot.
        """
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        if self._next_label + m > self.capacity:
            raise RuntimeError(
                f"capacity {self.capacity} exhausted; size the process larger"
            )
        if self._buf is None and self._next_label == 0:
            choices = np.empty((self.replicas, m), dtype=np.int64)
            for t in range(m):
                choices[:, t] = self._draw_insert_queues(t)
            self._alloc_from_assignment(choices)
            self._index.bulk_fill(m)
            self._next_label = m
        else:
            for _ in range(m):
                self.insert()

    # -- run modes -------------------------------------------------------

    def run_prefill_drain(
        self, prefill: int, removals: Optional[int] = None
    ) -> VectorRunResult:
        """Insert ``prefill`` labels, then remove ``removals`` (default: half)."""
        if removals is None:
            removals = prefill // 2
        if removals > prefill:
            raise ValueError(f"cannot remove {removals} of {prefill} inserted labels")
        self.prefill(prefill)
        return self.run_drain(removals)

    def run_steady_state(
        self, prefill: int, steps: int, sample_every: Optional[int] = None
    ) -> VectorRunResult:
        """Prefill, then alternate insert+remove for ``steps`` rounds.

        Per-replica semantics match
        :meth:`~repro.core.process.SequentialProcess.run_steady_state`
        (and the sampled variant when ``sample_every`` is set).
        """
        if sample_every is not None and sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.prefill(prefill)
        if self._buf is None:
            self._alloc_from_assignment(np.empty((self.replicas, 0), dtype=np.int64))
        if self._next_label + steps > self.capacity:
            raise RuntimeError(
                f"capacity {self.capacity} exhausted; size the process larger"
            )
        ranks = np.empty((steps, self.replicas), dtype=np.int32)
        samples = [] if sample_every else None
        removed = np.empty((CHUNK_STEPS, self.replicas), dtype=np.int64)
        done = 0
        while done < steps:
            k = min(CHUNK_STEPS, steps - done)
            if sample_every:
                k = min(k, sample_every - done % sample_every)
            first_label = self._next_label
            for s in range(k):
                label = self._next_label
                self._append(self._draw_insert_queues(label), label)
                self._next_label += 1
                removed[s], pick = self._pop_step()
                self._on_remove(pick)
            ranks[done : done + k] = self._flush_chunk(removed[:k], first_label, k)
            done += k
            if sample_every and done % sample_every == 0:
                samples.append((done, *self.top_rank_profile()))
        return self._package(ranks, samples)

    def run_steady_state_sampled(
        self, prefill: int, steps: int, sample_every: int = 1000
    ) -> VectorRunResult:
        """Steady-state run that snapshots the top-rank profile."""
        return self.run_steady_state(prefill, steps, sample_every=sample_every)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n_queues}, beta={self.beta}, "
            f"replicas={self.replicas}, present={self.present_count})"
        )


class VectorSingleChoiceProcess(VectorSequentialProcess):
    """Batched divergent single-choice process (Theorem 6; beta = 0)."""

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        replicas: int,
        rng: SeedLike = None,
        source=None,
    ) -> None:
        super().__init__(
            n_queues, capacity, replicas, beta=0.0, rng=rng, source=source
        )

    def divergence_curve(
        self, prefill: int, steps: int, sample_every: int = 1000
    ) -> VectorRunResult:
        """Sampled steady-state run; ``max_top_ranks`` is the Thm 6 curve."""
        return self.run_steady_state_sampled(prefill, steps, sample_every)


class VectorDChoiceProcess(VectorSequentialProcess):
    """Batched best-of-d removal (d-choice ablation).

    Removal picks the smallest top among ``d`` uniform queue draws,
    first-drawn queue winning ties, exactly like
    :class:`~repro.core.dchoice.DChoiceProcess`.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        replicas: int,
        d: int = 2,
        rng: SeedLike = None,
        source=None,
    ) -> None:
        if d <= 0:
            raise ValueError(f"d must be positive, got {d}")
        super().__init__(n_queues, capacity, replicas, beta=1.0, rng=rng, source=source)
        self.d = d

    def _choose_removal_queues(self) -> np.ndarray:
        rows = self._rows
        cand = self._source.dchoice_draws(self.d)
        tops = self._tops_at(rows[:, None], cand)
        # argmin returns the first index achieving the minimum, matching
        # the reference's strict-< scan over the d draws in order.
        pick = cand[rows, tops.argmin(axis=1)]
        empty = tops.min(axis=1) == EMPTY
        while empty.any():
            self.empty_redraws += empty
            sub = np.nonzero(empty)[0]
            cand_s = self._source.dchoice_redraws(sub, self.d)
            tops_s = self._tops_at(sub[:, None], cand_s)
            pick[sub] = cand_s[np.arange(len(sub)), tops_s.argmin(axis=1)]
            still = tops_s.min(axis=1) == EMPTY
            empty = np.zeros_like(empty)
            empty[sub] = still
        return pick


class VectorRoundRobinProcess(VectorSequentialProcess):
    """Batched round-robin insertion (Appendix A reduction).

    Inserts are deterministic (label ``t`` to queue ``t mod n``, no RNG
    consumed); removals follow the (1+beta) rule and are tallied per
    queue as the Appendix A 'virtual bin' loads.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        replicas: int,
        beta: float = 1.0,
        rng: SeedLike = None,
        source=None,
    ) -> None:
        super().__init__(n_queues, capacity, replicas, beta=beta, rng=rng, source=source)
        self._removal_counts = np.zeros((replicas, n_queues), dtype=np.int64)

    def _draw_insert_queues(self, label: int) -> np.ndarray:
        return np.full(self.replicas, label % self.n_queues, dtype=np.int64)

    def _on_remove(self, queues: np.ndarray) -> None:
        self._removal_counts[self._rows, queues] += 1

    def removal_counts(self) -> np.ndarray:
        """``(R, n)`` removals per queue — the virtual bin loads."""
        return self._removal_counts.copy()

    def virtual_gap(self) -> np.ndarray:
        """Per-replica ``max - mean`` virtual load (two-choice gap)."""
        counts = self._removal_counts
        return counts.max(axis=1) - counts.mean(axis=1)
