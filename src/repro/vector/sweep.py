"""Backend-level sweep runners: reference vs vector, timed and compared.

This is the layer the ``repro sweep`` CLI and the vector benchmarks sit
on.  A *backend run* executes the steady-state (1+beta) experiment —
prefill, then ``steps`` insert+remove rounds — across ``replicas``
independent copies, either one reference :class:`SequentialProcess` at a
time or all at once through :class:`VectorSequentialProcess`, and
reports identical statistics either way so results are directly
comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.stats import ks_2sample
from repro.core.process import SequentialProcess
from repro.utils.rngtools import SeedLike, spawn_seeds
from repro.vector.labelled import VectorSequentialProcess

#: Cap on per-side sample size fed to the KS test.  The rank sequence is
#: autocorrelated over time (queue state mixes slowly), and the KS
#: p-value assumes i.i.d. samples, so feeding it densely-sampled steps
#: makes it anti-conservative — two independent runs of the *same* law
#: then fail.  The sampler thins by steps (replicas at one step are
#: independent; sampled steps are spaced widely apart) and caps the
#: total so the spacing stays well above the process mixing time.
KS_SAMPLE_CAP = 2_000

#: Cap for samples compared against the *exact* oracle CDF.  Unlike the
#: two-sample parity check, the oracle comparison reports a Kolmogorov
#: *distance* (no i.i.d. p-value is attached), so a larger thinned
#: sample sharpens the estimate without anti-conservative risk.
ORACLE_SAMPLE_CAP = 20_000


@dataclass
class BackendRun:
    """One timed steady-state run of a backend across replicas."""

    backend: str
    n: int
    beta: float
    replicas: int
    prefill: int
    steps: int
    elapsed: float
    #: ``(steps, replicas)`` rank costs.
    ranks: np.ndarray = field(repr=False)

    @property
    def ops_per_sec(self) -> float:
        """Aggregate throughput: each step is one insert + one remove."""
        return 2.0 * self.steps * self.replicas / self.elapsed

    def pooled_ranks(self) -> np.ndarray:
        return self.ranks.reshape(-1)

    def row(self) -> dict:
        """JSON-safe summary row (what the CLI prints and benches emit)."""
        from repro.analysis.stats import replica_rank_summary

        return {
            "backend": self.backend,
            "n": self.n,
            "beta": self.beta,
            "replicas": self.replicas,
            "prefill": self.prefill,
            "steps": self.steps,
            "elapsed_s": round(self.elapsed, 4),
            "ops_per_sec": round(self.ops_per_sec, 1),
            **replica_rank_summary(self.ranks),
        }


def run_reference_backend(
    n: int,
    beta: float,
    prefill: int,
    steps: int,
    replicas: int,
    seed: SeedLike,
    insert_probs: Optional[np.ndarray] = None,
) -> BackendRun:
    """Run ``replicas`` independent reference processes, one at a time.

    ``seed`` is required (``spawn_seeds`` rejects ``None``): backend runs
    feed the orchestrator cache, so they must be a function of their
    arguments.
    """
    gens = spawn_seeds(seed, replicas)
    ranks = np.empty((steps, replicas), dtype=np.int32)
    # staticcheck: allow(DET102) timing measurement; lands only in the declared-volatile elapsed_s/ops_per_sec fields
    start = time.perf_counter()
    for r, gen in enumerate(gens):
        proc = SequentialProcess(
            n, prefill + steps, beta=beta, insert_probs=insert_probs, rng=gen
        )
        trace = proc.run_steady_state(prefill, steps)
        ranks[:, r] = trace.ranks
    # staticcheck: allow(DET102) timing measurement; lands only in the declared-volatile elapsed_s/ops_per_sec fields
    elapsed = time.perf_counter() - start
    return BackendRun("reference", n, beta, replicas, prefill, steps, elapsed, ranks)


def run_vector_backend(
    n: int,
    beta: float,
    prefill: int,
    steps: int,
    replicas: int,
    seed: SeedLike,
    insert_probs: Optional[np.ndarray] = None,
) -> BackendRun:
    """Run all ``replicas`` copies in lockstep through the vector engine.

    ``seed`` is required for the same reason as
    :func:`run_reference_backend`.
    """
    proc = VectorSequentialProcess(
        n, prefill + steps, replicas, beta=beta, insert_probs=insert_probs, rng=seed
    )
    # staticcheck: allow(DET102) timing measurement; lands only in the declared-volatile elapsed_s/ops_per_sec fields
    start = time.perf_counter()
    result = proc.run_steady_state(prefill, steps)
    # staticcheck: allow(DET102) timing measurement; lands only in the declared-volatile elapsed_s/ops_per_sec fields
    elapsed = time.perf_counter() - start
    return BackendRun("vector", n, beta, replicas, prefill, steps, elapsed, result.ranks)


def _even_indices(size: int, count: int) -> np.ndarray:
    """``count`` indices spread evenly across ``range(size)``, inclusive of
    both ends (deduplicated when ``count >= size``)."""
    if count >= size:
        return np.arange(size)
    return np.unique(np.round(np.linspace(0, size - 1, num=count)).astype(np.intp))


def _ks_sample(ranks: np.ndarray, cap: int = KS_SAMPLE_CAP) -> np.ndarray:
    """Near-independent subsample of a ``(steps, replicas)`` rank array.

    Sampled steps are spread evenly across the *full* step range — a
    naive ``[::stride][:cap]`` truncation biases the subsample toward
    early steps whenever stride rounding overshoots, which skews the KS
    comparison toward the burn-in end of the run.
    """
    steps, replicas = ranks.shape
    if steps * replicas <= cap:
        return ranks.reshape(-1)
    n_steps = max(1, cap // replicas)
    sample = ranks[_even_indices(steps, n_steps)].reshape(-1)
    if len(sample) > cap:  # replicas alone exceed the cap: thin evenly too
        sample = sample[_even_indices(len(sample), cap)]
    return sample


def compare_backends(
    n: int,
    beta: float,
    prefill: int,
    steps: int,
    replicas: int,
    seed: SeedLike = 0,
    insert_probs: Optional[np.ndarray] = None,
    ref_replicas: Optional[int] = None,
    ks_alpha: float = 0.001,
    oracle: bool = False,
) -> dict:
    """Time both backends on the same sweep and KS-test their rank laws.

    The reference side may run fewer replicas (``ref_replicas``, default
    ``min(replicas, 8)``) — its per-op throughput is what the speedup is
    measured against, and that rate does not depend on how many replicas
    are run back to back.  Parity is judged on the pooled rank
    distributions: both backends simulate the same process law, so the
    KS p-value should be comfortably above ``ks_alpha``.

    With ``oracle=True`` the vector side is additionally scored against
    the closed-form stationary law (``repro.analysis.exact``): the row
    gains ``oracle_mean`` / ``oracle_ks`` / ``oracle_mean_err`` columns
    (``None`` outside the oracle's model — biased insertion, huge n).
    """
    if ref_replicas is None:
        ref_replicas = min(replicas, 8)
    ref = run_reference_backend(
        n, beta, prefill, steps, ref_replicas, seed=seed, insert_probs=insert_probs
    )
    vec = run_vector_backend(
        n, beta, prefill, steps, replicas, seed=seed, insert_probs=insert_probs
    )
    stat, p_value = ks_2sample(_ks_sample(ref.ranks), _ks_sample(vec.ranks))
    result = {
        "n": n,
        "beta": beta,
        "prefill": prefill,
        "steps": steps,
        "reference": ref.row(),
        "vector": vec.row(),
        "speedup": vec.ops_per_sec / ref.ops_per_sec,
        "ks_stat": stat,
        "ks_p_value": p_value,
        "parity_ok": bool(p_value > ks_alpha),
        "ks_alpha": ks_alpha,
    }
    if oracle:
        from repro.analysis.exact import oracle_row

        # Biased insertion (insert_probs set) is outside the oracle's
        # model; signal that through oracle_row's gamma gate.
        result.update(
            oracle_row(
                n,
                beta,
                _ks_sample(vec.ranks, cap=ORACLE_SAMPLE_CAP),
                gamma=0.0 if insert_probs is None else 1.0,
            )
        )
    return result


# -- orchestrator cells ------------------------------------------------------
#
# Module-level, JSON-returning entry points for repro.orchestrate: they
# pickle to worker processes, their keyword signature *is* their cache
# identity, and everything they return round-trips through the result
# cache unchanged.  Insertion bias travels as the scalar ``gamma`` (the
# probability array is derived inside the cell) so cache keys stay
# canonical.


def _insert_probs_for(n: int, gamma: float) -> Optional[np.ndarray]:
    if not gamma:
        return None
    from repro.core.policies import biased_insert_probs

    return biased_insert_probs(n, gamma)


def sweep_cell_backend(
    beta: float,
    seed: int,
    backend: str = "vector",
    n: int = 256,
    prefill: int = 16384,
    steps: int = 20000,
    replicas: int = 64,
    gamma: float = 0.0,
    oracle: bool = False,
) -> dict:
    """One orchestrated cell: a single-backend run, as its summary row.

    An unknown ``backend`` raises ``ValueError`` rather than silently
    falling back to the reference backend — under the orchestrator's
    retry policy a ``ValueError`` is classified *fatal*, so a typo fails
    the cell on its first attempt instead of burning the retry budget on
    a deterministic error (or worse, caching a mislabeled row).

    ``oracle=True`` appends the exact-law deviation columns
    (``oracle_mean`` / ``oracle_ks`` / ``oracle_mean_err``) to the row.
    """
    if backend not in ("vector", "reference"):
        raise ValueError(
            f"unknown backend {backend!r}: expected 'vector' or 'reference'"
        )
    runner = run_vector_backend if backend == "vector" else run_reference_backend
    run = runner(
        n, beta, prefill, steps, replicas,
        seed=seed, insert_probs=_insert_probs_for(n, gamma),
    )
    row = run.row()
    if oracle:
        from repro.analysis.exact import oracle_row

        row.update(
            oracle_row(n, beta, _ks_sample(run.ranks, cap=ORACLE_SAMPLE_CAP), gamma=gamma)
        )
    return row


def sweep_cell_compare(
    beta: float,
    seed: int,
    n: int = 256,
    prefill: int = 16384,
    steps: int = 20000,
    replicas: int = 64,
    ref_replicas: Optional[int] = None,
    gamma: float = 0.0,
    ks_alpha: float = 0.001,
    oracle: bool = False,
) -> dict:
    """One orchestrated cell: both backends head to head plus KS parity."""
    return compare_backends(
        n, beta, prefill, steps, replicas,
        seed=seed,
        insert_probs=_insert_probs_for(n, gamma),
        ref_replicas=ref_replicas,
        ks_alpha=ks_alpha,
        oracle=oracle,
    )
