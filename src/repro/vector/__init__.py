"""Replica-batched NumPy kernels for the paper's random processes.

The vector subsystem runs ``R`` independent copies of a process in
lockstep over rectangular arrays — same semantics as :mod:`repro.core`,
one replica per row — so seed sweeps cost one simulation instead of
``R``.  See DESIGN.md ("The vector subsystem") for what is exact versus
merely equal in distribution.
"""

from repro.vector.ballsbins import batched_two_choice_loads, coupled_virtual_loads_vector
from repro.vector.chooser import ArrayChoiceSource, BatchedChooser, ReferenceMirror
from repro.vector.engine import EMPTY, VectorProcessBase
from repro.vector.exponential import (
    VectorExponentialProcess,
    VectorExponentialTopProcess,
)
from repro.vector.index import BatchedRankIndex
from repro.vector.labelled import (
    VectorDChoiceProcess,
    VectorRoundRobinProcess,
    VectorSequentialProcess,
    VectorSingleChoiceProcess,
)
from repro.vector.records import VectorPotentialSeries, VectorRunResult
from repro.vector.stats import (
    batched_gamma,
    batched_potentials,
    normalized_deviation,
    spread,
    tail_bin_counts,
)
from repro.vector.sweep import (
    BackendRun,
    compare_backends,
    run_reference_backend,
    run_vector_backend,
    sweep_cell_backend,
    sweep_cell_compare,
)

__all__ = [
    "EMPTY",
    "ArrayChoiceSource",
    "BackendRun",
    "BatchedChooser",
    "BatchedRankIndex",
    "ReferenceMirror",
    "VectorDChoiceProcess",
    "VectorExponentialProcess",
    "VectorExponentialTopProcess",
    "VectorPotentialSeries",
    "VectorProcessBase",
    "VectorRoundRobinProcess",
    "VectorRunResult",
    "VectorSequentialProcess",
    "VectorSingleChoiceProcess",
    "batched_gamma",
    "batched_potentials",
    "batched_two_choice_loads",
    "compare_backends",
    "coupled_virtual_loads_vector",
    "normalized_deviation",
    "run_reference_backend",
    "run_vector_backend",
    "spread",
    "sweep_cell_backend",
    "sweep_cell_compare",
    "tail_bin_counts",
]
