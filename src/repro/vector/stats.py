"""Weight-only statistics over an ``(R, n)`` top-weight matrix.

Batched counterparts of :mod:`repro.core.potential`: every function
takes the stacked top weights of ``R`` replicas and returns per-replica
values, computed exactly (no approximation — just the same formulas
evaluated along axis 1).
"""

from __future__ import annotations

import numpy as np


def normalized_deviation(weights: np.ndarray) -> np.ndarray:
    """``y = w/n - mean(w/n)`` per replica, for ``(R, n)`` weights."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[1] == 0:
        raise ValueError(f"weights must be a non-empty (R, n) array, got {w.shape}")
    x = w / w.shape[1]
    return x - x.mean(axis=1, keepdims=True)


def batched_potentials(weights: np.ndarray, alpha: float) -> "tuple[np.ndarray, np.ndarray]":
    """Per-replica ``(Phi, Psi)`` of Theorem 3, each shape ``(R,)``."""
    y = normalized_deviation(weights)
    e = np.exp(alpha * y)
    return e.sum(axis=1), (1.0 / e).sum(axis=1)


def batched_gamma(weights: np.ndarray, alpha: float) -> np.ndarray:
    """Per-replica ``Gamma = Phi + Psi``."""
    phi, psi = batched_potentials(weights, alpha)
    return phi + psi


def spread(weights: np.ndarray) -> np.ndarray:
    """Per-replica ``max - min`` top weight (the raw imbalance measure)."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[1] == 0:
        raise ValueError(f"weights must be a non-empty (R, n) array, got {w.shape}")
    return w.max(axis=1) - w.min(axis=1)


def tail_bin_counts(weights: np.ndarray, s: float) -> "tuple[np.ndarray, np.ndarray]":
    """Per-replica Lemma 5 striping counts ``(b_{>s}, b_{<-s})``."""
    y = normalized_deviation(weights)
    return (y > s).sum(axis=1), (y < -s).sum(axis=1)
