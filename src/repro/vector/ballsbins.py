"""Batched Appendix A reduction: round-robin removals as balls-into-bins.

The reference module :mod:`repro.core.round_robin` proves the reduction
one replica at a time; here the *same* explicit choice stream drives
``R`` round-robin replicas (through the vector engine) and ``R``
two-choice balls-into-bins allocations, and the virtual-load matrices
must agree entry for entry.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator
from repro.vector.chooser import ArrayChoiceSource
from repro.vector.labelled import VectorRoundRobinProcess


def batched_two_choice_loads(
    n_bins: int, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """Two-choice balls-into-bins over ``R`` replicas with given choices.

    ``i``/``j`` are ``(steps, R)`` bin indices; each step drops one ball
    per replica into the less-loaded of the two, ties broken by
    ``(load, index)`` as in
    :func:`repro.core.round_robin.coupled_virtual_loads`.  Returns the
    final ``(R, n_bins)`` loads.
    """
    steps, replicas = i.shape
    rows = np.arange(replicas)
    loads = np.zeros((replicas, n_bins), dtype=np.int64)
    for t in range(steps):
        it, jt = i[t], j[t]
        li = loads[rows, it]
        lj = loads[rows, jt]
        pick = np.where((li < lj) | ((li == lj) & (it <= jt)), it, jt)
        loads[rows, pick] += 1
    return loads


def coupled_virtual_loads_vector(
    n_queues: int,
    prefill: int,
    removals: int,
    replicas: int,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drive the App. A reduction over ``R`` replicas at once.

    Returns ``(round_robin_removal_counts, two_choice_loads)``, both
    ``(R, n_queues)``; the reduction predicts equality entry for entry
    (round-robin tops order exactly as ``(removals, index)`` pairs).
    ``prefill`` must be generous enough that no queue empties — the
    explicit choice stream cannot service redraws.
    """
    if removals > prefill:
        raise ValueError(f"cannot remove {removals} of {prefill} labels")
    rng = as_generator(seed)
    i = rng.integers(n_queues, size=(removals, replicas))
    j = rng.integers(n_queues, size=(removals, replicas))
    two = np.ones((removals, replicas), dtype=bool)

    source = ArrayChoiceSource(two=two, i=i, j=j)
    proc = VectorRoundRobinProcess(
        n_queues, prefill, replicas, beta=1.0, source=source
    )
    proc.prefill(prefill)
    proc.run_drain(removals)
    return proc.removal_counts(), batched_two_choice_loads(n_queues, i, j)
