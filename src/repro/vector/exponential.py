"""Replica-batched exponential process (Section 4 / Theorems 2 and 3).

Two batched analogues of :mod:`repro.core.exponential`:

* :class:`VectorExponentialProcess` — generates ``m`` labels per replica
  as per-bin ``Exp(1/pi_i)`` renewal streams and then drains them with
  the (1+beta) kernel over global *ranks* (the Theorem 2 device: once
  ranks are assigned, only they matter — and rank order equals value
  order, so the integer-label removal kernel of the engine applies
  unchanged).
* :class:`VectorExponentialTopProcess` — the infinite-supply weight-only
  process of Theorem 3 batched over replicas: an ``(R, n)`` top-weight
  matrix advanced one (1+beta) removal per replica per step.

Generation is exact, not approximate: each bin's renewal stream is
extended until its frontier provably exceeds the ``m``-th smallest
candidate value, so the selected prefix is the true first ``m`` arrivals
of the superposed process.  (Unused renewals beyond the threshold are
simply discarded; streams are independent, so no conditioning is
introduced.)
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.policies import uniform_insert_probs
from repro.utils.rngtools import SeedLike, as_generator
from repro.vector.chooser import BatchedChooser
from repro.vector.engine import VectorProcessBase
from repro.vector.records import VectorPotentialSeries
from repro.vector.stats import batched_potentials


def _validated_probs(n_queues: int, insert_probs) -> np.ndarray:
    if insert_probs is None:
        return uniform_insert_probs(n_queues)
    probs = np.asarray(insert_probs, dtype=float)
    if len(probs) != n_queues:
        raise ValueError(
            f"insert_probs has length {len(probs)}, expected {n_queues}"
        )
    return probs


class VectorExponentialProcess(VectorProcessBase):
    """Finite-horizon batched exponential process with rank accounting.

    ``generate(m)`` realizes the renewal streams of all replicas at once
    and lays the resulting global ranks ``0..m-1`` into the queue
    engine; :meth:`run_drain` (inherited) then pays exact rank costs.
    One generation batch per process instance.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        replicas: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
        source=None,
    ) -> None:
        self._probs = _validated_probs(n_queues, insert_probs)
        self._means = 1.0 / self._probs
        gen = as_generator(rng)
        self._gen_rng = gen
        if source is None:
            source = BatchedChooser(n_queues, beta, replicas, rng=gen)
        super().__init__(n_queues, capacity, replicas, source)
        self.beta = beta
        self._generated = 0
        self._assign: Optional[np.ndarray] = None

    @property
    def generated(self) -> int:
        """Labels generated so far (per replica)."""
        return self._generated

    def generate(self, m: int) -> None:
        """Generate the first ``m`` arrivals of every replica's process."""
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        if self._generated:
            raise RuntimeError(
                "the vector exponential process generates a single batch"
            )
        if m > self.capacity:
            raise RuntimeError(
                f"capacity {self.capacity} exhausted; size the process larger"
            )
        if m == 0:
            return
        rng = self._gen_rng
        replicas, n = self.replicas, self.n_queues
        # Initial stream length: enough for the busiest bin in
        # expectation plus a 6-sigma margin; extended below if short.
        max_p = float(self._probs.max())
        length = int(math.ceil(m * max_p + 6.0 * math.sqrt(m * max_p) + 16.0))
        scale = self._means[None, :, None]
        cums = rng.exponential(scale, size=(replicas, n, length)).cumsum(axis=2)
        while True:
            threshold = np.partition(cums.reshape(replicas, -1), m - 1, axis=1)[
                :, m - 1
            ]
            frontier = cums[:, :, -1]
            if not (frontier < threshold[:, None]).any():
                break
            ext_len = max(16, cums.shape[2] // 2)
            ext = rng.exponential(scale, size=(replicas, n, ext_len))
            cums = np.concatenate(
                [cums, ext.cumsum(axis=2) + frontier[:, :, None]], axis=2
            )
        order = np.argsort(cums.reshape(replicas, -1), axis=1, kind="stable")[:, :m]
        assign = (order // cums.shape[2]).astype(np.int64)
        self._assign = assign
        self._alloc_from_assignment(assign)
        self._index.bulk_fill(m)
        self._generated = m

    def bin_assignment(self) -> np.ndarray:
        """``(R, m)`` map from each global rank to its bin.

        Theorem 2 predicts the entries are i.i.d. ``pi`` draws within
        each replica.  Only meaningful before removals.
        """
        if self._assign is None:
            raise RuntimeError("nothing generated yet")
        if self._removal_steps:
            raise RuntimeError("bin_assignment called after removals")
        return self._assign.copy()

    def __repr__(self) -> str:
        return (
            f"VectorExponentialProcess(n={self.n_queues}, beta={self.beta}, "
            f"replicas={self.replicas}, present={self.present_count})"
        )


class VectorExponentialTopProcess:
    """Batched infinite-supply exponential process (weights only).

    ``R`` replicas of :class:`~repro.core.exponential.ExponentialTopProcess`
    advanced in lockstep: state is just the ``(R, n)`` top-weight matrix,
    each step removes per the (1+beta) rule and advances the removed
    bin's top by a fresh ``Exp(1/pi_i)`` increment.  Bins never empty,
    so there are no redraws and the kernel is branch-free.
    """

    def __init__(
        self,
        n_queues: int,
        replicas: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.n_queues = n_queues
        self.replicas = replicas
        self.beta = beta
        self._probs = _validated_probs(n_queues, insert_probs)
        self._means = 1.0 / self._probs
        gen = as_generator(rng)
        self._rng = gen
        self._chooser = BatchedChooser(n_queues, beta, replicas, rng=gen)
        self._rows = np.arange(replicas, dtype=np.int64)
        # First renewal of each bin, as in the reference t=0 state.
        self._tops = gen.exponential(self._means, size=(replicas, n_queues))
        self.steps = 0

    @property
    def top_weights(self) -> np.ndarray:
        """Current ``(R, n)`` top weights (a copy)."""
        return self._tops.copy()

    def step(self) -> np.ndarray:
        """One (1+beta) removal per replica; returns the bins removed from."""
        two, i, j = self._chooser.removal_draws()
        rows = self._rows
        ti = self._tops[rows, i]
        tj = self._tops[rows, j]
        pick = np.where(two & (tj < ti), j, i)
        self._tops[rows, pick] += self._rng.exponential(self._means[pick])
        self.steps += 1
        return pick

    def run(self, steps: int) -> None:
        """Advance all replicas by ``steps`` removals."""
        for _ in range(steps):
            self.step()

    def run_potentials(
        self, steps: int, alpha: float, sample_every: int = 1
    ) -> VectorPotentialSeries:
        """Advance ``steps`` removals, sampling Theorem 3 potentials."""
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        ts, phis, psis = [], [], []
        for step in range(1, steps + 1):
            self.step()
            if step % sample_every == 0:
                phi, psi = batched_potentials(self._tops, alpha)
                ts.append(self.steps)
                phis.append(phi)
                psis.append(psi)
        return VectorPotentialSeries(
            steps=np.asarray(ts, dtype=np.int64),
            phi=np.stack(phis) if phis else np.empty((0, self.replicas)),
            psi=np.stack(psis) if psis else np.empty((0, self.replicas)),
        )

    def __repr__(self) -> str:
        return (
            f"VectorExponentialTopProcess(n={self.n_queues}, beta={self.beta}, "
            f"replicas={self.replicas}, t={self.steps})"
        )
