"""Burn-in detection and stationarity checks for rank series.

The theorems are time-uniform, but finite runs still have a transient
(the prefill's random layout relaxes into the process's stationary
profile).  These helpers estimate where the transient ends, so benches
can justify their prefill/measurement splits, and classify series as
stationary vs drifting (two-choice vs single-choice, quantitatively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class BurnInReport:
    """Outcome of burn-in estimation on a series."""

    #: Index (in samples) where the series first looks stationary, or
    #: None if it never settles within tolerance.
    burn_in: Optional[int]
    #: Mean over the reference (final) region.
    reference_mean: float
    #: Windowed means used for the decision.
    window_means: np.ndarray
    window: int

    @property
    def converged(self) -> bool:
        """Whether a burn-in point was found."""
        return self.burn_in is not None


def estimate_burn_in(
    series: Sequence[float],
    n_windows: int = 20,
    tolerance: float = 0.15,
) -> BurnInReport:
    """Find where a series settles near its long-run level.

    The series is split into ``n_windows`` equal windows; the reference
    level is the mean of the final quarter of windows.  Burn-in is the
    start of the first window from which *every* subsequent window mean
    stays within ``tolerance`` (relative) of the reference.
    """
    data = np.asarray(series, dtype=float)
    if len(data) < n_windows:
        raise ValueError(f"series of {len(data)} too short for {n_windows} windows")
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    window = len(data) // n_windows
    usable = window * n_windows
    means = data[:usable].reshape(n_windows, window).mean(axis=1)
    reference = float(means[-max(n_windows // 4, 1):].mean())
    scale = abs(reference) if reference != 0 else 1.0
    burn_in: Optional[int] = None
    for start in range(n_windows):
        if np.all(np.abs(means[start:] - reference) <= tolerance * scale):
            burn_in = start * window
            break
    return BurnInReport(
        burn_in=burn_in, reference_mean=reference, window_means=means, window=window
    )


def is_stationary(
    series: Sequence[float], n_windows: int = 20, tolerance: float = 0.15
) -> bool:
    """Whether the series settles within the first half of its length.

    A drifting series (single-choice rank cost) either never converges
    or 'converges' only in its last windows; a stationary one (two-choice)
    settles early.
    """
    report = estimate_burn_in(series, n_windows=n_windows, tolerance=tolerance)
    if report.burn_in is None:
        return False
    return report.burn_in <= len(series) // 2


def drift_rate(series: Sequence[float]) -> float:
    """Relative drift: (last-quarter mean - first-quarter mean) / overall mean.

    ~0 for stationary series; strongly positive for diverging ones.
    """
    data = np.asarray(series, dtype=float)
    if len(data) < 8:
        raise ValueError(f"series of {len(data)} too short")
    quarter = len(data) // 4
    overall = data.mean()
    if overall == 0:
        return 0.0
    return float((data[-quarter:].mean() - data[:quarter].mean()) / overall)
