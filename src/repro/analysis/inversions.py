"""Rank-inversion counting over removal sequences.

The paper's Figure 2 methodology timestamps returned elements and counts
inversions in post-processing.  Given the sequence of priorities in
removal order, an *inversion* is a pair removed in the wrong relative
order.  A strict queue has zero; relaxed queues trade inversions for
scalability.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def count_inversions(sequence: Sequence) -> int:
    """Number of out-of-order pairs, via merge sort in O(m log m).

    ``sequence`` holds comparable priorities in removal order; the count
    is ``#{(i, j) : i < j, seq[i] > seq[j]}``.
    """
    items = list(sequence)
    _, inversions = _sort_count(items)
    return inversions


def inversion_rate(sequence: Sequence) -> float:
    """Inversions normalized by the maximum possible ``m(m-1)/2``.

    0 for a perfectly ordered output, 1 for fully reversed; a useful
    scale-free quality score when comparing runs of different lengths.
    """
    m = len(sequence)
    if m < 2:
        return 0.0
    return count_inversions(sequence) / (m * (m - 1) / 2)


def _sort_count(items: List) -> Tuple[List, int]:
    if len(items) <= 1:
        return items, 0
    mid = len(items) // 2
    left, inv_l = _sort_count(items[:mid])
    right, inv_r = _sort_count(items[mid:])
    merged: List = []
    inversions = inv_l + inv_r
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            # right[j] jumps over every remaining left element.
            inversions += len(left) - i
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions
