"""Exact stationary rank distribution of the (1+beta) MultiQueue process.

The paper's Theorem 1/6 envelopes are asymptotic; "A Simple yet Exact
Analysis of the MultiQueue" (Walzer & Williams, arXiv:2410.08714) shows
the stationary behaviour has a *closed form*.  This module implements
that exact law for the repo's steady-state ``(1+beta)`` sequential
process and exposes it as a verification oracle: per-rank
probabilities, mean/variance, percentile and tail queries, all without
simulation.

Model mapping
-------------
The repo's steady-state run (``run_steady_state(prefill, steps)``,
reference and vector backends alike) alternates one uniform insertion
with one removal over ``n`` queues.  A removal flips the beta coin:
with probability ``beta`` it probes an *ordered pair* of queues drawn
uniformly **with replacement** (each pair probability ``1/n**2``) and
pops the smaller top; otherwise it pops a single uniform queue.  The
cost paid is the 1-based global rank of the removed label.  In the
large-population limit (``prefill >> n``, queues never empty — the
regime every steady-state run in this repo operates in) this is exactly
the model analysed by Walzer & Williams; ``beta`` maps directly, and
insertion bias (``gamma != 0``) is *not* modelled.

The exact law
-------------
Sort the queues by their top label.  The probability a removal pops the
``j``-th smallest top is

    q_j = beta * (2*(n - j) + 1) / n**2 + (1 - beta) / n

(the two-choice probe picks the min of two uniform sorted indices, the
single-choice probe is uniform).  The key structural fact: conditioned
on the *positions* of the tops in the global sorted order of present
labels, the non-top labels are exchangeable — so the state reduces to
the gaps ``g_1..g_{n-1}`` between consecutive top positions
(``p_(1) = 1`` always; ``p_(k+1) = p_(k) + g_k``).  The stationary law
of the gap chain is a product of independent geometrics

    P[g_k = v] = (1 - rho_k) * rho_k**(v - 1),   v >= 1,
    rho_k = k / (n * Q_k),    Q_k = q_1 + ... + q_k,

and the stationary rank paid by a removal is

    R = J + sum_{m < J} (g_m - 1),   J ~ q,  g_m independent geometrics.

:func:`balance_residuals` substitutes this product-geometric law into
the gap chain's stationarity equations and returns the residuals —
zero to machine precision for every ``(n, beta)``; the test suite
asserts this (plus agreement with a brute-force enumeration of the
full transition law at ``n = 3``, and distributional convergence of
the simulation backends), so the "exact" claim is machine-checked, not
taken on faith.

At ``beta = 0`` the formula gives ``rho_k = 1``: the geometrics are
improper and no stationary law exists — precisely Theorem 6's
single-choice divergence.  The constructor rejects ``beta <= 0``.

Evaluation strategy
-------------------
* ``mean`` / ``variance``: closed form, O(n) — instant at any ``n``.
* ``pmf`` / ``cdf`` / ``sf`` / ``quantile``: an exact truncated grid
  built by sequential geometric convolution (O(n * K) with K the grid
  length).  Increments are non-negative, so truncation at the grid
  edge is exact: the grid deficit equals ``sf(K)``.  Practical for
  ``n`` up to a few thousand.
* ``logsf_tail`` / ``sf_tail`` / ``quantile_tail``: dominant-pole
  expansion of the probability generating function, evaluated in log
  space — tail and deep-percentile queries stay fast and stable at
  ``n >> 4096`` where both simulation and the full grid are
  infeasible.  The poles are near-confluent at large ``n`` (adjacent
  ``rho`` spacing ``~1/n``), so partial-fraction residues grow fast
  and *more* poles eventually inject float cancellation noise; the
  evaluator therefore walks a small ladder of pole counts and accepts
  the first plateau (consecutive estimates in agreement), stopping at
  the first sign of cancellation.  A query too close to the bulk has
  no plateau and raises rather than returning a silently wrong
  number.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

#: Grid truncation target: the grid is grown until the mass beyond it
#: (== ``sf(grid_end)``, exactly) drops below this.
GRID_TAIL_EPS = 1e-12

#: Hard cap on grid length (memory/time guard).
MAX_GRID = 1 << 23

#: Largest n for which grid-backed queries are attempted; beyond this
#: the O(n * K) convolution is slower than simulation itself and the
#: pole-expansion/tail API is the supported path.
GRID_N_MAX = 8192

#: Largest pole count the adaptive tail expansion will try.
TAIL_POLES = 32

#: Pole-count ladder walked by :meth:`ExactRankDistribution.logsf_tail`.
#: Small counts are accurate in the certified regime; large counts are
#: where near-confluent residue cancellation sets in, so the ladder is
#: front-loaded.
_POLE_LADDER = (2, 3, 4, 6, 8, 12, 16, 24, 32)


def removal_position_law(n: int, beta: float) -> np.ndarray:
    """``q_j``: probability a removal pops the ``j``-th smallest top."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    j = np.arange(1, n + 1, dtype=float)
    return beta * (2.0 * (n - j) + 1.0) / (n * n) + (1.0 - beta) / n


def gap_ratios(n: int, beta: float) -> np.ndarray:
    """Geometric ratios ``rho_1..rho_{n-1}`` of the stationary top gaps.

    ``rho_k = k / (n * Q_k)`` with ``Q_k`` the cumulative removal law.
    Strictly increasing in ``k``; ``beta = 0`` gives ``rho_k = 1``
    (improper — the single-choice process has no stationary rank law).
    """
    q = removal_position_law(n, beta)
    if n == 1:
        return np.empty(0)
    k = np.arange(1, n, dtype=float)
    return k / (n * np.cumsum(q)[:-1])


def balance_residuals(n: int, beta: float) -> np.ndarray:
    """Stationarity residuals of the product-geometric law (machine check).

    For each ``k`` the stationary flow balance of ``W_k`` (the count of
    non-top labels below the ``(k+1)``-th top) under the product law
    reads ``E[U'_{k+1}] * D_k = Q_{k+1}`` where ``D_k`` is the
    probability the replacement scan of a removal at ``j <= k+1``
    reaches the ``(k+1)``-th window and ``U'`` is the truncated
    geometric landing offset.  Exactness of the closed form means every
    residual is zero to floating-point round-off; the tests assert it.
    """
    q = removal_position_law(n, beta)
    Q = np.cumsum(q)
    rho = gap_ratios(n, beta)
    res = []
    reach = 0.0  # sum_{j<=k} q_j * prod_{m=j..k} psi_m, built incrementally
    for k in range(1, n):
        m = float(k)
        phi = 1.0 - 1.0 / m
        psi = (1.0 - rho[k - 1]) / (1.0 - phi * rho[k - 1])
        reach = (reach + q[k - 1]) * psi
        through = q[k] + reach
        if k <= n - 2:
            landing = 1.0 / (1.0 - (1.0 - 1.0 / (k + 1)) * rho[k])
        else:
            landing = float(n)  # past the last top the scan always succeeds
        res.append(landing * through - Q[k])
    return np.asarray(res)


def _convolve_geometric(f: np.ndarray, rho: float) -> np.ndarray:
    """pmf of ``X + d`` on ``f``'s grid, ``d ~ Geom0(rho)`` (failures
    before first success).

    Mass pushed beyond the grid edge is dropped — an *exact* truncation
    because increments are non-negative.  Uses a short explicit kernel
    for small ``rho`` and a rescaled blocked prefix scan of the linear
    recurrence ``h[s] = rho * h[s-1] + (1-rho) * f[s]`` for ``rho``
    near 1 (the naive cumsum form overflows through ``rho**-s``).
    """
    K = f.size
    if rho <= 0.0:
        return f.copy()
    if rho < 0.5:
        # rho**L below 1e-30: the dropped kernel tail is far under the
        # double-precision noise floor of the result.
        L = min(K, max(2, int(math.ceil(-69.1 / math.log(rho)))))
        kernel = (1.0 - rho) * rho ** np.arange(L)
        return np.convolve(f, kernel)[:K]
    out = np.empty_like(f)
    B = min(K, max(32, int(340.0 / -math.log(rho))) if rho < 1.0 else K)
    t = np.arange(B)
    pw = rho ** t
    inv = rho ** (-t.astype(float))  # bounded by exp(340) via the B cap
    carry = 0.0
    succ = 1.0 - rho
    for s0 in range(0, K, B):
        blk = f[s0 : s0 + B]
        nb = blk.size
        c = np.cumsum(blk * inv[:nb])
        h = pw[:nb] * (rho * carry + succ * c)
        out[s0 : s0 + nb] = h
        carry = h[-1]
    return out


class ExactRankDistribution:
    """The exact stationary rank law of the ``(1+beta)`` process.

    >>> law = ExactRankDistribution(8, 1.0)
    >>> round(law.mean(), 3)
    6.87...

    Grid-backed queries (``pmf``/``cdf``/``sf``/``quantile``) are exact
    up to the reported :attr:`grid_deficit`; closed-form moments and
    the log-space tail expansion work at any ``n``.
    """

    def __init__(
        self,
        n: int,
        beta: float,
        *,
        grid_eps: float = GRID_TAIL_EPS,
        max_grid: int = MAX_GRID,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(
                f"beta must be in (0, 1], got {beta}: the single-choice "
                "process (beta=0) has no stationary rank law (Theorem 6)"
            )
        self.n = int(n)
        self.beta = float(beta)
        self.q = removal_position_law(n, beta)
        self.rho = gap_ratios(n, beta)
        self._grid_eps = float(grid_eps)
        self._max_grid = int(max_grid)
        self._pmf: Optional[np.ndarray] = None
        self._cdf: Optional[np.ndarray] = None
        self._pole_cache: dict = {}
        # Prefix moments of the gap increments d_m = g_m - 1 ~ Geom0(rho_m).
        mu = self.rho / (1.0 - self.rho)
        var = self.rho / (1.0 - self.rho) ** 2
        self._prefix_mu = np.concatenate([[0.0], np.cumsum(mu)])
        self._prefix_var = np.concatenate([[0.0], np.cumsum(var)])

    # -- closed-form moments -------------------------------------------------

    def mean(self) -> float:
        """``E[R]`` in closed form, O(n)."""
        j = np.arange(1, self.n + 1, dtype=float)
        return float(np.sum(self.q * (j + self._prefix_mu[: self.n])))

    def variance(self) -> float:
        """``Var[R]`` in closed form, O(n) (law of total variance over J)."""
        j = np.arange(1, self.n + 1, dtype=float)
        cond_mean = j + self._prefix_mu[: self.n]
        cond_var = self._prefix_var[: self.n]
        m = np.sum(self.q * cond_mean)
        return float(np.sum(self.q * (cond_var + cond_mean**2)) - m * m)

    def std(self) -> float:
        return math.sqrt(self.variance())

    # -- exact grid ----------------------------------------------------------

    def _initial_grid_size(self) -> int:
        scale = 0.0
        if self.rho.size:
            scale = 1.0 / (1.0 - float(self.rho[-1]))
        guess = self.mean() + 10.0 * self.std() + scale * math.log(1.0 / self._grid_eps)
        return min(self._max_grid, max(self.n + 2, int(guess) + 2))

    def _build_grid(self, K: int) -> np.ndarray:
        acc = np.zeros(K + 1)
        h = np.zeros(K + 1)  # pmf of p_(j), the j-th top position
        h[min(1, K)] = 1.0 if K >= 1 else 0.0
        acc += self.q[0] * h
        for j in range(2, self.n + 1):
            h[1:] = h[:-1]  # p_(j) >= p_(j-1) + 1
            h[0] = 0.0
            h = _convolve_geometric(h, float(self.rho[j - 2]))
            if h.sum() < 1e-16:  # everything beyond the grid already
                break
            acc += self.q[j - 1] * h
        return acc

    def _ensure_grid(self) -> None:
        if self._pmf is not None:
            return
        if self.n > GRID_N_MAX:
            raise ValueError(
                f"grid evaluation at n={self.n} exceeds GRID_N_MAX={GRID_N_MAX} "
                "(O(n*K) convolution); use mean()/variance(), sf_tail(), or "
                "quantile_tail() — the large-n API"
            )
        K = self._initial_grid_size()
        while True:
            pmf = self._build_grid(K)
            deficit = 1.0 - float(pmf.sum())
            if deficit <= self._grid_eps or K >= self._max_grid:
                break
            K = min(self._max_grid, K * 2)
        self._pmf = pmf
        self._cdf = np.cumsum(pmf)

    @property
    def grid_deficit(self) -> float:
        """Exact probability mass beyond the grid (``== sf(grid_end)``)."""
        self._ensure_grid()
        return 1.0 - float(self._pmf.sum())

    @property
    def support_max(self) -> int:
        """Last rank covered by the exact grid."""
        self._ensure_grid()
        return self._pmf.size - 1

    def pmf(self, r) -> np.ndarray:
        """``P[R = r]`` (vectorized; zero outside the grid)."""
        self._ensure_grid()
        r = np.asarray(r, dtype=np.int64)
        out = np.zeros(r.shape, dtype=float)
        ok = (r >= 0) & (r < self._pmf.size)
        out[ok] = self._pmf[r[ok]]
        return out if out.ndim else float(out)

    def cdf(self, x) -> np.ndarray:
        """``P[R <= x]`` (vectorized)."""
        self._ensure_grid()
        x = np.floor(np.asarray(x, dtype=float)).astype(np.int64)
        idx = np.clip(x, -1, self._cdf.size - 1)
        padded = np.concatenate([[0.0], self._cdf])
        out = padded[idx + 1]
        return out if out.ndim else float(out)

    def sf(self, x) -> np.ndarray:
        """``P[R > x]`` (vectorized)."""
        return 1.0 - self.cdf(x)

    def quantile(self, p: float) -> int:
        """Smallest rank ``r`` with ``cdf(r) >= p``."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self._ensure_grid()
        if p > float(self._cdf[-1]):
            raise ValueError(
                f"p={p} beyond the grid's covered mass {float(self._cdf[-1])}; "
                "raise max_grid or use quantile_tail()"
            )
        return int(np.searchsorted(self._cdf, p, side="left"))

    # -- log-space tail expansion (large n) ----------------------------------

    def _pole_coefficients(self, poles: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top ``poles`` dominant poles of the rank pgf.

        Returns ``(rho_m, log|c_m|, sign_m)`` where the rank pmf tail is
        ``p_r ~ sum_m c_m * rho_m**r``.  Each coefficient is a signed
        sum of log-space products — no catastrophic cancellation inside
        a term; the cross-term sum is scaled by its max exponent.
        """
        n = self.n
        rho = self.rho
        q = self.q
        poles = max(1, min(poles, n - 1))
        cached = self._pole_cache.get(poles)
        if cached is not None:
            return cached
        logq = np.log(q)
        log1m = np.log1p(-rho)
        rhos_out = np.empty(poles)
        logc_out = np.empty(poles)
        sign_out = np.empty(poles)
        for i in range(poles):
            m = n - 1 - i  # 1-based pole index, largest rho first
            rm = float(rho[m - 1])
            logz = -math.log(rm)
            # psi_{m'}(1/rho_m) = (1-rho_{m'}) / (1 - rho_{m'}/rho_m)
            ratio = 1.0 - rho / rm
            with np.errstate(divide="ignore"):
                logpsi = log1m - np.log(np.abs(ratio))
            logpsi[m - 1] = 0.0  # excluded factor
            prefix = np.concatenate([[0.0], np.cumsum(logpsi)])
            js = np.arange(m + 1, n + 1)
            # terms over j > m: q_j z^j (1-rho_m) prod_{m'<j, m'!=m} psi_{m'}
            logterm = (
                logq[js - 1]
                + js * logz
                + math.log1p(-rm)
                + prefix[js - 1]  # sum over m' = 1..j-1, with m zeroed out
            )
            signs = np.where((js - m - 1) % 2 == 0, 1.0, -1.0)
            peak = logterm.max()
            total = float(np.sum(signs * np.exp(logterm - peak)))
            rhos_out[i] = rm
            if total == 0.0:
                logc_out[i] = -np.inf
                sign_out[i] = 1.0
            else:
                logc_out[i] = peak + math.log(abs(total))
                sign_out[i] = math.copysign(1.0, total)
        self._pole_cache[poles] = (rhos_out, logc_out, sign_out)
        return rhos_out, logc_out, sign_out

    def _tail_logsf(self, x: float, poles: int) -> float:
        rhos, logc, sign = self._pole_coefficients(poles)
        # sf(x) = sum_m c_m rho_m^{x+1} / (1 - rho_m)
        logterm = logc + (x + 1.0) * np.log(rhos) - np.log1p(-rhos)
        peak = float(logterm.max())
        if peak == -np.inf:
            return -np.inf
        total = float(np.sum(sign * np.exp(logterm - peak)))
        if total <= 0.0:
            raise ValueError(
                f"tail expansion lost all precision at x={x} (cancellation); "
                "the query is too close to the bulk for the pole expansion"
            )
        return peak + math.log(total)

    def logsf_tail(self, x: float, poles: int = TAIL_POLES, rtol: float = 5e-3) -> float:
        """``log P[R > x]`` via the adaptive dominant-pole expansion.

        Walks a front-loaded ladder of pole counts and accepts the first
        *plateau*: two consecutive estimates within ``rtol`` (relative
        error in the survival probability, i.e. absolute in log space
        for small tolerances).  Near-confluent residues mean large pole
        counts eventually inject cancellation noise — visible as a
        lost-precision error or an estimate drifting upward — and the
        walk stops there.  Raises :class:`ValueError` when no plateau
        exists: the query is too central for the expansion (use the
        exact grid when ``n <= GRID_N_MAX``).
        """
        if self.n == 1:
            return 0.0 if x < 1 else -np.inf
        x = float(x)
        cap = max(1, min(poles, self.n - 1))
        ladder = [p for p in _POLE_LADDER if p < cap] + [cap]
        prev = None
        for rung in ladder:
            try:
                est = self._tail_logsf(x, rung)
            except ValueError:
                break  # cancellation onset: trust nothing past this rung
            if not math.isfinite(est):
                return est  # tail underflows double range: genuinely 0
            if prev is not None:
                if abs(est - prev) <= rtol * max(1.0, abs(est)):
                    return est
                if est > prev + 1.0:
                    break  # upward drift: cancellation, stop walking
            elif len(ladder) == 1:
                return est  # n <= 2: the single-pole expansion is complete
            prev = est
        raise ValueError(
            f"pole expansion has no stable plateau at x={x} (n={self.n}, "
            f"beta={self.beta}); the query is too central — use the exact "
            "grid (cdf/sf) or a deeper x"
        )

    def sf_tail(self, x: float, poles: int = TAIL_POLES) -> float:
        """``P[R > x]`` via the tail expansion (0.0 on underflow)."""
        return math.exp(self.logsf_tail(x, poles))

    def quantile_tail(self, p: float, poles: int = TAIL_POLES) -> int:
        """Deep percentile (``p`` close to 1) at any ``n``.

        Smallest rank ``r`` with ``sf(r) <= 1 - p``, located by
        bisection of the log-space tail expansion.  During the search a
        point too central for the expansion to certify is soundly
        treated as ``sf > 1 - p`` (non-certification only happens near
        the bulk); the bracket is verified at the end and a ``p`` whose
        quantile lies outside the certified region raises instead of
        returning a boundary artefact.
        """
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        if p < 0.75:
            raise ValueError(
                f"quantile_tail is for tail percentiles (p >= 0.75), got {p}; "
                "use quantile() on the exact grid for central quantiles"
            )

        def _deep_enough(r: int) -> bool:
            try:
                return self.logsf_tail(r, poles) <= target
            except ValueError:
                return False  # too central to certify => sf is large

        target = math.log1p(-p)
        lo = max(1, int(self.mean()))  # sf(mean) > 0.25 >= 1-p always
        hi = lo
        span = max(1, int(self.std()) or 1)
        while not _deep_enough(hi):
            hi = hi + span
            span *= 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if _deep_enough(mid):
                hi = mid
            else:
                lo = mid
        # Soundness check: the crossing is genuine only if the point just
        # below the answer is itself certified (and above target).
        if hi > 1:
            try:
                below = self.logsf_tail(hi - 1, poles)
            except ValueError:
                raise ValueError(
                    f"quantile_tail(p={p}) lies at the edge of the certified "
                    f"tail region at n={self.n}, beta={self.beta}; use the "
                    "exact grid quantile() or a deeper p"
                ) from None
            if below <= target:  # pragma: no cover - bisection invariant
                raise AssertionError("tail bisection bracket violated")
        return hi

    # -- comparison helpers --------------------------------------------------

    def ks_distance(self, sample) -> float:
        """Kolmogorov distance between an empirical rank sample and the law.

        ``sup_x |F_emp(x) - F(x)|`` — the convergence metric used by the
        oracle acceptance tests and the ``--oracle`` sweep column.  Rank
        samples are autocorrelated in t, so treat this as a distance,
        not as an i.i.d. test statistic.

        Computed exactly for this *discrete* law: both CDFs are step
        functions that only jump at integers, so the supremum is the max
        over integer grid points.  The generic
        :func:`repro.analysis.stats.ks_1sample` statistic must not be
        used here — its ``F(x_i) - F_emp(x_i^-)`` term assumes an
        atomless ``F`` and inflates to ``P[R = 1]`` (~0.75 at small n)
        on heavily tied rank data even when the sample matches the law.
        """
        ranks = np.asarray(sample).reshape(-1)
        if ranks.size == 0:
            raise ValueError("sample must be non-empty")
        smax = self.support_max
        inlier = ranks[(ranks >= 0) & (ranks <= smax)].astype(np.int64)
        # Mass the grid cannot see: sample points beyond support_max
        # (where the truncated grid pins F at 1 - grid_deficit).
        overflow = (ranks.size - inlier.size) / ranks.size
        emp = np.cumsum(np.bincount(inlier, minlength=smax + 1)) / ranks.size
        theory = self.cdf(np.arange(smax + 1))
        return max(float(np.abs(emp - theory).max()), overflow + self.grid_deficit)

    def summary(self) -> dict:
        """Headline oracle numbers in the repo's rank-summary shape."""
        return {
            "mean_rank": self.mean(),
            "p50_rank": float(self.quantile(0.50)),
            "p99_rank": float(self.quantile(0.99)),
            "std_rank": self.std(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ExactRankDistribution(n={self.n}, beta={self.beta})"


def oracle_row(n: int, beta: float, ranks, gamma: float = 0.0) -> dict:
    """Oracle deviation columns for a sweep/validate row, or ``None``s.

    Returns ``{"oracle_mean", "oracle_ks", "oracle_mean_err"}`` — all
    ``None`` when the configuration is outside the oracle's model
    (``beta == 0``: no stationary law; ``gamma != 0``: biased insertion
    is not modelled; ``n > GRID_N_MAX``: no exact grid for the KS
    distance).  ``oracle_mean_err`` is the relative error of the
    empirical mean against the exact mean.
    """
    if beta <= 0.0 or gamma != 0.0 or n > GRID_N_MAX:
        return {"oracle_mean": None, "oracle_ks": None, "oracle_mean_err": None}
    law = ExactRankDistribution(n, beta)
    exact_mean = law.mean()
    ranks = np.asarray(ranks, dtype=float).reshape(-1)
    if ranks.size == 0:
        return {"oracle_mean": exact_mean, "oracle_ks": None, "oracle_mean_err": None}
    return {
        "oracle_mean": exact_mean,
        "oracle_ks": law.ks_distance(ranks),
        "oracle_mean_err": abs(float(ranks.mean()) - exact_mean) / exact_mean,
    }
