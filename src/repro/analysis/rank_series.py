"""Rank-trace aggregation and time-uniformity checks.

Theorem 1's headline property is *time uniformity*: the expected rank at
step ``t`` does not depend on ``t``.  :func:`time_uniformity` quantifies
this by comparing the cost of early vs. late windows of a run; a
diverging process (Theorem 6) fails it loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.stats import rank_summary
from repro.core.records import RankTrace


def aggregate_summaries(traces: Sequence[RankTrace]) -> Dict[str, float]:
    """Cross-seed aggregation of trace summaries.

    Returns means of the per-trace statistics plus the spread of the
    per-trace mean rank (for error bars).
    """
    if not traces:
        raise ValueError("no traces to aggregate")
    rows = [rank_summary(t.ranks) for t in traces]
    means = np.array([r["mean_rank"] for r in rows])
    maxes = np.array([r["max_rank"] for r in rows])
    p99s = np.array([r["p99_rank"] for r in rows])
    return {
        "runs": len(traces),
        "mean_rank": float(means.mean()),
        "mean_rank_std": float(means.std(ddof=1)) if len(traces) > 1 else 0.0,
        "max_rank_mean": float(maxes.mean()),
        "max_rank_worst": float(maxes.max()),
        "p99_rank_mean": float(p99s.mean()),
    }


@dataclass
class TimeUniformityReport:
    """Early-vs-late comparison of a rank trace."""

    early_mean: float
    late_mean: float
    #: ``late_mean / early_mean``; ~1 for time-uniform processes,
    #: substantially > 1 for diverging ones.
    growth_ratio: float
    window: int

    def is_uniform(self, tolerance: float = 0.5) -> bool:
        """Whether late cost stayed within ``(1 + tolerance)x`` of early."""
        return self.growth_ratio <= 1.0 + tolerance

    def __repr__(self) -> str:
        return (
            f"TimeUniformityReport(early={self.early_mean:.2f}, "
            f"late={self.late_mean:.2f}, ratio={self.growth_ratio:.2f})"
        )


def time_uniformity(trace: RankTrace, window_fraction: float = 0.2) -> TimeUniformityReport:
    """Compare the first and last ``window_fraction`` of a rank trace."""
    if not 0 < window_fraction <= 0.5:
        raise ValueError(f"window_fraction must be in (0, 0.5], got {window_fraction}")
    ranks = trace.ranks
    if len(ranks) < 10:
        raise ValueError(f"trace too short ({len(ranks)}) for a uniformity check")
    window = max(1, int(len(ranks) * window_fraction))
    early = float(ranks[:window].mean())
    late = float(ranks[-window:].mean())
    return TimeUniformityReport(
        early_mean=early,
        late_mean=late,
        growth_ratio=late / early if early > 0 else float("inf"),
        window=window,
    )
