"""Terminal-friendly ASCII charts for benchmark output.

The paper communicates through figures; the benches reproduce them as
tables plus, via this module, quick ASCII renderings so a terminal run
shows the *curve shapes* (scaling, collapse, divergence) directly.
No plotting dependencies required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: Markers assigned to series, in order.
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of ``values``.

    Example
    -------
    >>> sparkline([1, 2, 4, 8])
    '▁▂▄█'
    """
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and len(vals) > width:
        # Downsample by taking bucket means.
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(int((i + 1) * bucket) - int(i * bucket), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return blocks[0] * len(vals)
    return "".join(blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in vals)


def line_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    logy: bool = False,
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Parameters
    ----------
    x:
        Shared x values (must be non-decreasing).
    series:
        Mapping of label -> y values (same length as ``x``).
    logy:
        Plot ``log10(y)`` (the paper's Figure 2 is log-scale).
    """
    if width < 8 or height < 4:
        raise ValueError(f"chart must be at least 8x4, got {width}x{height}")
    x = [float(v) for v in x]
    if not x:
        raise ValueError("empty x axis")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {label!r} has {len(ys)} points for {len(x)} x values")

    def transform(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("logy chart requires positive values")
            return math.log10(v)
        return float(v)

    all_y = [transform(v) for ys in series.values() for v in ys]
    ylo, yhi = min(all_y), max(all_y)
    if yhi == ylo:
        yhi = ylo + 1.0
    xlo, xhi = x[0], x[-1]
    if xhi == xlo:
        xhi = xlo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (label, ys) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        for xv, yv in zip(x, ys):
            col = int((xv - xlo) / (xhi - xlo) * (width - 1))
            row = int((transform(yv) - ylo) / (yhi - ylo) * (height - 1))
            grid[height - 1 - row][col] = marker

    def fmt(v: float, is_y: bool = False) -> str:
        if logy and is_y:
            v = 10**v
        if abs(v) >= 1000:
            return f"{v:.3g}"
        return f"{v:.4g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    ylabel_width = max(len(fmt(yhi, True)), len(fmt(ylo, True)))
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt(yhi, True)
        elif r == height - 1:
            label = fmt(ylo, True)
        else:
            label = ""
        lines.append(f"{label:>{ylabel_width}} |{''.join(row)}")
    lines.append(f"{'':>{ylabel_width}} +{'-' * width}")
    xlab_left, xlab_right = fmt(xlo), fmt(xhi)
    pad = width - len(xlab_left) - len(xlab_right)
    lines.append(f"{'':>{ylabel_width}}  {xlab_left}{' ' * max(pad, 1)}{xlab_right}")
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {label}" for k, label in enumerate(series)
    )
    lines.append(f"{'':>{ylabel_width}}  {legend}" + ("   [log y]" if logy else ""))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 50, title: Optional[str] = None
) -> str:
    """Horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels for {len(values)} values")
    if not labels:
        raise ValueError("empty chart")
    vmax = max(float(v) for v in values)
    if vmax <= 0:
        vmax = 1.0
    label_width = max(len(str(l)) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(float(value) / vmax * width)) if value > 0 else ""
        lines.append(f"{str(label):>{label_width}} |{bar} {float(value):g}")
    return "\n".join(lines)
