"""Statistics and theory-checking helpers for experiment analysis."""

from repro.analysis.stats import (
    StreamingMoments,
    bootstrap_ci,
    ks_1sample,
    ks_2sample,
    linear_fit,
    loglog_slope,
    rank_summary,
    replica_rank_summary,
)
from repro.analysis.exact import (
    ExactRankDistribution,
    balance_residuals,
    gap_ratios,
    oracle_row,
    removal_position_law,
)
from repro.analysis.rank_series import (
    TimeUniformityReport,
    aggregate_summaries,
    time_uniformity,
)
from repro.analysis.theory import (
    avg_rank_bound,
    divergence_prediction,
    fit_scaling_exponent,
    max_rank_bound,
)
from repro.analysis.inversions import count_inversions, inversion_rate
from repro.analysis.ascii_plot import bar_chart, line_chart, sparkline
from repro.analysis.convergence import (
    BurnInReport,
    drift_rate,
    estimate_burn_in,
    is_stationary,
)

__all__ = [
    "StreamingMoments",
    "bootstrap_ci",
    "ks_1sample",
    "ks_2sample",
    "ExactRankDistribution",
    "balance_residuals",
    "gap_ratios",
    "oracle_row",
    "removal_position_law",
    "linear_fit",
    "loglog_slope",
    "rank_summary",
    "replica_rank_summary",
    "TimeUniformityReport",
    "aggregate_summaries",
    "time_uniformity",
    "avg_rank_bound",
    "max_rank_bound",
    "divergence_prediction",
    "fit_scaling_exponent",
    "count_inversions",
    "inversion_rate",
    "sparkline",
    "line_chart",
    "bar_chart",
    "BurnInReport",
    "estimate_burn_in",
    "is_stationary",
    "drift_rate",
]
