"""Small self-contained statistics toolkit (no scipy required)."""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator


class StreamingMoments:
    """Online mean/variance (Welford) for long runs without storing data.

    Example
    -------
    >>> sm = StreamingMoments()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     sm.update(x)
    >>> sm.mean
    2.0
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def update(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def update_many(self, xs) -> None:
        """Fold a batch of observations in one vectorized step.

        Computes the batch's moments with NumPy and merges them via
        Chan's parallel-Welford update, so million-sample folds cost one
        array pass instead of a Python loop per element.  Results agree
        with element-wise :meth:`update` to floating-point tolerance.
        """
        xs = np.asarray(xs, dtype=float).reshape(-1)
        if xs.size == 0:
            return
        if xs.size == 1:
            self.update(float(xs[0]))
            return
        count_b = xs.size
        mean_b = float(xs.mean())
        m2_b = float(((xs - mean_b) ** 2).sum())
        total = self.count + count_b
        delta = mean_b - self.mean
        self._m2 += m2_b + delta * delta * (self.count * count_b / total)
        self.mean += delta * (count_b / total)
        self.count = total
        lo, hi = float(xs.min()), float(xs.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def variance(self) -> float:
        """Sample variance (``n - 1`` denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.std / math.sqrt(self.count)

    def __repr__(self) -> str:
        return f"StreamingMoments(n={self.count}, mean={self.mean:.4g}, std={self.std:.4g})"


def rank_summary(ranks) -> dict:
    """Headline statistics of a flat rank sample, with canonical keys.

    The single authority for the ``mean/p50/p99/max`` rank-summary shape
    used across the repo (reference traces, vector runs, sweep rows,
    service metrics) — the four hand-rolled copies it replaced had
    already drifted once on quantile conventions.

    Returns ``{"removals", "mean_rank", "p50_rank", "p99_rank",
    "max_rank"}``; raises :class:`ValueError` on an empty sample.
    """
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("empty rank sample has no summary")
    return {
        "removals": int(ranks.size),
        "mean_rank": float(ranks.mean()),
        "p50_rank": float(np.quantile(ranks, 0.50)),
        "p99_rank": float(np.quantile(ranks, 0.99)),
        "max_rank": int(ranks.max()),
    }


def replica_rank_summary(ranks: np.ndarray) -> dict:
    """Rank summary of a ``(steps, replicas)`` array of per-replica runs.

    The mean is reported with its *across-replica* spread (each replica
    is one i.i.d. seed estimate); the tail statistics pool all replicas.

    Returns ``{"mean_rank", "mean_rank_sd", "p99_rank", "max_rank"}``.
    """
    ranks = np.asarray(ranks)
    if ranks.ndim != 2 or ranks.size == 0:
        raise ValueError(f"expected a non-empty (steps, replicas) array, got shape {ranks.shape}")
    means = ranks.mean(axis=0)
    sd = float(means.std(ddof=1)) if ranks.shape[1] > 1 else 0.0
    return {
        "mean_rank": float(means.mean()),
        "mean_rank_sd": sd,
        "p99_rank": float(np.quantile(ranks, 0.99)),
        "max_rank": int(ranks.max()),
    }


def bootstrap_ci(
    data: Sequence[float],
    stat=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: SeedLike = None,
) -> Tuple[float, float, float]:
    """Percentile bootstrap confidence interval.

    Returns ``(point_estimate, lower, upper)``.
    """
    data = np.asarray(data, dtype=float)
    if len(data) == 0:
        raise ValueError("cannot bootstrap empty data")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    gen = as_generator(rng)
    point = float(stat(data))
    idx = gen.integers(len(data), size=(n_resamples, len(data)))
    if stat is np.mean:
        # Vectorized fast path: one gather + one row-mean instead of a
        # Python loop over resamples.  Chunked so the gathered matrix
        # stays bounded for large inputs; draws and results match the
        # generic path to floating-point tolerance.
        chunk = max(1, (1 << 22) // max(1, len(data)))
        stats = np.concatenate(
            [data[idx[i : i + chunk]].mean(axis=1) for i in range(0, n_resamples, chunk)]
        )
    else:
        stats = np.asarray([stat(data[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(lower), float(upper)


def ks_2sample(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov test (asymptotic, no scipy).

    Returns ``(statistic, p_value)`` where the statistic is the max
    absolute difference between the two empirical CDFs and the p-value
    uses the Kolmogorov asymptotic series with Stephens' small-sample
    correction.  On discrete data (rank costs) ties make the test
    conservative, which is the safe direction for a parity check.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples must be non-empty")
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / n
    cdf_b = np.searchsorted(b, pooled, side="right") / m
    stat = float(np.abs(cdf_a - cdf_b).max())
    en = math.sqrt(n * m / (n + m))
    lam = (en + 0.12 + 0.11 / en) * stat
    if lam <= 0:
        return stat, 1.0
    k = np.arange(1, 101)
    p = 2.0 * float((((-1.0) ** (k - 1)) * np.exp(-2.0 * (lam * k) ** 2)).sum())
    return stat, float(min(1.0, max(0.0, p)))


def ks_1sample(sample: Sequence[float], cdf) -> Tuple[float, float]:
    """One-sample Kolmogorov-Smirnov test against a theoretical CDF.

    ``cdf`` is a vectorized callable returning ``P[X <= x]``.  Returns
    ``(statistic, p_value)``: the statistic is the classical
    ``max(D+, D-)`` over the sorted sample, which equals the Kolmogorov
    distance ``sup_x |F_emp(x) - F(x)|`` when ``F`` is continuous.
    Against a *discrete* ``F`` with tied samples it is only an upper
    bound — the ``F(x_i) - (i-1)/n`` term charges the full atom at each
    tie, so the statistic can sit near ``max_x P[X = x]`` even for a
    perfectly matching sample.  For exact distances against integer rank
    laws use ``ExactRankDistribution.ks_distance``, which evaluates both
    step functions on the integer grid.  The p-value uses the same
    asymptotic Kolmogorov series as :func:`ks_2sample`; on discrete laws
    the inflated statistic makes it conservative (rejects agreement too
    eagerly, never certifies it falsely).
    """
    x = np.sort(np.asarray(sample, dtype=float))
    n = len(x)
    if n == 0:
        raise ValueError("sample must be non-empty")
    f = np.asarray(cdf(x), dtype=float)
    hi = np.arange(1, n + 1) / n
    lo = np.arange(0, n) / n
    stat = float(max((hi - f).max(), (f - lo).max()))
    en = math.sqrt(n)
    lam = (en + 0.12 + 0.11 / en) * stat
    if lam <= 0:
        return stat, 1.0
    k = np.arange(1, 101)
    p = 2.0 * float((((-1.0) ** (k - 1)) * np.exp(-2.0 * (lam * k) ** 2)).sum())
    return stat, float(min(1.0, max(0.0, p)))


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Ordinary least squares ``y = a*x + b``.

    Returns ``(slope, intercept, r_squared)``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two paired points")
    xm, ym = x.mean(), y.mean()
    sxx = ((x - xm) ** 2).sum()
    if sxx == 0:
        raise ValueError("x has zero variance")
    slope = ((x - xm) * (y - ym)).sum() / sxx
    intercept = ym - slope * xm
    ss_res = ((y - (slope * x + intercept)) ** 2).sum()
    ss_tot = ((y - ym) ** 2).sum()
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), float(r2)


def loglog_slope(
    x: Sequence[float], y: Sequence[float], drop_first: int = 0
) -> Tuple[float, float]:
    """Growth exponent: slope of ``log y`` against ``log x``.

    Used to classify growth laws — the single-choice divergence bench
    expects a slope near 0.5 (``sqrt(t)``), the two-choice process a
    slope near 0 (time-uniform).  ``drop_first`` discards warm-up points.
    Returns ``(slope, r_squared)``.
    """
    x = np.asarray(x, dtype=float)[drop_first:]
    y = np.asarray(y, dtype=float)[drop_first:]
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("log-log fit requires positive data")
    slope, _intercept, r2 = linear_fit(np.log(x), np.log(y))
    return slope, r2
