"""The paper's bounds as checkable predictions.

These helpers turn the asymptotic statements of Theorems 1 and 6 into
quantities benches and tests can compare against measurements.  Constants
are not specified by the theory, so checks are of two kinds:

* *scaling* checks — fit the growth exponent across a parameter sweep
  (e.g. mean rank vs. ``n`` should be linear, max rank vs. ``t`` for
  single-choice should be a square root);
* *envelope* checks — measured values stay below ``constant x bound``
  for a generous constant, with the constant reported so regressions
  are visible.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.stats import loglog_slope


def avg_rank_bound(n: int, beta: float) -> float:
    """The Theorem 1 average-rank envelope ``n / beta^2`` (constant 1).

    Measurements divide by this; Theorem 1 says the quotient is O(1)
    uniformly in time and in ``n``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    return n / beta**2


def max_rank_bound(n: int, beta: float) -> float:
    """The Corollary 1 max-rank envelope ``(n/beta)(log n + log 1/beta)``."""
    if n <= 1:
        raise ValueError(f"n must be at least 2, got {n}")
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    return (n / beta) * (math.log(n) + math.log(1.0 / beta) + 1.0)


def divergence_prediction(t: float, n: int) -> float:
    """The Theorem 6 single-choice envelope ``sqrt(t * n * log n)``."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if n <= 1:
        raise ValueError(f"n must be at least 2, got {n}")
    return math.sqrt(t * n * math.log(n))


def fit_scaling_exponent(
    params: Sequence[float], measurements: Sequence[float], drop_first: int = 0
) -> Tuple[float, float]:
    """Fit ``measurement ~ param^slope`` on a log-log scale.

    Convenience alias of :func:`repro.analysis.stats.loglog_slope` named
    for its use in theory checks:

    * mean rank vs ``n`` (two-choice): slope ~ 1 (Theorem 1 is linear);
    * max top rank vs ``t`` (two-choice): slope ~ 0 (time-uniform);
    * max top rank vs ``t`` (single-choice): slope ~ 0.5 (Theorem 6).
    """
    return loglog_slope(params, measurements, drop_first=drop_first)


def envelope_constant(
    measurements: Sequence[float], bounds: Sequence[float]
) -> float:
    """The smallest constant ``c`` with ``measurement <= c * bound``
    across a sweep — the empirical hidden constant of a bound."""
    measurements = np.asarray(measurements, dtype=float)
    bounds = np.asarray(bounds, dtype=float)
    if measurements.shape != bounds.shape or len(measurements) == 0:
        raise ValueError("measurements and bounds must be equal-length, non-empty")
    if np.any(bounds <= 0):
        raise ValueError("bounds must be positive")
    return float((measurements / bounds).max())
