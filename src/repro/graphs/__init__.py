"""Graph substrate: generators, Dijkstra, and the Section 6 process.

Provides everything the SSSP benchmark (Figure 3) and the graph-process
future-work experiment need:

* synthetic graph generators, including a road-network generator that
  stands in for the paper's California road graph (see DESIGN.md for the
  substitution argument);
* sequential Dijkstra over any :mod:`repro.pqueues` implementation;
* a simulated *parallel relaxed* Dijkstra that runs on any
  :mod:`repro.concurrent` priority-queue model and counts the extra work
  caused by relaxation;
* the labelled graph choice process sketched in the paper's Section 6.
"""

from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    random_regular_graph,
    road_network,
    torus_graph,
)
from repro.graphs.dijkstra import DijkstraResult, dijkstra
from repro.graphs.delta_stepping import DeltaSteppingResult, delta_stepping, suggest_delta
from repro.graphs.parallel_dijkstra import ParallelSSSPResult, parallel_dijkstra
from repro.graphs.parallel_delta_stepping import (
    ParallelDeltaSteppingResult,
    parallel_delta_stepping,
)
from repro.graphs.choice_process import GraphChoiceProcess
from repro.graphs.expansion import cheeger_bounds, edge_expansion_sample, spectral_gap

__all__ = [
    "Graph",
    "grid_graph",
    "torus_graph",
    "cycle_graph",
    "complete_graph",
    "random_regular_graph",
    "road_network",
    "DijkstraResult",
    "dijkstra",
    "DeltaSteppingResult",
    "delta_stepping",
    "suggest_delta",
    "ParallelSSSPResult",
    "parallel_dijkstra",
    "ParallelDeltaSteppingResult",
    "parallel_delta_stepping",
    "GraphChoiceProcess",
    "spectral_gap",
    "cheeger_bounds",
    "edge_expansion_sample",
]
