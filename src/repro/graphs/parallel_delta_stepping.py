"""Simulated parallel delta-stepping: the Figure 3 comparator, in cycles.

Runs Meyer–Sanders delta-stepping on the discrete-event engine with real
barrier synchronization, so its completion time is directly comparable
(same simulated cycles) to the relaxed-queue parallel Dijkstra of
:mod:`repro.graphs.parallel_dijkstra`.

Phase structure per generation:

1. barrier — the last arriver (leader) extracts the minimum bucket's
   frontier (cheap serial bookkeeping, charged per node);
2. barrier — workers take *static* slices of the frontier (contiguous
   ``total/p`` ranges; relaxation costs are uniform enough that dynamic
   claiming would only add a hot counter line), scan their nodes' light
   or heavy edges, and apply relaxations;
3. repeat; a shared flag set by the leader ends the loop when the
   buckets drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.generators import Graph
from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.primitives import SimBarrier
from repro.sim.syscalls import BarrierWait, Delay
from repro.utils.rngtools import SeedLike

_INF = np.iinfo(np.int64).max


@dataclass
class ParallelDeltaSteppingResult:
    """Outcome of one simulated parallel delta-stepping run."""

    dist: np.ndarray
    delta: int
    n_threads: int
    sim_time: float
    phases: int
    relaxations: int

    def __repr__(self) -> str:
        return (
            f"ParallelDeltaSteppingResult(delta={self.delta}, "
            f"threads={self.n_threads}, Mcycles={self.sim_time / 1e6:.2f})"
        )


class _State:
    """Shared algorithm state (plain Python; mutations are atomic at
    simulation instants — the costed contention point is the claim
    counter and the barriers)."""

    def __init__(self, graph: Graph, source: int, delta: int) -> None:
        self.delta = delta
        self.dist = np.full(graph.n_vertices, _INF, dtype=np.int64)
        self.dist[source] = 0
        self.buckets: Dict[int, Set[int]] = {0: {source}}
        self.light: List[List[Tuple[int, int]]] = [[] for _ in range(graph.n_vertices)]
        self.heavy: List[List[Tuple[int, int]]] = [[] for _ in range(graph.n_vertices)]
        for u in range(graph.n_vertices):
            for v, w in graph.adj[u]:
                (self.light if w <= delta else self.heavy)[u].append((v, w))
        #: Frontier nodes whose edges this phase scans.
        self.frontier: List[int] = []
        #: Which adjacency ('light' or 'heavy') this phase scans.
        self.phase_kind = "light"
        self.current_bucket = 0
        self.settled: Set[int] = set()
        self.mode = "light"  # leader scheduling state
        self.done = False
        self.phases = 0
        self.relaxations = 0

    def bucket_of(self, d: int) -> int:
        return d // self.delta

    def relax(self, v: int, d: int) -> None:
        if d < self.dist[v]:
            old = int(self.dist[v])
            if old != _INF:
                self.buckets.get(self.bucket_of(old), set()).discard(v)
            self.dist[v] = d
            self.buckets.setdefault(self.bucket_of(d), set()).add(v)

    def prepare_phase(self) -> int:
        """Leader step: pick the next frontier; returns its size."""
        self.frontier = []
        # Drop emptied buckets.
        for b in [b for b, s in self.buckets.items() if not s]:
            del self.buckets[b]
        if self.mode == "light":
            if not self.buckets:
                self.done = True
                return 0
            current = min(self.buckets)
            if current != self.current_bucket:
                self.current_bucket = current
                self.settled = set()
            frontier = self.buckets.pop(current, set())
            if not frontier:
                return self.prepare_phase()
            self.settled |= frontier
            self.frontier = sorted(frontier)
            self.phase_kind = "light"
            # Once the current bucket stops refilling, run its heavy phase.
            self.mode = "check"
        elif self.mode == "check":
            if self.buckets.get(self.current_bucket):
                self.mode = "light"
                return self.prepare_phase()
            self.frontier = sorted(self.settled)
            self.phase_kind = "heavy"
            self.mode = "light"
        self.phases += 1
        return len(self.frontier)


def parallel_delta_stepping(
    graph: Graph,
    source: int,
    delta: int,
    n_threads: int,
    cost_model: Optional[CostModel] = None,
    seed: SeedLike = None,
) -> ParallelDeltaSteppingResult:
    """Run delta-stepping with ``n_threads`` simulated workers."""
    if not 0 <= source < graph.n_vertices:
        raise IndexError(f"source {source} out of range")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    engine = Engine(cost_model)
    state = _State(graph, source, delta)
    barrier = SimBarrier(n_threads, name="ds-phase")

    for k in range(n_threads):
        engine.spawn(_worker(k, state, barrier, engine), name=f"ds-{k}")
    engine.run()
    return ParallelDeltaSteppingResult(
        dist=state.dist,
        delta=delta,
        n_threads=n_threads,
        sim_time=engine.now,
        phases=state.phases,
        relaxations=state.relaxations,
    )


def _worker(k: int, state: _State, barrier: SimBarrier, engine: Engine) -> Generator:
    cost = engine.cost
    leader_index = barrier.parties - 1
    parties = barrier.parties
    while True:
        index = yield BarrierWait(barrier)
        if index == leader_index:
            size = state.prepare_phase()
            # Serial leader work: the bucket scan and frontier snapshot
            # (a pointer copy per node, not an edge scan).
            yield Delay(cost.local_work * 2 + cost.read * size)
        _index2 = yield BarrierWait(barrier)
        if state.done:
            return
        frontier = state.frontier
        adj = state.light if state.phase_kind == "light" else state.heavy
        total = len(frontier)
        # Static slice for this worker.
        start = (k * total) // parties
        end = ((k + 1) * total) // parties
        edges_scanned = 0
        for idx in range(start, end):
            u = frontier[idx]
            du = int(state.dist[u])
            for v, w in adj[u]:
                edges_scanned += 1
                state.relax(v, du + w)
        state.relaxations += edges_scanned
        if end > start:
            # Edge scans + relax writes, paid as one batch per slice.
            yield Delay(cost.local_work * (end - start) + cost.read * 2 * edges_scanned)
