"""Sequential Dijkstra with pluggable priority queues.

Uses lazy deletion (push duplicates, skip stale pops) so it works with
every queue in :mod:`repro.pqueues`, including the relaxed MultiQueue —
with a relaxed queue the algorithm silently degrades into a
label-correcting method: still correct, but nodes may be settled more
than once.  The result records how much extra work that caused, which is
the quantity the paper's Figure 3 trades against parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graphs.generators import Graph
from repro.pqueues import BinaryHeap, PriorityQueue


@dataclass
class DijkstraResult:
    """Outcome of one SSSP computation.

    Attributes
    ----------
    dist:
        Shortest distances from the source (``np.iinfo(int64).max`` for
        unreachable vertices).
    pops:
        Total queue removals performed.
    pushes:
        Total queue insertions performed.
    stale_pops:
        Pops whose recorded distance was already beaten — with an exact
        queue these are only lazy-deletion duplicates; with a relaxed
        queue they additionally count genuine priority-inversion rework.
    """

    dist: np.ndarray
    pops: int
    pushes: int
    stale_pops: int

    @property
    def useful_pops(self) -> int:
        """Pops that settled (or re-settled) a vertex."""
        return self.pops - self.stale_pops

    def reachable(self) -> int:
        """Number of vertices with a finite distance."""
        return int((self.dist < _INF).sum())


_INF = np.iinfo(np.int64).max


def dijkstra(
    graph: Graph,
    source: int,
    pq_factory: Callable[[], PriorityQueue] = BinaryHeap,
    pq: Optional[PriorityQueue] = None,
) -> DijkstraResult:
    """Single-source shortest paths from ``source``.

    Parameters
    ----------
    graph:
        The weighted graph (positive integer weights).
    source:
        Source vertex.
    pq_factory:
        Zero-argument priority-queue constructor.
    pq:
        Alternatively, a ready (possibly relaxed, e.g.
        :class:`~repro.core.multiqueue.MultiQueue`) queue instance —
        anything with ``push``/``pop``/``is_empty``-like duck typing.

    Correctness holds for any queue, exact or relaxed: a popped entry is
    only used if it matches the vertex's current best distance, and every
    improvement is (re)pushed.
    """
    if not 0 <= source < graph.n_vertices:
        raise IndexError(f"source {source} out of range")
    queue = pq if pq is not None else pq_factory()
    dist = np.full(graph.n_vertices, _INF, dtype=np.int64)
    dist[source] = 0
    _push(queue, 0, source)
    pops = pushes = stale = 0
    pushes += 1
    adj = graph.adj
    while _nonempty(queue):
        d, u = _pop(queue)
        pops += 1
        if d != dist[u]:
            stale += 1
            continue
        du = dist[u]
        for v, w in adj[u]:
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                _push(queue, nd, v)
                pushes += 1
    return DijkstraResult(dist=dist, pops=pops, pushes=pushes, stale_pops=stale)


def _push(queue, priority: int, item: int) -> None:
    # MultiQueue exposes insert(); the PriorityQueue protocol push().
    if hasattr(queue, "insert"):
        queue.insert(priority, item)
    else:
        queue.push(priority, item)


def _pop(queue):
    # MultiQueue returns Entry from delete_min(); PriorityQueue from pop().
    if hasattr(queue, "delete_min"):
        entry = queue.delete_min()
    else:
        entry = queue.pop()
    return entry.priority, entry.item


def _nonempty(queue) -> bool:
    return len(queue) > 0
