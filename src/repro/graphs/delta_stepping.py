"""Delta-stepping SSSP (Meyer & Sanders) — the classic parallel baseline.

Relaxed priority queues are one road to parallel SSSP; delta-stepping is
the other: distances are bucketed in width-``delta`` ranges, buckets are
settled in order, and all *light* relaxations inside a bucket may run in
parallel between bucket barriers.  Including it gives the Figure 3
discussion its natural non-priority-queue comparator.

Two artifacts per run:

* exact distances (checked against Dijkstra in tests), and
* a *phase-parallel estimate*: with ``p`` workers, each bucket phase
  costs ``ceil(phase_relaxations / p)`` work units plus a barrier — the
  standard work/span accounting for the algorithm, computed from the
  actual phase trace rather than a separate thread simulation.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Set

import numpy as np

from repro.graphs.generators import Graph

_INF = np.iinfo(np.int64).max


@dataclass
class DeltaSteppingResult:
    """Outcome of a delta-stepping run."""

    dist: np.ndarray
    delta: int
    #: Number of bucket *phases* executed (light-edge iterations count
    #: separately; each is a parallel barrier in the parallel algorithm).
    phases: int
    #: Total edge relaxations performed.
    relaxations: int
    #: Relaxations per phase, in order (the span/work profile).
    phase_sizes: List[int] = field(default_factory=list)

    def reachable(self) -> int:
        """Vertices with a finite distance."""
        return int((self.dist < _INF).sum())

    def parallel_time_estimate(self, p: int, barrier_cost: float = 1.0) -> float:
        """Phase-parallel time with ``p`` workers: per phase,
        ``ceil(size / p)`` work units plus a barrier."""
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        return sum(math.ceil(s / p) + barrier_cost for s in self.phase_sizes)

    def __repr__(self) -> str:
        return (
            f"DeltaSteppingResult(delta={self.delta}, phases={self.phases}, "
            f"relaxations={self.relaxations})"
        )


def delta_stepping(graph: Graph, source: int, delta: int) -> DeltaSteppingResult:
    """Single-source shortest paths via delta-stepping.

    Parameters
    ----------
    graph:
        Positive integer edge weights.
    source:
        Source vertex.
    delta:
        Bucket width.  ``delta = 1`` degenerates to Dial's algorithm;
        ``delta >= max weight`` approaches Bellman–Ford phases.
    """
    if not 0 <= source < graph.n_vertices:
        raise IndexError(f"source {source} out of range")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    # Split adjacency into light (w <= delta) and heavy (w > delta).
    light: List[List] = [[] for _ in range(graph.n_vertices)]
    heavy: List[List] = [[] for _ in range(graph.n_vertices)]
    for u in range(graph.n_vertices):
        for v, w in graph.adj[u]:
            (light if w <= delta else heavy)[u].append((v, w))

    dist = np.full(graph.n_vertices, _INF, dtype=np.int64)
    buckets: Dict[int, Set[int]] = {}

    def bucket_of(d: int) -> int:
        return d // delta

    def relax(v: int, d: int) -> bool:
        if d < dist[v]:
            old = dist[v]
            if old != _INF:
                buckets.get(bucket_of(int(old)), set()).discard(v)
            dist[v] = d
            buckets.setdefault(bucket_of(d), set()).add(v)
            return True
        return False

    relax(source, 0)
    phases = 0
    relaxations = 0
    phase_sizes: List[int] = []
    while True:
        # Drop emptied buckets (relax() discards but keeps the sets);
        # positive weights guarantee min(buckets) never decreases.
        for b in [b for b, s in buckets.items() if not s]:
            del buckets[b]
        if not buckets:
            break
        current = min(buckets)
        settled: Set[int] = set()
        # Light-edge phases: repeat until the bucket stops refilling.
        while buckets.get(current):
            frontier = buckets.pop(current)
            settled |= frontier
            phase = 0
            requests = []
            for u in frontier:
                du = int(dist[u])
                for v, w in light[u]:
                    requests.append((v, du + w))
                    phase += 1
            for v, d in requests:
                relax(v, d)
            relaxations += phase
            phases += 1
            phase_sizes.append(phase)
        # One heavy phase for everything settled in this bucket.
        phase = 0
        requests = []
        for u in settled:
            du = int(dist[u])
            for v, w in heavy[u]:
                requests.append((v, du + w))
                phase += 1
        for v, d in requests:
            relax(v, d)
        if phase:
            relaxations += phase
            phases += 1
            phase_sizes.append(phase)
    return DeltaSteppingResult(
        dist=dist,
        delta=delta,
        phases=phases,
        relaxations=relaxations,
        phase_sizes=phase_sizes,
    )


def suggest_delta(graph: Graph) -> int:
    """The standard heuristic: delta ~ average weight * (1 / avg degree)
    balance point; here simply the mean edge weight, clamped to >= 1."""
    total = 0
    count = 0
    for u in range(graph.n_vertices):
        for _v, w in graph.adj[u]:
            total += w
            count += 1
    if count == 0:
        return 1
    return max(1, total // count)
