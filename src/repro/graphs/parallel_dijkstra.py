"""Simulated parallel relaxed Dijkstra (the paper's Figure 3 workload).

Worker threads share a concurrent priority-queue model (MultiQueue,
kLSM, ...) holding ``(tentative distance, node)`` entries.  Because the
queue is relaxed, pops can arrive out of order; the algorithm stays
correct as a label-correcting method — stale pops are skipped, improved
nodes are re-pushed — at the cost of extra work.  The benchmark's
question, following the paper: does the relaxation's extra work pay for
the scalability it buys?  (Figure 3 says yes: beta < 1 beats beta = 1 by
~10% and kLSM by ~40% at high thread counts.)

Entries are encoded as a single integer priority
``distance * n_vertices + node`` so every concurrent model (whose API
carries one integer priority) can run this workload unchanged; ordering
by encoded priority equals ordering by distance with node tie-breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

from repro.graphs.generators import Graph
from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.syscalls import Delay
from repro.utils.rngtools import SeedLike, as_generator, spawn_seeds

_INF = np.iinfo(np.int64).max

#: Consecutive empty pops after which a worker assumes a bug and aborts.
_MAX_IDLE_SPINS = 100_000


@dataclass
class ParallelSSSPResult:
    """Outcome of one simulated parallel SSSP run."""

    dist: np.ndarray
    n_threads: int
    #: Simulated completion time (cycles until the last worker exits).
    sim_time: float
    pops: int
    stale_pops: int
    pushes: int

    @property
    def wasted_fraction(self) -> float:
        """Fraction of pops that were stale (relaxation + duplicate rework)."""
        return self.stale_pops / self.pops if self.pops else 0.0

    def __repr__(self) -> str:
        return (
            f"ParallelSSSPResult(threads={self.n_threads}, "
            f"Mcycles={self.sim_time / 1e6:.2f}, pops={self.pops}, "
            f"stale={self.wasted_fraction:.1%})"
        )


class _SharedState:
    """Plain-Python shared algorithm state (mutations happen atomically
    at simulation instants, so no modelled synchronization is needed for
    *correctness*; the contended structure is the queue, which is
    modelled)."""

    __slots__ = ("dist", "pending", "pops", "stale_pops", "pushes")

    def __init__(self, n_vertices: int) -> None:
        self.dist = np.full(n_vertices, _INF, dtype=np.int64)
        #: Entries pushed but not yet fully processed; termination is
        #: "my pop came up empty and pending == 0".
        self.pending = 0
        self.pops = 0
        self.stale_pops = 0
        self.pushes = 0


def parallel_dijkstra(
    graph: Graph,
    source: int,
    make_model: Callable[[Engine, np.random.Generator], object],
    n_threads: int,
    cost_model: Optional[CostModel] = None,
    seed: SeedLike = None,
) -> ParallelSSSPResult:
    """Run SSSP with ``n_threads`` simulated workers over a shared model.

    ``make_model(engine, rng)`` builds the concurrent priority queue.
    Returns distances (always exact — relaxation only costs rework) plus
    the simulated completion time and work counters.
    """
    if not 0 <= source < graph.n_vertices:
        raise IndexError(f"source {source} out of range")
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    root = as_generator(seed)
    model_rng = spawn_seeds(root, 1)[0]
    engine = Engine(cost_model)
    model = make_model(engine, model_rng)
    state = _SharedState(graph.n_vertices)

    n = graph.n_vertices
    state.dist[source] = 0
    state.pending = 1
    state.pushes = 1
    # Seed the queue with the source before the clock starts.
    model.prefill([0 * n + source])

    for k in range(n_threads):
        engine.spawn(_worker(k, graph, model, state, engine), name=f"sssp-{k}")
    engine.run()
    return ParallelSSSPResult(
        dist=state.dist,
        n_threads=n_threads,
        sim_time=engine.now,
        pops=state.pops,
        stale_pops=state.stale_pops,
        pushes=state.pushes,
    )


def _worker(k: int, graph: Graph, model, state: _SharedState, engine: Engine) -> Generator:
    cost = engine.cost
    n = graph.n_vertices
    adj = graph.adj
    dist = state.dist
    idle = 0
    while True:
        result = yield from model.delete_min_op(k)
        if result is None:
            if state.pending == 0:
                return
            idle += 1
            if idle > _MAX_IDLE_SPINS:  # pragma: no cover - debugging aid
                raise RuntimeError(
                    f"worker {k} spun {idle} times with pending={state.pending}"
                )
            yield Delay(4 * cost.local_work)
            continue
        idle = 0
        priority = result[0]
        d, u = divmod(int(priority), n)
        state.pops += 1
        if d != dist[u]:
            # Stale entry: this node was improved (or already settled
            # better) since the push — relaxation rework.
            state.stale_pops += 1
            state.pending -= 1
            yield Delay(cost.local_work)
            continue
        yield Delay(cost.local_work)
        for v, w in adj[u]:
            yield Delay(cost.read)
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                state.pending += 1
                state.pushes += 1
                yield from model.insert_op(k, nd * n + v)
        state.pending -= 1
