"""Graph data type and synthetic generators.

The central deliverable here is :func:`road_network`: the paper's SSSP
benchmark ran on the California road network, which we cannot ship; the
generator below produces graphs with the properties that matter for
relaxed-priority-queue Dijkstra — low average degree (2–4), large
diameter, strictly positive integer weights correlated with geometric
distance — at laptop-friendly sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator


@dataclass
class Graph:
    """A weighted undirected graph as adjacency lists.

    ``adj[u]`` is a list of ``(v, weight)`` pairs; weights are positive
    integers (so the monotone :class:`~repro.pqueues.BucketQueue` can be
    used for Dijkstra).  Undirected edges appear in both endpoint lists.
    """

    n_vertices: int
    adj: List[List[Tuple[int, int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_vertices <= 0:
            raise ValueError(f"n_vertices must be positive, got {self.n_vertices}")
        if not self.adj:
            self.adj = [[] for _ in range(self.n_vertices)]
        elif len(self.adj) != self.n_vertices:
            raise ValueError(
                f"adjacency list has {len(self.adj)} entries for {self.n_vertices} vertices"
            )

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight."""
        if not (0 <= u < self.n_vertices and 0 <= v < self.n_vertices):
            raise IndexError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise ValueError(f"self-loop at {u}")
        if weight <= 0:
            raise ValueError(f"weights must be positive, got {weight}")
        self.adj[u].append((v, weight))
        self.adj[v].append((u, weight))

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.adj) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self.adj):
            for v, _w in nbrs:
                if u < v:
                    yield (u, v)

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return len(self.adj[u])

    def average_degree(self) -> float:
        """Mean vertex degree."""
        return 2.0 * self.n_edges / self.n_vertices

    def is_connected(self) -> bool:
        """BFS connectivity check."""
        if self.n_vertices == 0:
            return True
        seen = bytearray(self.n_vertices)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for v, _w in self.adj[u]:
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
        return count == self.n_vertices

    def __repr__(self) -> str:
        return f"Graph(n={self.n_vertices}, m={self.n_edges})"


def cycle_graph(n: int, max_weight: int = 1, rng: SeedLike = None) -> Graph:
    """A ring on ``n`` vertices — the worst expander, for Section 6."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    gen = as_generator(rng)
    g = Graph(n)
    for u in range(n):
        g.add_edge(u, (u + 1) % n, _weight(gen, max_weight))
    return g


def complete_graph(n: int, max_weight: int = 1, rng: SeedLike = None) -> Graph:
    """The complete graph — random edges recover classic two-choice."""
    if n < 2:
        raise ValueError(f"complete graph needs n >= 2, got {n}")
    gen = as_generator(rng)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, _weight(gen, max_weight))
    return g


def grid_graph(rows: int, cols: int, max_weight: int = 10, rng: SeedLike = None) -> Graph:
    """A rows x cols grid with random positive integer weights."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs positive dimensions, got {rows}x{cols}")
    gen = as_generator(rng)
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1, _weight(gen, max_weight))
            if r + 1 < rows:
                g.add_edge(u, u + cols, _weight(gen, max_weight))
    return g


def torus_graph(rows: int, cols: int, max_weight: int = 10, rng: SeedLike = None) -> Graph:
    """A grid with wraparound edges (4-regular, moderate expansion)."""
    if rows < 3 or cols < 3:
        raise ValueError(f"torus needs dimensions >= 3, got {rows}x{cols}")
    gen = as_generator(rng)
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            g.add_edge(u, r * cols + (c + 1) % cols, _weight(gen, max_weight))
            g.add_edge(u, ((r + 1) % rows) * cols + c, _weight(gen, max_weight))
    return g


def random_regular_graph(n: int, d: int, max_weight: int = 1, rng: SeedLike = None) -> Graph:
    """A random d-regular multigraph-free graph (configuration model with
    rejection) — an expander with high probability for ``d >= 3``."""
    if n * d % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d >= n:
        raise ValueError(f"degree {d} too large for {n} vertices")
    gen = as_generator(rng)
    # The probability a configuration-model matching is simple is about
    # exp(-(d^2-1)/4) — a few percent for d=4 — so allow many cheap
    # attempts before giving up.
    for _attempt in range(5000):
        stubs = np.repeat(np.arange(n), d)
        gen.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        seen = set()
        ok = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or (min(u, v), max(u, v)) in seen:
                ok = False
                break
            seen.add((min(u, v), max(u, v)))
        if ok:
            g = Graph(n)
            for u, v in seen:
                g.add_edge(u, v, _weight(gen, max_weight))
            if g.is_connected():
                return g
    raise RuntimeError(f"failed to sample a simple connected {d}-regular graph on {n} vertices")


def road_network(
    n_target: int,
    max_weight: int = 1000,
    shortcut_fraction: float = 0.01,
    removal_fraction: float = 0.15,
    rng: SeedLike = None,
) -> Graph:
    """A synthetic road network standing in for the California graph.

    Construction: a near-square grid (roads meet at intersections of
    degree <= 4), with a ``removal_fraction`` of non-tree edges deleted
    (dead ends, irregular blocks) and a few long-range "highway"
    shortcuts added.  Weights grow with the grid distance an edge spans,
    mimicking travel times.  The result is connected, sparse (average
    degree ~2.5–3.5), and large-diameter — the regime where relaxed
    priority queues pay measurable extra relaxations in Dijkstra.
    """
    if n_target < 9:
        raise ValueError(f"n_target must be at least 9, got {n_target}")
    if not 0 <= removal_fraction < 1:
        raise ValueError(f"removal_fraction must be in [0, 1), got {removal_fraction}")
    gen = as_generator(rng)
    side = int(round(n_target**0.5))
    rows = cols = max(3, side)
    n = rows * cols
    g = Graph(n)

    def base_weight() -> int:
        return int(gen.integers(1, max(2, max_weight // 10)))

    # Grid edges; keep a deterministic spanning structure (all edges of
    # row 0 plus all vertical edges) so removals can't disconnect.
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                keep = r == 0 or gen.random() >= removal_fraction
                if keep:
                    g.add_edge(u, u + 1, base_weight())
            if r + 1 < rows:
                g.add_edge(u, u + cols, base_weight())

    # Highway shortcuts: connect random distant intersections with
    # weight proportional to the geometric distance they span (fast but
    # not free, as real highways are).
    n_shortcuts = max(1, int(shortcut_fraction * n))
    for _ in range(n_shortcuts):
        u = int(gen.integers(n))
        v = int(gen.integers(n))
        if u == v:
            continue
        ru, cu = divmod(u, cols)
        rv, cv = divmod(v, cols)
        dist = abs(ru - rv) + abs(cu - cv)
        if dist < 2:
            continue
        weight = max(1, int(dist * max(1, max_weight // 50) * 0.4))
        g.add_edge(u, v, weight)
    return g


def _weight(gen: np.random.Generator, max_weight: int) -> int:
    return 1 if max_weight <= 1 else int(gen.integers(1, max_weight + 1))
