"""Graph expansion metrics for the Section 6 conjecture.

The paper conjectures the graph choice process enjoys two-choice-like
guarantees "for graph families with good expansion".  To make the
conjecture quantitative, this module computes spectral expansion — the
second-smallest eigenvalue ``lambda_2`` of the normalized Laplacian —
whose Cheeger relation bounds edge expansion.  The expansion bench
correlates ``lambda_2`` with the measured rank cost across families.

Dense eigensolves are fine at process scale (n <= a few hundred).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import Graph


def adjacency_matrix(graph: Graph) -> np.ndarray:
    """Unweighted adjacency matrix (choice structure ignores weights)."""
    a = np.zeros((graph.n_vertices, graph.n_vertices))
    for u, v in graph.edges():
        a[u, v] = 1.0
        a[v, u] = 1.0
    return a


def normalized_laplacian(graph: Graph) -> np.ndarray:
    """``L = I - D^{-1/2} A D^{-1/2}`` (isolated vertices get L_ii = 0)."""
    a = adjacency_matrix(graph)
    degrees = a.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-300)), 0.0)
    lap = -a * inv_sqrt[:, None] * inv_sqrt[None, :]
    np.fill_diagonal(lap, np.where(degrees > 0, 1.0, 0.0))
    return lap


def spectral_gap(graph: Graph) -> float:
    """``lambda_2`` of the normalized Laplacian — 0 iff disconnected,
    larger = better expander (complete graph: ``n/(n-1)``)."""
    if graph.n_vertices < 2:
        raise ValueError("spectral gap needs at least 2 vertices")
    eigenvalues = np.linalg.eigvalsh(normalized_laplacian(graph))
    return float(np.sort(eigenvalues)[1])


def cheeger_bounds(graph: Graph) -> "tuple[float, float]":
    """Cheeger inequality bounds on conductance:
    ``lambda_2 / 2 <= h(G) <= sqrt(2 lambda_2)``."""
    gap = spectral_gap(graph)
    return gap / 2.0, float(np.sqrt(2.0 * gap))


def edge_expansion_sample(graph: Graph, cuts: int = 200, rng=None) -> float:
    """Monte-Carlo upper estimate of edge expansion ``h(G)``: the best
    (smallest) ratio ``|E(S, V-S)| / min(|S|,|V-S|)`` over random cuts
    plus singleton and BFS-ball cuts.  An upper bound witness on h(G)
    (exact h is NP-hard)."""
    from repro.utils.rngtools import as_generator

    gen = as_generator(rng)
    n = graph.n_vertices
    if n < 2:
        raise ValueError("need at least 2 vertices")
    best = float("inf")

    def ratio(in_set: np.ndarray) -> float:
        size = int(in_set.sum())
        if size == 0 or size == n:
            return float("inf")
        crossing = 0
        for u, v in graph.edges():
            if in_set[u] != in_set[v]:
                crossing += 1
        return crossing / min(size, n - size)

    # Random balanced-ish cuts.
    for _ in range(cuts):
        in_set = gen.random(n) < gen.uniform(0.2, 0.8)
        best = min(best, ratio(in_set))
    # BFS balls from a few random roots (good cuts in low-expansion graphs).
    for root in gen.integers(n, size=min(8, n)):
        in_set = np.zeros(n, dtype=bool)
        frontier = [int(root)]
        in_set[root] = True
        while frontier and in_set.sum() < n // 2:
            nxt = []
            for u in frontier:
                for v, _w in graph.adj[u]:
                    if not in_set[v]:
                        in_set[v] = True
                        nxt.append(v)
                        if in_set.sum() >= n // 2:
                            break
                else:
                    continue
                break
            frontier = nxt
            best = min(best, ratio(in_set))
    return best
