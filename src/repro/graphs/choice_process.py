"""The labelled graph choice process (paper, Section 6 / future work).

Vertices of a connected graph each hold a queue.  Labels of increasing
value are inserted at uniformly random vertices; each removal samples a
uniformly random *edge* and removes the smaller of the two endpoint top
labels, paying its present rank.  The complete graph recovers the
two-choice sequential process; the paper conjectures that good expansion
suffices for the same O(n) / O(n log n) guarantees, while poor expanders
(cycles) should degrade — the graph-choice bench measures exactly this.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.core.rank import RankOracle
from repro.core.records import RankTrace, RemovalRecord, SampledRun
from repro.graphs.generators import Graph
from repro.utils.rngtools import SeedLike, as_generator


class GraphChoiceProcess:
    """The Section 6 process on an arbitrary connected graph.

    Parameters
    ----------
    graph:
        The choice graph; one queue per vertex.
    capacity:
        Maximum number of labels the run will insert.
    rng:
        Seed or generator.
    """

    def __init__(self, graph: Graph, capacity: int, rng: SeedLike = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if graph.n_edges == 0:
            raise ValueError("graph must have at least one edge")
        self.graph = graph
        self.n_vertices = graph.n_vertices
        self._edges = np.asarray(list(graph.edges()), dtype=np.int64)
        self._rng = as_generator(rng)
        self._queues: List[Deque[int]] = [deque() for _ in range(graph.n_vertices)]
        self._oracle = RankOracle(capacity)
        self._next_label = 0
        self._removal_step = 0
        self.empty_redraws = 0

    @property
    def present_count(self) -> int:
        """Labels currently in the system."""
        return self._oracle.present_count

    def insert(self) -> int:
        """Insert the next label at a uniformly random vertex."""
        label = self._next_label
        if label >= self._oracle.capacity:
            raise RuntimeError(f"capacity {self._oracle.capacity} exhausted")
        v = int(self._rng.integers(self.n_vertices))
        self._queues[v].append(label)
        self._oracle.insert(label)
        self._next_label += 1
        return v

    def prefill(self, m: int) -> None:
        """Insert ``m`` labels."""
        for _ in range(m):
            self.insert()

    def remove(self) -> RemovalRecord:
        """Sample a random edge; remove the better endpoint top label."""
        if self._oracle.present_count == 0:
            raise LookupError("remove from empty graph process")
        queues = self._queues
        edges = self._edges
        rng = self._rng
        while True:
            u, v = edges[int(rng.integers(len(edges)))]
            qu, qv = queues[u], queues[v]
            if qu and qv:
                idx = u if qu[0] <= qv[0] else v
            elif qu:
                idx = u
            elif qv:
                idx = v
            else:
                self.empty_redraws += 1
                continue
            break
        label = queues[idx].popleft()
        rank = self._oracle.remove(label)
        record = RemovalRecord(
            step=self._removal_step, label=label, rank=rank, queue=int(idx), two_choice=True
        )
        self._removal_step += 1
        return record

    def top_ranks(self) -> List[int]:
        """Ranks of all non-empty vertex queue tops."""
        oracle = self._oracle
        return [oracle.rank(q[0]) for q in self._queues if q]

    def run_steady_state(self, prefill: int, steps: int) -> RankTrace:
        """Prefill, then alternate insert+remove for ``steps`` rounds."""
        self.prefill(prefill)
        trace = RankTrace()
        for _ in range(steps):
            self.insert()
            trace.append(self.remove().rank)
        return trace

    def run_steady_state_sampled(
        self, prefill: int, steps: int, sample_every: int = 1000
    ) -> SampledRun:
        """Steady-state run with periodic top-rank snapshots."""
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.prefill(prefill)
        trace = RankTrace()
        sample_steps, max_ranks, mean_ranks = [], [], []
        for step in range(steps):
            self.insert()
            trace.append(self.remove().rank)
            if (step + 1) % sample_every == 0:
                ranks = self.top_ranks()
                sample_steps.append(step + 1)
                max_ranks.append(max(ranks))
                mean_ranks.append(sum(ranks) / len(ranks))
        return SampledRun(
            trace=trace,
            sample_steps=np.asarray(sample_steps, dtype=np.int64),
            max_top_ranks=np.asarray(max_ranks, dtype=np.int64),
            mean_top_ranks=np.asarray(mean_ranks, dtype=float),
        )

    def __repr__(self) -> str:
        return (
            f"GraphChoiceProcess(vertices={self.n_vertices}, "
            f"edges={len(self._edges)}, present={self.present_count})"
        )
