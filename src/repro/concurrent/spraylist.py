"""Model of the SprayList (Alistarh, Kopinsky, Li, Shavit 2015).

The SprayList avoids the skiplist's hot head by having ``deleteMin``
perform a random descending walk ("spray") that lands uniformly-ish on
one of the ``O(P log^3 P)`` smallest elements.  Contention is spread
over the spray window instead of a single cache line, trading rank
slack for scalability — a cousin of the MultiQueue relaxation and a
natural extra baseline for Figure 1/2-style comparisons.

Model structure:

* one shared sorted array of real elements (exact semantics available
  to the spray);
* ``deleteMin``: pay the spray-walk delay, pick a uniform index inside
  the spray window, CAS the landing region's cell to claim it; lost
  races retry with a re-spray;
* ``insert``: O(log n) traversal then a CAS on one of many body regions.
"""

from __future__ import annotations

import bisect
import math
from typing import Generator, List, Optional, Tuple

from repro.concurrent.recorder import OpRecorder
from repro.sanitizer.annotations import atomic_cell, shared_state
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell
from repro.sim.syscalls import CAS, Delay, Read
from repro.utils.rngtools import SeedLike, as_generator

#: Number of independent claim/insertion regions.  Sprays land near the
#: front of the list, so claims collide noticeably more often than
#: inserts spread over the whole body.
_REGIONS = 16


@shared_state(
    # Claim/insertion region version counters: CAS-based synchronization
    # objects, raced on by design (lost CAS = lost claim, retry).
    cells={"_regions": atomic_cell()},
)
class SprayListPQ:
    """Simulated SprayList with a ``P``-dependent spray window.

    Parameters
    ----------
    n_threads:
        Used to size the spray window ``max(1, ceil(p * log2(p+1)**3))``
        per the SprayList analysis.
    """

    def __init__(
        self,
        engine: Engine,
        n_threads: int,
        rng: SeedLike = None,
        recorder: Optional[OpRecorder] = None,
    ) -> None:
        if n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        self.engine = engine
        self.n_threads = n_threads
        self._rng = as_generator(rng)
        self._recorder = recorder
        #: Sorted list of (priority, eid); index 0 is the minimum.
        self._items: List[Tuple[int, int]] = []
        self._regions = [SimCell(0, name=f"spray-region-{i}") for i in range(_REGIONS)]

    @property
    def spray_width(self) -> int:
        """Size of the window the spray walk lands in."""
        p = self.n_threads
        return max(1, int(math.ceil(p * math.log2(p + 1) ** 3)))

    def prefill(self, priorities) -> None:
        """Bulk-load before the clock starts."""
        for priority in priorities:
            priority = int(priority)
            eid = self._new_eid(priority)
            bisect.insort(self._items, (priority, eid))
            if self._recorder is not None:
                self._recorder.record_insert(0.0, eid)

    def _new_eid(self, priority: int) -> int:
        if self._recorder is not None:
            return self._recorder.new_element(priority)
        return -1

    def total_size(self) -> int:
        """Elements currently stored."""
        return len(self._items)

    def insert_op(self, tid: int, priority: int) -> Generator:
        """Traverse then CAS into a body region."""
        cost = self.engine.cost
        eid = self._new_eid(priority)
        yield Delay(cost.pq_op_cost(len(self._items)))
        while True:
            region = self._regions[int(self._rng.integers(_REGIONS))]
            version = yield Read(region)
            ok = yield CAS(region, version, version + 1)
            if ok:
                break
            yield Delay(cost.local_work)
        bisect.insort(self._items, (priority, eid))
        if self._recorder is not None:
            self._recorder.record_insert(self.engine.now, eid)
        return eid

    def delete_min_op(self, tid: int) -> Generator:
        """Spray-walk, then claim an element near the front."""
        cost = self.engine.cost
        while True:
            if not self._items:
                return None
            # The spray: a randomized descent of ~log^2 p levels, each a
            # pointer chase through recently-modified (hence cache-cold)
            # nodes, plus skipping over logically-deleted nodes near the
            # front that cleanup has not collected yet.
            walk = math.log2(self.n_threads + 1) ** 2
            cleanup_skip = 0.5 * cost.pq_per_level * math.log2(len(self._items) + 2)
            yield Delay(cost.read * 4 * (1 + walk) + cleanup_skip)
            window = min(self.spray_width, len(self._items))
            k = int(self._rng.integers(window))
            region = self._regions[k % _REGIONS]
            version = yield Read(region)
            ok = yield CAS(region, version, version + 1)
            if not ok:
                continue  # lost the claim race: re-spray
            if k >= len(self._items):
                continue  # structure shrank under us: re-spray
            priority, eid = self._items.pop(k)
            if self._recorder is not None and eid != -1:
                self._recorder.record_remove(self.engine.now, eid)
            yield Delay(cost.local_work)
            return (priority, eid)

    def __repr__(self) -> str:
        return f"SprayListPQ(threads={self.n_threads}, size={self.total_size()})"
