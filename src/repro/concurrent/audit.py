"""Post-run invariant auditing for concurrent priority-queue models.

After a (possibly chaos-injected) simulation run, the
:class:`InvariantAuditor` cross-checks three sources of truth — the
recorded linearization history, the live data structure, and the
engine's lock/thread bookkeeping — against each other:

1. **History well-formedness** — every insert/remove references an
   allocated element, nothing is inserted or removed twice, and
   linearization timestamps are monotone
   (:meth:`~repro.concurrent.recorder.OpRecorder.validate`).
2. **Element conservation** — every inserted element is either still in
   a heap or was removed exactly once: no losses, no duplicates, no
   phantoms.  This is the invariant that must survive crash-stops and
   lock-lease revocations.
3. **Top-cell/heap consistency** — each queue's published top cell
   agrees with its heap at quiescence (queues whose lock is still held,
   e.g. by a crashed thread frozen mid-operation, are reported as notes
   rather than violations).
4. **Lock hygiene** — no lock is held by a thread that finished
   normally (a leak), and crashed holders are accounted for.

Use it directly after ``engine.run()``::

    report = InvariantAuditor(model, recorder=rec, engine=eng).audit()
    report.raise_if_failed()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.concurrent.recorder import HistoryError, OpRecorder

__all__ = ["AuditReport", "AuditError", "InvariantAuditor"]


class AuditError(AssertionError):
    """Raised by :meth:`AuditReport.raise_if_failed` on violations."""


@dataclass
class AuditReport:
    """Outcome of one invariant audit."""

    #: Hard invariant violations (empty iff the audit passed).
    violations: List[str] = field(default_factory=list)
    #: Soft observations (stale tops under crashed holders, etc.).
    notes: List[str] = field(default_factory=list)
    #: Elements recorded as inserted / removed, and counted in heaps.
    inserted: int = 0
    removed: int = 0
    in_structure: int = 0
    #: Elements lost (live per history but absent from the structure).
    lost: int = 0
    #: Elements duplicated (present more than once, or removed yet present).
    duplicated: int = 0
    #: Lease revocations observed across the model's locks.
    revocations: int = 0
    #: Threads that crash-stopped during the run.
    crashed_threads: int = 0

    @property
    def ok(self) -> bool:
        """Whether every hard invariant held."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditError` listing all violations, if any."""
        if self.violations:
            raise AuditError(
                f"{len(self.violations)} invariant violation(s):\n  "
                + "\n  ".join(self.violations)
            )

    def summary(self) -> Dict[str, object]:
        """Flat dict for tables/CLI output."""
        return {
            "audit": "PASS" if self.ok else "FAIL",
            "inserted": self.inserted,
            "removed": self.removed,
            "in structure": self.in_structure,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "revocations": self.revocations,
            "crashed threads": self.crashed_threads,
        }

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return (
            f"AuditReport({status}, inserted={self.inserted}, "
            f"removed={self.removed}, in_structure={self.in_structure})"
        )


class InvariantAuditor:
    """Cross-checks model state, recorded history, and engine bookkeeping.

    Parameters
    ----------
    model:
        A :class:`~repro.concurrent.multiqueue.ConcurrentMultiQueue`
        (or anything exposing ``_heaps``/``_locks``/``_tops`` the same
        way).  Optional — history-only audits pass ``None``.
    recorder:
        The run's :class:`OpRecorder`.  Optional, but element
        conservation can only be checked with one.
    engine:
        The run's engine; enables lock-hygiene and crash accounting.
    """

    def __init__(self, model=None, recorder: Optional[OpRecorder] = None, engine=None) -> None:
        if model is None and recorder is None:
            raise ValueError("need at least a model or a recorder to audit")
        self.model = model
        self.recorder = recorder
        self.engine = engine

    def audit(self) -> AuditReport:
        """Run all applicable checks and return the report."""
        report = AuditReport()
        if self.recorder is not None:
            self._check_history(report)
        if self.model is not None:
            report.revocations = sum(
                lock.revocations for lock in getattr(self.model, "_locks", [])
            )
            report.in_structure = sum(len(h) for h in self.model._heaps)
            if self.recorder is not None:
                self._check_conservation(report)
            self._check_tops(report)
        if self.engine is not None:
            self._check_engine(report)
        return report

    # -- individual checks -------------------------------------------------

    def _check_history(self, report: AuditReport) -> None:
        ins, rem = self.recorder.counts()
        report.inserted, report.removed = ins, rem
        try:
            self.recorder.validate()
        except HistoryError as err:
            report.violations.append(f"history: {err}")

    def _heap_eids(self) -> List[int]:
        eids = []
        for heap in self.model._heaps:
            entries = heap.entries() if hasattr(heap, "entries") else []
            eids.extend(entry.item for entry in entries)
        return eids

    def _check_conservation(self, report: AuditReport) -> None:
        """Every inserted eid is popped at most once and none are lost."""
        live: set = set()
        removed: set = set()
        for event in self.recorder.events:
            if event.kind == "ins":
                live.add(event.eid)
            elif event.eid in live:
                live.discard(event.eid)
                removed.add(event.eid)
        present = self._heap_eids()
        if any(eid == -1 for eid in present):
            report.notes.append(
                "conservation: structure holds unrecorded elements (eid=-1); "
                "eid-level checks skipped for them"
            )
            present = [eid for eid in present if eid != -1]
        seen: set = set()
        for eid in present:
            if eid in seen:
                report.duplicated += 1
                report.violations.append(f"conservation: element {eid} present twice")
            seen.add(eid)
            if eid in removed:
                report.duplicated += 1
                report.violations.append(
                    f"conservation: element {eid} both removed and still present"
                )
            elif eid not in live:
                report.violations.append(
                    f"conservation: element {eid} present but never inserted"
                )
        for eid in sorted(live - seen):
            report.lost += 1
            report.violations.append(
                f"conservation: element {eid} inserted but lost "
                "(not removed, not in structure)"
            )

    def _check_tops(self, report: AuditReport) -> None:
        """Published top cells agree with heaps at quiescence."""
        heaps = self.model._heaps
        locks = getattr(self.model, "_locks", [None] * len(heaps))
        tops = getattr(self.model, "_tops", None)
        if tops is None:
            return
        for q, (heap, cell) in enumerate(zip(heaps, tops)):
            expected = heap.peek().priority if len(heap) else None
            if cell.value == expected:
                continue
            lock = locks[q]
            if lock is not None and lock.locked:
                report.notes.append(
                    f"tops: queue {q} top cell {cell.value!r} != heap top "
                    f"{expected!r}, but its lock is still held "
                    f"(operation frozen in flight) — tolerated"
                )
            else:
                report.violations.append(
                    f"tops: queue {q} publishes {cell.value!r} but heap top is "
                    f"{expected!r} with no holder in flight"
                )

    def _check_engine(self, report: AuditReport) -> None:
        engine = self.engine
        report.crashed_threads = sum(1 for s in engine.stats.values() if s.crashed)
        for tid, stats in engine.stats.items():
            held = engine.locks_held_by(tid)
            if not held:
                continue
            names = ", ".join(lock.name or "<unnamed>" for lock in held)
            if stats.finished and not stats.crashed:
                report.violations.append(
                    f"locks: thread {stats.name} finished normally while "
                    f"still holding [{names}]"
                )
            elif stats.crashed:
                report.notes.append(
                    f"locks: crashed thread {stats.name} dead-holds [{names}]"
                )
