"""Distributional linearizability (Appendix C), operationalized.

Definition 2 of the paper: a randomized concurrent structure ``Q`` is
*distributionally linearizable* to a sequential process ``S`` if every
concurrent execution admits a linearization whose outputs are
distributed as ``S``'s outputs.  This cannot be checked exactly, but it
can be *tested*: compare the empirical rank distribution produced by a
concurrent model against the sequential (1+beta) process with the same
parameters.  The paper also argues the property fails for simple
lock-based strategies, via a stalled-lock-holder counterexample — the
scenario :func:`stalled_lock_counterexample` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.concurrent.recorder import OpRecorder
from repro.core.process import SequentialProcess
from repro.core.records import RankTrace
from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload
from repro.utils.rngtools import SeedLike, as_generator, spawn_seeds


@dataclass
class DistributionalComparisonReport:
    """Summary of a concurrent-vs-sequential rank distribution comparison."""

    concurrent_mean: float
    sequential_mean: float
    concurrent_p99: float
    sequential_p99: float
    #: Kolmogorov–Smirnov distance between the empirical rank CDFs.
    ks_statistic: float
    n_concurrent: int
    n_sequential: int

    def means_within(self, rel_tol: float) -> bool:
        """Whether the mean ranks agree within a relative tolerance."""
        lo = min(self.concurrent_mean, self.sequential_mean)
        hi = max(self.concurrent_mean, self.sequential_mean)
        return hi <= lo * (1.0 + rel_tol)

    def __repr__(self) -> str:
        return (
            f"DistributionalComparisonReport(conc_mean={self.concurrent_mean:.2f}, "
            f"seq_mean={self.sequential_mean:.2f}, KS={self.ks_statistic:.4f})"
        )


def _ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (no scipy dependency)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    support = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, support, side="right") / len(a)
    cdf_b = np.searchsorted(b, support, side="right") / len(b)
    return float(np.abs(cdf_a - cdf_b).max())


def compare_rank_distributions(
    concurrent: RankTrace, sequential: RankTrace
) -> DistributionalComparisonReport:
    """Build a comparison report from two rank traces."""
    if len(concurrent) == 0 or len(sequential) == 0:
        raise ValueError("both traces must be non-empty")
    return DistributionalComparisonReport(
        concurrent_mean=concurrent.mean_rank(),
        sequential_mean=sequential.mean_rank(),
        concurrent_p99=concurrent.quantile(0.99),
        sequential_p99=sequential.quantile(0.99),
        ks_statistic=_ks_distance(concurrent.ranks, sequential.ranks),
        n_concurrent=len(concurrent),
        n_sequential=len(sequential),
    )


def multiqueue_vs_sequential(
    n_threads: int = 4,
    n_queues: int = 8,
    beta: float = 1.0,
    prefill: int = 20_000,
    ops_per_thread: int = 2_000,
    seed: SeedLike = None,
    cost_model: Optional[CostModel] = None,
) -> DistributionalComparisonReport:
    """Run the concurrent MultiQueue and the sequential process side by
    side with matched parameters and compare rank distributions.

    The paper conjectures the lock-based MultiQueue is *not* exactly
    distributionally linearizable, but Section 5 observes its realized
    rank quality closely tracks the sequential guarantee under benign
    schedules — which is what this comparison quantifies.
    """
    seeds = spawn_seeds(seed, 3)
    # Concurrent side.
    recorder = OpRecorder()
    engine = Engine(cost_model)
    model = ConcurrentMultiQueue(engine, n_queues, beta=beta, rng=seeds[0], recorder=recorder)
    model.prefill(seeds[1].integers(2**40, size=prefill))
    workload = AlternatingWorkload(model, n_threads, ops_per_thread, rng=seeds[2])
    workload.spawn_on(engine)
    engine.run()
    concurrent_trace = recorder.rank_trace()

    # Sequential side: identical n_queues/beta, steady-state mode.
    steps = n_threads * ops_per_thread
    proc = SequentialProcess(
        n_queues, capacity=prefill + steps, beta=beta, rng=seeds[0]
    )
    sequential_trace = proc.run_steady_state(prefill, steps)
    return compare_rank_distributions(concurrent_trace, sequential_trace)


def stalled_lock_counterexample(
    n_threads: int = 4,
    n_queues: int = 8,
    prefill: int = 20_000,
    ops_per_thread: int = 2_000,
    stall_fraction: float = 0.9,
    beta: float = 1.0,
    seed: SeedLike = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, RankTrace]:
    """Appendix C's counterexample: a stalled thread holding two locks.

    Runs the concurrent MultiQueue twice with identical seeds: once
    normally, and once with an adversary that acquires the locks of
    queues 0 and 1 early and holds them for ``stall_fraction`` of the
    baseline run's duration.  While those queues are locked their (old,
    high-priority) top elements are unreachable, so every other removal
    pays their rank — rank error grows with the stall length, unboundedly
    in the limit.  Returns ``{"baseline": trace, "stalled": trace}``.
    """
    if not 0 < stall_fraction:
        raise ValueError(f"stall_fraction must be positive, got {stall_fraction}")

    def _run(stall_duration: Optional[float]) -> tuple:
        seeds = spawn_seeds(seed, 3)
        recorder = OpRecorder()
        engine = Engine(cost_model)
        model = ConcurrentMultiQueue(
            engine, n_queues, beta=beta, rng=seeds[0], recorder=recorder
        )
        model.prefill(seeds[1].integers(2**40, size=prefill))
        workload = AlternatingWorkload(model, n_threads, ops_per_thread, rng=seeds[2])
        workload.spawn_on(engine)
        if stall_duration is not None:
            engine.spawn(model.hold_locks_op([0, 1], stall_duration), name="adversary")
        engine.run()
        return recorder.rank_trace(), engine.now

    baseline_trace, baseline_time = _run(None)
    stalled_trace, _ = _run(baseline_time * stall_fraction)
    return {"baseline": baseline_trace, "stalled": stalled_trace}
