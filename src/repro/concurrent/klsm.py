"""Model of the k-LSM relaxed priority queue (Wimmer et al.).

The k-LSM composes a *distributed* LSM — per-thread log-structured merge
components, accessed without synchronization — with a *shared* LSM that
bounds global staleness.  ``deleteMin`` may legally return any element
among the ``k * P + k`` smallest, which is the relaxation the paper
benchmarks against (with relaxation factor 256).

Model structure:

* each thread owns a local heap; inserts go there (cheap, contention
  free) until the local component exceeds ``k``, at which point it is
  *merged* into the shared component under a lock (amortized, but the
  merge pays the full cross-thread transfer);
* ``deleteMin`` compares the local minimum against the shared top (one
  contended read) and pops the smaller; popping from shared requires the
  shared lock.

Rank slack comes from real hiding: elements sitting in other threads'
local components are invisible, exactly the k-LSM semantics (bounded by
``k * (P - 1)``).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.concurrent.recorder import OpRecorder
from repro.pqueues import BinaryHeap
from repro.sanitizer.annotations import guarded_by, shared_state
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import Acquire, Delay, Read, Release, Write
from repro.utils.rngtools import SeedLike, as_generator

#: Sentinel published when the shared component is empty.
EMPTY = None


@shared_state(
    # The shared component's published top: written only under the
    # shared lock (plain Write — the lock never runs in lease mode);
    # read lock-free by every deleteMin's local-vs-shared comparison.
    cells={"_shared_top": guarded_by("_shared_lock", atomic_reads=True)},
)
class KLSMPQ:
    """Simulated k-LSM relaxed priority queue.

    Parameters
    ----------
    relaxation:
        The ``k`` parameter: local components hold at most ``k`` elements
        before being merged into the shared component.  The paper's
        evaluation uses 256.
    """

    def __init__(
        self,
        engine: Engine,
        relaxation: int = 256,
        rng: SeedLike = None,
        recorder: Optional[OpRecorder] = None,
    ) -> None:
        if relaxation <= 0:
            raise ValueError(f"relaxation must be positive, got {relaxation}")
        self.engine = engine
        self.relaxation = relaxation
        self._rng = as_generator(rng)
        self._recorder = recorder
        self._shared = BinaryHeap()
        self._shared_lock = SimLock(name="klsm-shared-lock")
        self._shared_top = SimCell(EMPTY, name="klsm-shared-top")
        self._locals: Dict[int, BinaryHeap] = {}

    def prefill(self, priorities) -> None:
        """Bulk-load the shared component before the clock starts."""
        for priority in priorities:
            priority = int(priority)
            eid = self._new_eid(priority)
            self._shared.push(priority, eid)
            if self._recorder is not None:
                self._recorder.record_insert(0.0, eid)
        # sanitizer: allow(SAN104) prefill runs before the clock starts
        self._shared_top.value = (
            self._shared.peek().priority if len(self._shared) else EMPTY
        )

    def _new_eid(self, priority: int) -> int:
        if self._recorder is not None:
            return self._recorder.new_element(priority)
        return -1

    def _local(self, tid: int) -> BinaryHeap:
        if tid not in self._locals:
            self._locals[tid] = BinaryHeap()
        return self._locals[tid]

    def total_size(self) -> int:
        """Elements currently stored (shared + all locals)."""
        return len(self._shared) + sum(len(h) for h in self._locals.values())

    def lock_failure_ratio(self) -> float:
        """Failed-try ratio of the shared lock (blocking acquires don't
        fail, so this is 0; present for interface uniformity)."""
        return self._shared_lock.failure_ratio()

    # -- operations ---------------------------------------------------------

    def insert_op(self, tid: int, priority: int) -> Generator:
        """Insert into the thread-local component; merge when full."""
        cost = self.engine.cost
        eid = self._new_eid(priority)
        local = self._local(tid)
        local.push(priority, eid)
        if self._recorder is not None:
            # The element is logically in the structure immediately (the
            # k-LSM's relaxation hides it from other threads, but it is
            # inserted).
            self._recorder.record_insert(self.engine.now, eid)
        yield Delay(cost.pq_op_cost(len(local)))
        if len(local) > self.relaxation:
            yield from self._merge_local(tid)
        return eid

    def _merge_local(self, tid: int) -> Generator:
        """Drain the local component into the shared one, under lock."""
        cost = self.engine.cost
        local = self._local(tid)
        yield Acquire(self._shared_lock)
        merged = 0
        while len(local):
            entry = local.pop()
            self._shared.push(entry.priority, entry.item)
            merged += 1
        # LSM merges are sequential scans: amortized cost per element is
        # small, but the whole batch is paid here.
        yield Delay(cost.local_work + 0.5 * cost.pq_per_level * merged)
        yield Write(
            self._shared_top,
            self._shared.peek().priority if len(self._shared) else EMPTY,
        )
        yield Release(self._shared_lock)

    def delete_min_op(self, tid: int) -> Generator:
        """Pop the smaller of (local min, shared top); spy when starved.

        Returns ``None`` only when the whole structure is empty (modulo
        a benign race where concurrent deleters drain it mid-operation).
        """
        cost = self.engine.cost
        local = self._local(tid)
        while True:
            local_top = local.peek().priority if len(local) else None
            shared_top = yield Read(self._shared_top)
            if local_top is not None and (shared_top is EMPTY or local_top <= shared_top):
                if not len(local):
                    continue  # a spy stole our last local element mid-read
                entry = local.pop()
                if self._recorder is not None and entry.item != -1:
                    self._recorder.record_remove(self.engine.now, entry.item)
                yield Delay(cost.pq_op_cost(len(local)))
                return (entry.priority, entry.item)
            if shared_top is EMPTY:
                # Own views empty: *spy* on other threads' local
                # components (the real k-LSM's spy copies a remote local;
                # the model takes its minimum, preserving conservation).
                result = yield from self._spy_op(tid)
                return result
            yield Acquire(self._shared_lock)
            if not len(self._shared):
                # Stale top: the shared component drained since the read.
                yield Write(self._shared_top, EMPTY)
                yield Release(self._shared_lock)
                continue
            entry = self._shared.pop()
            if self._recorder is not None and entry.item != -1:
                self._recorder.record_remove(self.engine.now, entry.item)
            yield Delay(cost.pq_op_cost(len(self._shared)))
            yield Write(
                self._shared_top,
                self._shared.peek().priority if len(self._shared) else EMPTY,
            )
            yield Release(self._shared_lock)
            return (entry.priority, entry.item)

    def _spy_op(self, tid: int) -> Generator:
        """Steal the best element from some other thread's local component.

        Pays a cross-thread scan cost per peeked component; returns
        ``None`` only when every component is genuinely empty (modulo a
        benign race with concurrent deleters).
        """
        cost = self.engine.cost
        for _attempt in range(4):
            best_tid = None
            best_priority = None
            for other, heap in list(self._locals.items()):
                if other == tid:
                    continue
                yield Delay(cost.read + cost.cache_transfer)
                if not len(heap):  # re-check: it may have drained mid-scan
                    continue
                top = heap.peek().priority
                if best_priority is None or top < best_priority:
                    best_tid, best_priority = other, top
            if best_tid is not None:
                heap = self._locals[best_tid]
                if not len(heap):
                    continue  # lost a race to its owner; rescan
                entry = heap.pop()
                if self._recorder is not None and entry.item != -1:
                    self._recorder.record_remove(self.engine.now, entry.item)
                yield Delay(cost.pq_op_cost(len(heap)))
                return (entry.priority, entry.item)
            # Nothing visible in locals; double-check the shared component
            # under the lock before declaring the structure empty.
            yield Acquire(self._shared_lock)
            if len(self._shared):
                entry = self._shared.pop()
                if self._recorder is not None and entry.item != -1:
                    self._recorder.record_remove(self.engine.now, entry.item)
                yield Delay(cost.pq_op_cost(len(self._shared)))
                yield Write(
                    self._shared_top,
                    self._shared.peek().priority if len(self._shared) else EMPTY,
                )
                yield Release(self._shared_lock)
                return (entry.priority, entry.item)
            yield Release(self._shared_lock)
            return None
        return None

    def __repr__(self) -> str:
        return f"KLSMPQ(relaxation={self.relaxation}, size={self.total_size()})"
