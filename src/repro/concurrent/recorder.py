"""Timestamped operation recording and offline rank computation.

The paper measures rank quality by timestamping returned elements and
counting inversions in post-processing, conceding the timestamps might
perturb the schedule.  The simulator does strictly better: models call
the recorder exactly at their linearization points (under the lock / at
the winning CAS), so the recorded history *is* the linearization, with
no probe effect.

Offline, :meth:`OpRecorder.rank_trace` replays the history against a
Fenwick presence tree over the elements sorted by priority, producing
the exact rank paid by every removal — the same cost notion as the
sequential process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.records import RankTrace
from repro.utils.fenwick import FenwickTree


class HistoryError(ValueError):
    """Raised when a recorded history is structurally inconsistent."""


@dataclass(frozen=True)
class OpEvent:
    """One linearized operation: ``kind`` is ``'ins'`` or ``'del'``."""

    time: float
    kind: str
    eid: int


class OpRecorder:
    """Collects linearized insert/remove events from concurrent models.

    Element ids are allocated by :meth:`new_element`, which also fixes
    the element's priority.  Total order among equal priorities is by
    element id, so ranks are always well defined.
    """

    def __init__(self) -> None:
        self._priorities: List[Any] = []
        self._events: List[OpEvent] = []

    # -- recording --------------------------------------------------------

    def new_element(self, priority: Any) -> int:
        """Register an element; returns its id."""
        eid = len(self._priorities)
        self._priorities.append(priority)
        return eid

    def record_insert(self, time: float, eid: int) -> None:
        """Record that ``eid`` became visible at simulated ``time``."""
        self._events.append(OpEvent(time, "ins", eid))

    def record_remove(self, time: float, eid: int) -> None:
        """Record that ``eid`` was removed at simulated ``time``."""
        self._events.append(OpEvent(time, "del", eid))

    # -- inspection ---------------------------------------------------------

    @property
    def n_elements(self) -> int:
        """Number of element ids allocated."""
        return len(self._priorities)

    @property
    def events(self) -> List[OpEvent]:
        """The recorded history, in linearization order."""
        return list(self._events)

    def counts(self) -> Tuple[int, int]:
        """``(inserts, removes)`` recorded so far."""
        ins = sum(1 for e in self._events if e.kind == "ins")
        return ins, len(self._events) - ins

    def validate(self) -> None:
        """Check structural well-formedness of the recorded history.

        A valid history inserts every element at most once, removes only
        previously inserted (and not yet removed) elements, references
        only allocated element ids, and carries non-decreasing
        linearization times.  Models are expected to produce valid
        histories under any schedule; tests call this after stress runs.

        Raises
        ------
        HistoryError
            Describing the first inconsistency found.
        """
        state = bytearray(len(self._priorities))  # 0 absent, 1 present, 2 gone
        last_time = float("-inf")
        for k, event in enumerate(self._events):
            if not 0 <= event.eid < len(self._priorities):
                raise HistoryError(f"event {k}: unknown element id {event.eid}")
            if event.time < last_time:
                raise HistoryError(
                    f"event {k}: time {event.time} precedes {last_time}"
                )
            last_time = event.time
            if event.kind == "ins":
                if state[event.eid] != 0:
                    raise HistoryError(f"event {k}: element {event.eid} re-inserted")
                state[event.eid] = 1
            elif event.kind == "del":
                if state[event.eid] != 1:
                    raise HistoryError(
                        f"event {k}: element {event.eid} removed while "
                        f"{'absent' if state[event.eid] == 0 else 'already removed'}"
                    )
                state[event.eid] = 2
            else:
                raise HistoryError(f"event {k}: unknown kind {event.kind!r}")

    # -- offline analysis ------------------------------------------------------

    def rank_trace(self) -> RankTrace:
        """Exact rank paid by each removal, replaying the history.

        Elements are globally ordered by ``(priority, eid)``; a Fenwick
        tree tracks presence; each ``del`` event pays the prefix count at
        its position.  Events are processed in recorded order, which is
        the models' linearization order (time ties are already resolved
        by the engine's deterministic scheduling).
        """
        order = sorted(range(len(self._priorities)), key=lambda e: (self._priorities[e], e))
        position = {eid: idx for idx, eid in enumerate(order)}
        tree = FenwickTree(max(len(order), 1))
        trace = RankTrace()
        for event in self._events:
            pos = position[event.eid]
            if event.kind == "ins":
                tree.add(pos, 1)
            else:
                trace.append(tree.prefix_sum(pos))
                tree.add(pos, -1)
        return trace

    def inversion_count(self) -> int:
        """Number of removal *inversions*: ordered pairs of removals
        where a higher-priority (smaller) element came out after a
        lower-priority one that was already present when it was removed.

        Equivalent to ``sum(rank_i - 1)`` over the rank trace — each
        removal of rank ``r`` jumps over ``r - 1`` better candidates.
        """
        trace = self.rank_trace()
        if len(trace) == 0:
            return 0
        return int((trace.ranks - 1).sum())

    def __repr__(self) -> str:
        ins, rem = self.counts()
        return f"OpRecorder(elements={self.n_elements}, inserts={ins}, removes={rem})"
