"""Concurrent priority-queue models running on the simulator.

Each model implements the contention structure of one contender from the
paper's Section 5 evaluation:

* :class:`~repro.concurrent.multiqueue.ConcurrentMultiQueue` — the
  (1+beta) MultiQueue: ``c*P`` lock-protected sequential heaps, try-lock
  with random retry, lock-free top peeking (``beta=1`` recovers Rihani
  et al.'s original MultiQueue; ``beta<1`` is the paper's contribution).
* :class:`~repro.concurrent.linden_jonsson.LindenJonssonPQ` — a single
  skiplist whose ``deleteMin`` serializes through one hot head pointer.
* :class:`~repro.concurrent.klsm.KLSMPQ` — the k-LSM: thread-local
  buffers merged into a shared component, trading rank slack for
  locality.
* :class:`~repro.concurrent.spraylist.SprayListPQ` — bonus baseline: a
  skiplist with random "spray" descents instead of a hot head.

All models operate on *real* element data (priorities and element ids),
record their linearization points with
:class:`~repro.concurrent.recorder.OpRecorder`, and therefore yield
measurable rank errors — exactly the methodology of the paper's Figure 2,
minus the probe effect of wall-clock timestamps.
"""

from repro.concurrent.recorder import OpRecorder
from repro.concurrent.audit import AuditError, AuditReport, InvariantAuditor
from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.concurrent.linden_jonsson import LindenJonssonPQ
from repro.concurrent.klsm import KLSMPQ
from repro.concurrent.spraylist import SprayListPQ
from repro.concurrent.linearizability import (
    DistributionalComparisonReport,
    compare_rank_distributions,
    multiqueue_vs_sequential,
    stalled_lock_counterexample,
)

__all__ = [
    "OpRecorder",
    "AuditError",
    "AuditReport",
    "InvariantAuditor",
    "ConcurrentMultiQueue",
    "LindenJonssonPQ",
    "KLSMPQ",
    "SprayListPQ",
    "DistributionalComparisonReport",
    "compare_rank_distributions",
    "multiqueue_vs_sequential",
    "stalled_lock_counterexample",
]
