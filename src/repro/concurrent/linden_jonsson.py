"""Model of the Lindén–Jonsson skiplist-based concurrent priority queue.

The real algorithm is a lock-free skiplist where ``deleteMin`` marks the
first node's next-pointer; all deleting threads race on the *same* head
region of the list, so every ``deleteMin`` implies a CAS on a cache line
that another core just modified.  That single hot line is why the
structure stops scaling beyond a few threads — the effect Figure 1 shows
and this model reproduces.

Model structure:

* one shared, exact heap of real elements (Lindén–Jonsson is strict:
  its rank error is 0 by construction, which the rank benches confirm);
* ``deleteMin``: read the head-version cell, then CAS it forward;
  losers retry.  The winner pops the true minimum.
* ``insert``: an O(log n) traversal delay, then a CAS on one of many
  *insertion region* cells (contention spread over the list body, hence
  usually cheap), retrying on conflict.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.concurrent.recorder import OpRecorder
from repro.pqueues import BinaryHeap
from repro.sanitizer.annotations import atomic_cell, shared_state
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell
from repro.sim.syscalls import CAS, Delay, Read
from repro.utils.rngtools import SeedLike, as_generator

#: Number of independent insertion regions in the list body.  Inserts
#: conflict only when they hit the same region at the same time.
_INSERT_REGIONS = 64


@shared_state(
    # Both the hot head-version cell and the insertion regions are
    # CAS-based synchronization objects: every deleteMin races on the
    # head by design — that race *is* the modelled bottleneck.
    cells={"_head": atomic_cell(), "_regions": atomic_cell()},
)
class LindenJonssonPQ:
    """Simulated Lindén–Jonsson priority queue (strict semantics)."""

    def __init__(
        self,
        engine: Engine,
        rng: SeedLike = None,
        recorder: Optional[OpRecorder] = None,
    ) -> None:
        self.engine = engine
        self._rng = as_generator(rng)
        self._recorder = recorder
        self._heap = BinaryHeap()
        #: The hot cache line: version counter advanced by every deleteMin.
        self._head = SimCell(0, name="lj-head")
        self._regions = [SimCell(0, name=f"lj-region-{i}") for i in range(_INSERT_REGIONS)]

    def prefill(self, priorities) -> None:
        """Bulk-load before the clock starts (zero simulated cost)."""
        for priority in priorities:
            priority = int(priority)
            eid = self._new_eid(priority)
            self._heap.push(priority, eid)
            if self._recorder is not None:
                self._recorder.record_insert(0.0, eid)

    def _new_eid(self, priority: int) -> int:
        if self._recorder is not None:
            return self._recorder.new_element(priority)
        return -1

    def total_size(self) -> int:
        """Elements currently stored."""
        return len(self._heap)

    def insert_op(self, tid: int, priority: int) -> Generator:
        """Concurrent insert: traverse, then CAS into a body region."""
        cost = self.engine.cost
        eid = self._new_eid(priority)
        # Skiplist search from the top level down.
        yield Delay(cost.pq_op_cost(len(self._heap)))
        while True:
            region = self._regions[int(self._rng.integers(_INSERT_REGIONS))]
            version = yield Read(region)
            ok = yield CAS(region, version, version + 1)
            if ok:
                break
            # Lost a race on this region: short re-traversal, try again.
            yield Delay(cost.local_work)
        self._heap.push(priority, eid)
        if self._recorder is not None:
            self._recorder.record_insert(self.engine.now, eid)
        return eid

    def delete_min_op(self, tid: int) -> Generator:
        """Concurrent deleteMin: win the head CAS, pop the true minimum."""
        cost = self.engine.cost
        while True:
            version = yield Read(self._head)
            if not len(self._heap):
                return None
            ok = yield CAS(self._head, version, version + 1)
            if ok:
                break
            # Lost the race on the hot head line; the read + failed CAS
            # already cost a cache transfer each — that's the bottleneck.
        entry = self._heap.pop()
        if self._recorder is not None and entry.item != -1:
            self._recorder.record_remove(self.engine.now, entry.item)
        # Physical unlink / restructure after the logical delete.
        yield Delay(cost.local_work)
        return (entry.priority, entry.item)

    def __repr__(self) -> str:
        return f"LindenJonssonPQ(size={self.total_size()})"
