"""The concurrent (1+beta) MultiQueue model.

Faithful to the algorithm of Rihani–Sanders–Dementiev plus the paper's
beta relaxation:

* ``insert``: pick a uniformly random queue, ``try_lock`` it; on failure
  re-pick (never wait);
* ``deleteMin``: with probability ``beta``, read the tops of two random
  queues *without locking* (each top lives in its own cache line —
  modelled by a :class:`~repro.sim.primitives.SimCell` per queue), lock
  the queue with the better top, re-validate, pop; with probability
  ``1 - beta``, use a single random queue.  If the lock attempt fails or
  validation shows the top changed, restart the whole operation.

Real per-queue heaps hold real ``(priority, eid)`` elements, so rank
errors come out of the actual interleaving, not a synthetic error model.

Graceful degradation (chaos-engine hooks):

* failed try-locks back off exponentially (``cost.backoff_base``
  doubling per consecutive failure, capped), and deletions give up and
  report "empty" after ``max_delete_retries`` attempts instead of
  spinning forever against dead-held locks;
* with ``lock_lease`` set, queue locks run in lease mode: a stalled or
  crashed holder loses the lock after the lease expires, and critical
  sections re-validate holdership (``GuardedWrite``/``Release`` results)
  before publishing tops — element conservation holds even when locks
  are revoked mid-operation, because heap mutations are atomic at their
  instants and each element is popped exactly once.

Fault injection lives in :mod:`repro.sim.faults` (engine-level, with a
dedicated fault RNG); the ``preempt_prob``/``preempt_cycles`` knobs kept
here are the legacy in-model version of
:class:`~repro.sim.faults.LockHolderPreempt` and are deprecated.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.concurrent.recorder import OpRecorder
from repro.pqueues import BinaryHeap
from repro.sanitizer.annotations import guarded_by, shared_state
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import Acquire, Delay, GuardedWrite, Read, Release, TryAcquire
from repro.utils.rngtools import SeedLike, as_generator

#: Sentinel stored in a top cell when its queue is empty.
EMPTY = None

#: Default seed of the dedicated fault RNG (kept fixed so runs remain
#: reproducible when the caller does not provide one).
_DEFAULT_FAULT_SEED = 0xFA017


@shared_state(
    # The published top of queue i (``_tops[i]``) is owned by queue i's
    # lock (``_locks[i]``): writes only under the lock (GuardedWrite, so
    # lease revocation is revalidated), lock-free reads blessed — the
    # algorithm's unsynchronized peeks re-validate under the lock.
    cells={"_tops": guarded_by("_locks", atomic_reads=True, lease_guarded=True)},
    lock_order="ascending-index",
)
class ConcurrentMultiQueue:
    """Simulated concurrent MultiQueue with (1+beta) deletion.

    Parameters
    ----------
    engine:
        The simulation engine (provides the clock and cost model).
    n_queues:
        Number of lock-protected sequential queues (the paper uses
        ``2 * threads``).
    beta:
        Two-choice probability for deletions.
    rng:
        Seed/generator for queue choices (model-internal randomness).
    recorder:
        Optional :class:`OpRecorder`; when provided, every operation is
        recorded at its linearization point.
    stickiness:
        Operations a thread keeps reusing its random queue choices for.
    delete_locking:
        ``'better'`` or ``'both'`` (Appendix C's simple strategy).
    preempt_prob / preempt_cycles:
        .. deprecated::
            Legacy in-model preemption; superseded by
            :class:`~repro.sim.faults.LockHolderPreempt`, which injects
            at engine level.  Still honoured, but drawing from the
            dedicated fault RNG (``fault_rng``), so enabling it no
            longer perturbs the queue-choice sequence.
    fault_rng:
        Seed/generator for fault randomness only (default: a fixed
        constant, so fault coin flips are reproducible and independent
        of the model RNG).
    max_delete_retries:
        Attempts before ``deleteMin`` reports the structure empty
        (default ``8 * n_queues``, the historical spin cap — now paired
        with exponential backoff rather than a bare spin).
    lock_lease:
        Optional lease (cycles) on every queue lock; see
        :class:`~repro.sim.primitives.SimLock`.
    """

    def __init__(
        self,
        engine: Engine,
        n_queues: int,
        beta: float = 1.0,
        rng: SeedLike = None,
        recorder: Optional[OpRecorder] = None,
        stickiness: int = 1,
        delete_locking: str = "better",
        preempt_prob: float = 0.0,
        preempt_cycles: float = 0.0,
        fault_rng: SeedLike = None,
        max_delete_retries: Optional[int] = None,
        lock_lease: Optional[float] = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if stickiness < 1:
            raise ValueError(f"stickiness must be >= 1, got {stickiness}")
        if delete_locking not in ("better", "both"):
            raise ValueError(f"delete_locking must be 'better' or 'both', got {delete_locking!r}")
        if not 0.0 <= preempt_prob <= 1.0:
            raise ValueError(f"preempt_prob must be in [0, 1], got {preempt_prob}")
        if preempt_cycles < 0:
            raise ValueError(f"preempt_cycles must be non-negative, got {preempt_cycles}")
        if max_delete_retries is not None and max_delete_retries < 1:
            raise ValueError(f"max_delete_retries must be >= 1, got {max_delete_retries}")
        if lock_lease is not None and lock_lease <= 0:
            raise ValueError(f"lock_lease must be positive, got {lock_lease}")
        self.engine = engine
        self.n_queues = n_queues
        self.beta = beta
        #: Operations a thread keeps reusing its random queue choices for
        #: (1 = re-randomize every op, the paper's algorithm; larger
        #: values trade rank quality for cache locality, as in follow-up
        #: MultiQueue work).
        self.stickiness = stickiness
        #: 'better' locks only the queue with the smaller observed top
        #: (Rihani et al.); 'both' locks both sampled queues in index
        #: order and compares under the locks — Appendix C's "simple
        #: locking strategy".
        self.delete_locking = delete_locking
        self._rng = as_generator(rng)
        #: Dedicated fault randomness (legacy preemption coin flips) —
        #: kept separate from the model RNG so fault settings never
        #: perturb queue choices and A/B runs stay paired.
        self._fault_rng = as_generator(
            fault_rng if fault_rng is not None else _DEFAULT_FAULT_SEED
        )
        self._recorder = recorder
        self.max_delete_retries = (
            max_delete_retries if max_delete_retries is not None else 8 * n_queues
        )
        self.lock_lease = lock_lease
        self._heaps: List[BinaryHeap] = [BinaryHeap() for _ in range(n_queues)]
        self._locks: List[SimLock] = [
            SimLock(name=f"mq-lock-{i}", lease=lock_lease) for i in range(n_queues)
        ]
        #: Published top priority of each queue (lock-free peek target).
        self._tops: List[SimCell] = [SimCell(EMPTY, name=f"mq-top-{i}") for i in range(n_queues)]
        #: Per-thread sticky state: tid -> [queue, ops_remaining].
        self._sticky_insert: dict = {}
        #: Per-thread sticky state: tid -> [i, j, ops_remaining].
        self._sticky_delete: dict = {}
        #: Appendix C generalized: with probability ``preempt_prob`` a
        #: thread is descheduled for ``preempt_cycles`` *while holding
        #: its queue lock(s)*.  Deprecated — see class docstring.
        self.preempt_prob = preempt_prob
        self.preempt_cycles = preempt_cycles

    # -- setup -----------------------------------------------------------

    def prefill(self, priorities) -> None:
        """Bulk-load elements before the clock starts (zero sim cost)."""
        for priority in priorities:
            priority = int(priority)
            eid = self._new_eid(priority)
            q = int(self._rng.integers(self.n_queues))
            self._heaps[q].push(priority, eid)
            self._publish_top(q)
            if self._recorder is not None:
                self._recorder.record_insert(0.0, eid)

    def _new_eid(self, priority: int) -> int:
        if self._recorder is not None:
            return self._recorder.new_element(priority)
        return -1

    def _publish_top(self, q: int) -> None:
        """Refresh queue ``q``'s top cell from its heap (direct, used at
        prefill time and under the queue's lock)."""
        heap = self._heaps[q]
        # sanitizer: allow(SAN104) prefill runs before the clock starts
        self._tops[q].value = heap.peek().priority if len(heap) else EMPTY

    # -- metrics -------------------------------------------------------------

    def lock_failure_ratio(self) -> float:
        """Aggregate failed-try ratio across all queue locks."""
        acq = sum(l.acquisitions for l in self._locks)
        fail = sum(l.failed_tries for l in self._locks)
        total = acq + fail
        return fail / total if total else 0.0

    def lock_revocations(self) -> int:
        """Total lease revocations across all queue locks."""
        return sum(l.revocations for l in self._locks)

    def total_size(self) -> int:
        """Elements currently stored (direct inspection)."""
        return sum(len(h) for h in self._heaps)

    # -- operations -------------------------------------------------------------

    def _maybe_preempt(self) -> Generator:
        """Possibly stall here (while holding locks) per the legacy
        preemption injection parameters (fault RNG, not model RNG)."""
        if self.preempt_prob > 0.0 and self._fault_rng.random() < self.preempt_prob:
            yield Delay(self.preempt_cycles)

    def _backoff_cycles(self, failures: int) -> float:
        """Exponential backoff after ``failures`` consecutive failed
        tries: ``backoff_base * 2^(failures-1)``, capped at 64x."""
        base = self.engine.cost.backoff_base
        return base * (2 ** min(failures - 1, 6))

    def insert_op(self, tid: int, priority: int) -> Generator:
        """One concurrent insert (generator to run on the engine)."""
        cost = self.engine.cost
        eid = self._new_eid(priority)
        sticky = self._sticky_insert.get(tid)
        failures = 0
        while True:
            if sticky is not None and sticky[1] > 0:
                q = sticky[0]
            else:
                yield Delay(cost.rng_draw)
                q = int(self._rng.integers(self.n_queues))
                sticky = [q, self.stickiness]
            ok = yield TryAcquire(self._locks[q])
            if ok:
                sticky[1] -= 1
                self._sticky_insert[tid] = sticky
                break
            sticky = None  # lock failure: re-randomize immediately
            failures += 1
            yield Delay(self._backoff_cycles(failures))
        heap = self._heaps[q]
        heap.push(priority, eid)
        if self._recorder is not None:
            self._recorder.record_insert(self.engine.now, eid)
        yield Delay(cost.pq_op_cost(len(heap)))
        yield from self._maybe_preempt()
        yield GuardedWrite(self._tops[q], heap.peek().priority, self._locks[q])
        yield Release(self._locks[q])
        return eid

    def delete_min_op(self, tid: int) -> Generator:
        """One concurrent (1+beta) deleteMin; returns ``(priority, eid)``
        or ``None`` if the structure appears empty (or stays unreachable
        for ``max_delete_retries`` attempts — graceful degradation under
        dead-held locks)."""
        if self.delete_locking == "both":
            result = yield from self._delete_lock_both(tid)
            return result
        cost = self.engine.cost
        rng = self._rng
        sticky = self._sticky_delete.get(tid)
        attempts = 0
        failures = 0
        while True:
            attempts += 1
            if attempts > self.max_delete_retries:
                # Too many failures: the structure is likely (nearly)
                # empty or its queues are unreachable.  Report empty
                # rather than spin forever.
                return None
            two = self.beta >= 1.0 or (self.beta > 0.0 and rng.random() < self.beta)
            if sticky is not None and sticky[2] > 0:
                i, j = sticky[0], sticky[1]
            else:
                yield Delay(cost.rng_draw)
                i = int(rng.integers(self.n_queues))
                j = int(rng.integers(self.n_queues))
                sticky = [i, j, self.stickiness]
            if two:
                top_i = yield Read(self._tops[i])
                top_j = yield Read(self._tops[j])
                if top_i is EMPTY and top_j is EMPTY:
                    sticky = None
                    continue
                if top_j is EMPTY:
                    chosen = i
                elif top_i is EMPTY:
                    chosen = j
                else:
                    chosen = i if top_i <= top_j else j
            else:
                top_i = yield Read(self._tops[i])
                if top_i is EMPTY:
                    sticky = None
                    continue
                chosen = i
            ok = yield TryAcquire(self._locks[chosen])
            if not ok:
                sticky = None  # restart with fresh queues, per the algorithm
                failures += 1
                yield Delay(self._backoff_cycles(failures))
                continue
            failures = 0
            heap = self._heaps[chosen]
            if not len(heap):
                # Stale top: republish emptiness so later peeks don't
                # keep chasing a value that is no longer there.
                yield GuardedWrite(self._tops[chosen], EMPTY, self._locks[chosen])
                yield Release(self._locks[chosen])
                sticky = None
                continue
            entry = heap.pop()
            if self._recorder is not None and entry.item != -1:
                self._recorder.record_remove(self.engine.now, entry.item)
            yield Delay(cost.pq_op_cost(len(heap)))
            yield from self._maybe_preempt()
            yield GuardedWrite(
                self._tops[chosen],
                heap.peek().priority if len(heap) else EMPTY,
                self._locks[chosen],
            )
            yield Release(self._locks[chosen])
            sticky[2] -= 1
            self._sticky_delete[tid] = sticky
            return (entry.priority, entry.item)

    def _delete_lock_both(self, tid: int) -> Generator:
        """Appendix C's 'simple locking strategy': lock both sampled
        queues (in index order, try-lock with full restart on failure),
        compare the true tops under the locks, pop the better one."""
        cost = self.engine.cost
        rng = self._rng
        attempts = 0
        failures = 0
        while True:
            attempts += 1
            if attempts > self.max_delete_retries:
                return None
            yield Delay(cost.rng_draw)
            two = self.beta >= 1.0 or (self.beta > 0.0 and rng.random() < self.beta)
            i = int(rng.integers(self.n_queues))
            j = int(rng.integers(self.n_queues)) if two else i
            first, second = min(i, j), max(i, j)
            ok = yield TryAcquire(self._locks[first])
            if not ok:
                failures += 1
                yield Delay(self._backoff_cycles(failures))
                continue
            if second != first:
                ok = yield TryAcquire(self._locks[second])
                if not ok:
                    yield Release(self._locks[first])
                    failures += 1
                    yield Delay(self._backoff_cycles(failures))
                    continue
            failures = 0
            heap_i, heap_j = self._heaps[i], self._heaps[j]
            if len(heap_i) and (not len(heap_j) or heap_i.peek() <= heap_j.peek()):
                chosen = i
            elif len(heap_j):
                chosen = j
            else:
                # Both sampled queues empty: republish emptiness so the
                # lock-free peeks stop seeing stale tops.
                yield GuardedWrite(self._tops[i], EMPTY, self._locks[i])
                if second != first:
                    yield GuardedWrite(self._tops[j], EMPTY, self._locks[j])
                    yield Release(self._locks[second])
                yield Release(self._locks[first])
                continue
            heap = self._heaps[chosen]
            entry = heap.pop()
            if self._recorder is not None and entry.item != -1:
                self._recorder.record_remove(self.engine.now, entry.item)
            yield Delay(cost.pq_op_cost(len(heap)))
            yield from self._maybe_preempt()
            yield GuardedWrite(
                self._tops[chosen],
                heap.peek().priority if len(heap) else EMPTY,
                self._locks[chosen],
            )
            if second != first:
                yield Release(self._locks[second])
            yield Release(self._locks[first])
            return (entry.priority, entry.item)

    # -- adversary hooks (Appendix C counterexample) -----------------------------

    def hold_locks_op(self, queue_indices, duration: float) -> Generator:
        """Adversary: grab the given queue locks (in index order, blocking)
        and sit on them for ``duration`` cycles.

        This reproduces Appendix C's counterexample: while two queues are
        locked, no removal can touch them, so their top elements age and
        the rank error of the rest of the system grows without bound.

        **Ordering contract.**  Blocking acquisition is deadlock-free
        only because *every* blocking acquirer takes queue locks in
        ascending index order (this op sorts and deduplicates its
        targets).  The MultiQueue's own operations use ``TryAcquire``
        with full restart, so they can never participate in a wait
        cycle; but a second blocking acquirer that disobeys the order —
        or a worker whose lock is dead-held by a crashed thread — parks
        forever, and the engine's :class:`~repro.sim.engine.DeadlockError`
        then reports the holders, the waiters, and the cycle by name
        (see ``tests/concurrent/test_chaos.py``).

        Under lock leases the hold is best-effort: the engine may revoke
        a lease-expired lock mid-stall, in which case the final release
        observes the revocation (result ``False``) and is a no-op.
        """
        indices = sorted(set(int(q) for q in queue_indices))
        for q in indices:
            yield Acquire(self._locks[q])
        yield Delay(duration)
        for q in reversed(indices):
            yield Release(self._locks[q])

    def __repr__(self) -> str:
        return (
            f"ConcurrentMultiQueue(n_queues={self.n_queues}, beta={self.beta}, "
            f"size={self.total_size()})"
        )
