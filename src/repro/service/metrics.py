"""Metrics over collected service events.

Latency honors coordinated omission: each event carries the *intended*
start time stamped by the open-loop schedule, so a stalled owner is
charged for everything that queued behind it.  Rank quality replays the
event stream against a Fenwick-tree snapshot oracle: events are merged
across shards by their Lamport clocks (ties broken by shard id, a fixed
linearization), and every sampled delete is scored by the global rank
of the removed label among all labels present at that point — the same
1-based rank-cost convention as the simulator.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import rank_summary
from repro.core.rank import RankOracle
from repro.service.loadgen import ArrivalSchedule
from repro.service.shm import EV_DELETE, EV_EMPTY, EV_INSERT, ServiceSegment

_NS_PER_MS = 1_000_000.0

#: Wall-clock-derived fields of a service summary.  Declared for
#: ``repro check`` (DET102): anything ending up under these keys is
#: measurement, not result, and is exempt from determinism comparison.
SERVICE_VOLATILE_KEYS = frozenset(
    {
        "wall_s",
        "throughput_ops_s",
        "per_shard_ops_s",
        "speedup",
        "insert_mean_ms",
        "insert_p50_ms",
        "insert_p99_ms",
        "insert_p999_ms",
        "delete_mean_ms",
        "delete_p50_ms",
        "delete_p99_ms",
        "delete_p999_ms",
        "after_ns",
    }
)

Event = Tuple[int, int, int, int, int]  # (ev, label, clock, t0_ns, t1_ns)


def latency_stats(latencies_ns: np.ndarray, prefix: str) -> dict:
    """Tail statistics of one op kind, in milliseconds."""
    if latencies_ns.size == 0:
        return {
            f"{prefix}_mean_ms": None,
            f"{prefix}_p50_ms": None,
            f"{prefix}_p99_ms": None,
            f"{prefix}_p999_ms": None,
        }
    ms = latencies_ns / _NS_PER_MS
    return {
        f"{prefix}_mean_ms": float(ms.mean()),
        f"{prefix}_p50_ms": float(np.quantile(ms, 0.50)),
        f"{prefix}_p99_ms": float(np.quantile(ms, 0.99)),
        f"{prefix}_p999_ms": float(np.quantile(ms, 0.999)),
    }


def merge_events(events_by_shard: Sequence[Sequence[Event]]) -> np.ndarray:
    """All shards' events as one ``(N, 6)`` array in linearized order.

    Columns: shard, ev, label, clock, t0_ns, t1_ns.  Order is
    ``(clock, shard)`` — Lamport clocks give a causally consistent
    order, and within a shard the owner's clock is strictly increasing,
    so a label's insert always precedes its delete.
    """
    blocks = []
    for shard, events in enumerate(events_by_shard):
        if not len(events):
            continue
        ev = np.asarray(events, dtype=np.int64).reshape(len(events), 5)
        block = np.empty((ev.shape[0], 6), dtype=np.int64)
        block[:, 0] = shard
        block[:, 1:] = ev
        blocks.append(block)
    if not blocks:
        return np.empty((0, 6), dtype=np.int64)
    arr = np.concatenate(blocks)
    # Stable sort on the same (clock, shard) keys as the old per-row
    # path; concatenation preserves within-shard order, so the permuted
    # result is byte-identical to it.
    order = np.lexsort((arr[:, 0], arr[:, 3]))
    return arr[order]


def replay_ranks(
    merged: np.ndarray,
    label_universe: int,
    sample_every: int = 16,
) -> np.ndarray:
    """Global rank paid by every ``sample_every``-th delete.

    The oracle tracks the set of present labels across *all* shards; a
    delete's cost is the 1-based rank of the removed label in that
    global set — rank 1 is the true minimum, exactly the simulator's
    accounting.  All events are replayed (the oracle must see every
    insert); only sampled deletes are scored, keeping the replay cheap
    at millions of ops.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    if merged.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    ev = merged[:, 1]
    lab = merged[:, 2]
    acted = (ev == EV_INSERT) | (ev == EV_DELETE)
    if acted.any():
        bad = lab[acted]
        if int(bad.min()) < 0 or int(bad.max()) >= label_universe:
            raise ValueError(
                f"label outside label universe [0, {label_universe}); "
                "size the replay to the total number of inserts"
            )
    # The rank paid by a delete at stream position t removing label L is
    #   #{inserts before t with label <= L} - #{deletes before t with label <= L}
    # (1-based: L's own insert is counted, L itself is not yet deleted).
    # That is an offline dominance count: give inserts weight +1 and
    # deletes weight -1, then each query is a weighted prefix count over
    # (position < t, label <= L).  Sqrt-decomposed over positions: a
    # cheap per-label running total answers the "all chunks before t's"
    # part via one cumsum per chunk, and the query's own chunk is small
    # enough for a dense broadcast comparison.
    w = np.where(ev == EV_INSERT, 1, np.where(ev == EV_DELETE, -1, 0)).astype(np.int64)
    del_pos = np.flatnonzero(ev == EV_DELETE)
    qpos_all = del_pos[::sample_every]
    qlab_all = lab[qpos_all]
    total = merged.shape[0]
    chunk = max(512, int(math.sqrt(32.0 * label_universe)))
    counts = np.zeros(label_universe, dtype=np.int64)
    out = np.empty(qpos_all.size, dtype=np.int64)
    qi = 0
    for start in range(0, total, chunk):
        stop = min(start + chunk, total)
        hi = int(np.searchsorted(qpos_all, stop, side="left"))
        if hi > qi:
            prefix = np.cumsum(counts)  # labels folded from chunks before `start`
            qpos = qpos_all[qi:hi]
            qlab = qlab_all[qi:hi]
            cpos = np.arange(start, stop)
            clab = lab[start:stop]
            mask = (cpos[None, :] < qpos[:, None]) & (clab[None, :] <= qlab[:, None])
            out[qi:hi] = prefix[qlab] + (mask * w[None, start:stop]).sum(axis=1)
            qi = hi
        np.add.at(counts, lab[start:stop][acted[start:stop]], w[start:stop][acted[start:stop]])
    return out


def replay_ranks_reference(
    merged: np.ndarray,
    label_universe: int,
    sample_every: int = 16,
) -> np.ndarray:
    """Event-at-a-time Fenwick replay: the executable spec of
    :func:`replay_ranks`.

    Kept as the correctness reference — the vectorized replay must match
    it byte-for-byte (asserted in the metrics tests).  Orders of
    magnitude slower on big streams; never called on the hot path.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    oracle = RankOracle(label_universe)
    ranks: List[int] = []
    deletes_seen = 0
    for row in merged:
        ev, label = int(row[1]), int(row[2])
        if ev == EV_INSERT:
            oracle.insert(label)
        elif ev == EV_DELETE:
            rank = oracle.remove(label)
            if deletes_seen % sample_every == 0:
                ranks.append(rank)
            deletes_seen += 1
    return np.asarray(ranks, dtype=np.int64)


def summarize(
    events_by_shard: Sequence[Sequence[Event]],
    schedule: ArrivalSchedule,
    wall_s: float,
    rank_sample_every: int = 16,
) -> dict:
    """The full metrics block of one service run."""
    merged = merge_events(events_by_shard)
    n_shards = len(events_by_shard)
    kind_counts = {
        kind: np.bincount(merged[merged[:, 1] == kind, 0], minlength=n_shards)
        for kind in (EV_INSERT, EV_DELETE, EV_EMPTY)
    }
    per_shard = [
        {
            "shard": shard,
            "inserts": int(kind_counts[EV_INSERT][shard]),
            "deletes": int(kind_counts[EV_DELETE][shard]),
            "empties": int(kind_counts[EV_EMPTY][shard]),
        }
        for shard in range(n_shards)
    ]
    inserts = sum(row["inserts"] for row in per_shard)
    deletes = sum(row["deletes"] for row in per_shard)
    empties = sum(row["empties"] for row in per_shard)
    total_ops = inserts + deletes + empties

    # Prefill requests carry t0 == 0: not offered traffic, no latency.
    measured = merged[merged[:, 4] > 0]
    lat = measured[:, 5] - measured[:, 4]
    is_insert = measured[:, 1] == EV_INSERT
    summary = {
        "ops_offered": schedule.ops,
        "ops_processed": total_ops - len(schedule.prefill_labels),
        "inserts": inserts,
        "deletes": deletes,
        "empties": empties,
        "span_s": schedule.span_s,
        "wall_s": wall_s,
        "throughput_ops_s": total_ops / wall_s if wall_s > 0 else 0.0,
        "per_shard_ops_s": [
            (row["inserts"] + row["deletes"] + row["empties"]) / wall_s
            if wall_s > 0
            else 0.0
            for row in per_shard
        ],
        "per_shard": per_shard,
    }
    summary.update(latency_stats(lat[is_insert], "insert"))
    summary.update(latency_stats(lat[~is_insert], "delete"))

    sampled = replay_ranks(merged, schedule.label_universe, rank_sample_every)
    summary["rank_sample_every"] = rank_sample_every
    summary["rank"] = rank_summary(sampled) if sampled.size else None
    # Raw samples ride along for distribution-level comparison (validate's
    # KS test against the simulator); droppable before archival.
    summary["rank_values"] = sampled.tolist()
    return summary


def conservation_audit(
    segment: ServiceSegment,
    events_by_shard: Sequence[Sequence[Event]],
) -> dict:
    """Prove from the journal that no op was lost or double-served.

    For every shard, replays the durable state (snapshot + surviving
    journal suffix) exactly as a recovering owner would and checks three
    independent invariants:

    - **conservation**: journal-cumulative ``inserts == deletes +
      residual heap size`` — nothing the journal committed evaporated;
    - **no double-serve**: within each lane, the request positions the
      journal consumed are strictly monotone and never dip below the
      snapshot's watermark — no request was applied twice across any
      number of crash/recover cycles;
    - **events match**: the collector saw exactly one event per
      journal-cumulative op of each kind, with no duplicated Lamport
      clocks — nothing was emitted twice (or never) across takeovers.

    ``epoch_regressions`` counts journal entries whose epoch regresses
    below an already-seen one: committed zombie writes that escaped the
    fence.  Zero is the fencing contract.
    """
    from repro.service.server import replay_journal

    shard_rows = []
    for s in range(segment.shards):
        snap = segment.snapshot(s).read()
        journal = segment.journal(s)
        journal.recover()
        events = segment.event_ring(s)
        events.recover()
        entries = journal.scan()
        state = replay_journal(snap, entries, events.head)

        # Per-lane request-position monotonicity over the surviving
        # (non-fenced, post-fold) suffix, seeded from the snapshot's
        # watermarks — the double-serve detector.
        next_expected = list(snap.watermarks)
        max_epoch = snap.epoch
        monotone = True
        for e in entries:
            if e.pos < snap.fold_pos or e.epoch < max_epoch:
                continue
            max_epoch = max(max_epoch, e.epoch)
            if e.reqpos < next_expected[e.lane]:
                monotone = False
            next_expected[e.lane] = max(next_expected[e.lane], e.reqpos + 1)

        collected = events_by_shard[s]
        seen = {
            kind: sum(1 for ev in collected if ev[0] == kind)
            for kind in (EV_INSERT, EV_DELETE, EV_EMPTY)
        }
        clocks = [ev[2] for ev in collected]
        events_match = (
            seen[EV_INSERT] == state.cum_inserts
            and seen[EV_DELETE] == state.cum_deletes
            and seen[EV_EMPTY] == state.cum_empties
            and len(set(clocks)) == len(clocks)
        )
        conserved = state.cum_inserts == state.cum_deletes + len(state.heap)
        shard_rows.append(
            {
                "shard": s,
                "cum_inserts": state.cum_inserts,
                "cum_deletes": state.cum_deletes,
                "cum_empties": state.cum_empties,
                "residual": len(state.heap),
                "journal_entries": len(entries),
                "replayed": state.replayed,
                "epoch_regressions": state.fenced_entries,
                "conserved": conserved,
                "monotone": monotone,
                "collected": seen,
                "events_match": events_match,
            }
        )
    return {
        "ok": all(row["conserved"] and row["monotone"] for row in shard_rows),
        "events_match": all(row["events_match"] for row in shard_rows),
        "epoch_regressions": sum(row["epoch_regressions"] for row in shard_rows),
        "residual_total": sum(row["residual"] for row in shard_rows),
        "shards": shard_rows,
    }


def ranks_after(
    merged: np.ndarray,
    label_universe: int,
    after_t1_ns: int,
) -> np.ndarray:
    """Rank paid by every delete *completed after* ``after_t1_ns``.

    The post-recovery convergence probe: the oracle replays the whole
    stream (ranks depend on all prior state) but only deletes whose
    completion timestamp falls after the last takeover are scored, so
    the sample measures the recovered cluster, not the outage.
    """
    oracle = RankOracle(label_universe)
    ranks: List[int] = []
    for row in merged:
        ev, label = int(row[1]), int(row[2])
        if ev == EV_INSERT:
            oracle.insert(label)
        elif ev == EV_DELETE:
            rank = oracle.remove(label)
            if int(row[5]) > after_t1_ns:
                ranks.append(rank)
    return np.asarray(ranks, dtype=np.int64)


def sampled_rank_values(
    events_by_shard: Sequence[Sequence[Event]],
    schedule: ArrivalSchedule,
    sample_every: int = 16,
) -> np.ndarray:
    """Raw sampled rank costs (for KS comparison against the simulator)."""
    return replay_ranks(merge_events(events_by_shard), schedule.label_universe, sample_every)
