"""Metrics over collected service events.

Latency honors coordinated omission: each event carries the *intended*
start time stamped by the open-loop schedule, so a stalled owner is
charged for everything that queued behind it.  Rank quality replays the
event stream against a Fenwick-tree snapshot oracle: events are merged
across shards by their Lamport clocks (ties broken by shard id, a fixed
linearization), and every sampled delete is scored by the global rank
of the removed label among all labels present at that point — the same
1-based rank-cost convention as the simulator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import rank_summary
from repro.core.rank import RankOracle
from repro.service.loadgen import ArrivalSchedule
from repro.service.shm import EV_DELETE, EV_EMPTY, EV_INSERT

_NS_PER_MS = 1_000_000.0

#: Wall-clock-derived fields of a service summary.  Declared for
#: ``repro check`` (DET102): anything ending up under these keys is
#: measurement, not result, and is exempt from determinism comparison.
SERVICE_VOLATILE_KEYS = frozenset(
    {
        "wall_s",
        "throughput_ops_s",
        "per_shard_ops_s",
        "speedup",
        "insert_mean_ms",
        "insert_p50_ms",
        "insert_p99_ms",
        "insert_p999_ms",
        "delete_mean_ms",
        "delete_p50_ms",
        "delete_p99_ms",
        "delete_p999_ms",
    }
)

Event = Tuple[int, int, int, int, int]  # (ev, label, clock, t0_ns, t1_ns)


def latency_stats(latencies_ns: np.ndarray, prefix: str) -> dict:
    """Tail statistics of one op kind, in milliseconds."""
    if latencies_ns.size == 0:
        return {
            f"{prefix}_mean_ms": None,
            f"{prefix}_p50_ms": None,
            f"{prefix}_p99_ms": None,
            f"{prefix}_p999_ms": None,
        }
    ms = latencies_ns / _NS_PER_MS
    return {
        f"{prefix}_mean_ms": float(ms.mean()),
        f"{prefix}_p50_ms": float(np.quantile(ms, 0.50)),
        f"{prefix}_p99_ms": float(np.quantile(ms, 0.99)),
        f"{prefix}_p999_ms": float(np.quantile(ms, 0.999)),
    }


def merge_events(events_by_shard: Sequence[Sequence[Event]]) -> np.ndarray:
    """All shards' events as one ``(N, 6)`` array in linearized order.

    Columns: shard, ev, label, clock, t0_ns, t1_ns.  Order is
    ``(clock, shard)`` — Lamport clocks give a causally consistent
    order, and within a shard the owner's clock is strictly increasing,
    so a label's insert always precedes its delete.
    """
    rows = []
    for shard, events in enumerate(events_by_shard):
        for ev, label, clock, t0, t1 in events:
            rows.append((shard, ev, label, clock, t0, t1))
    if not rows:
        return np.empty((0, 6), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    order = np.lexsort((arr[:, 0], arr[:, 3]))
    return arr[order]


def replay_ranks(
    merged: np.ndarray,
    label_universe: int,
    sample_every: int = 16,
) -> np.ndarray:
    """Global rank paid by every ``sample_every``-th delete.

    The oracle tracks the set of present labels across *all* shards; a
    delete's cost is the 1-based rank of the removed label in that
    global set — rank 1 is the true minimum, exactly the simulator's
    accounting.  All events are replayed (the oracle must see every
    insert); only sampled deletes are scored, keeping the replay cheap
    at millions of ops.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    oracle = RankOracle(label_universe)
    ranks: List[int] = []
    deletes_seen = 0
    for row in merged:
        ev, label = int(row[1]), int(row[2])
        if ev == EV_INSERT:
            oracle.insert(label)
        elif ev == EV_DELETE:
            rank = oracle.remove(label)
            if deletes_seen % sample_every == 0:
                ranks.append(rank)
            deletes_seen += 1
    return np.asarray(ranks, dtype=np.int64)


def summarize(
    events_by_shard: Sequence[Sequence[Event]],
    schedule: ArrivalSchedule,
    wall_s: float,
    rank_sample_every: int = 16,
) -> dict:
    """The full metrics block of one service run."""
    merged = merge_events(events_by_shard)
    per_shard = []
    for shard, events in enumerate(events_by_shard):
        kinds = [ev for ev, *_ in events]
        per_shard.append(
            {
                "shard": shard,
                "inserts": kinds.count(EV_INSERT),
                "deletes": kinds.count(EV_DELETE),
                "empties": kinds.count(EV_EMPTY),
            }
        )
    inserts = sum(row["inserts"] for row in per_shard)
    deletes = sum(row["deletes"] for row in per_shard)
    empties = sum(row["empties"] for row in per_shard)
    total_ops = inserts + deletes + empties

    # Prefill requests carry t0 == 0: not offered traffic, no latency.
    measured = merged[merged[:, 4] > 0]
    lat = measured[:, 5] - measured[:, 4]
    is_insert = measured[:, 1] == EV_INSERT
    summary = {
        "ops_offered": schedule.ops,
        "ops_processed": total_ops - len(schedule.prefill_labels),
        "inserts": inserts,
        "deletes": deletes,
        "empties": empties,
        "span_s": schedule.span_s,
        "wall_s": wall_s,
        "throughput_ops_s": total_ops / wall_s if wall_s > 0 else 0.0,
        "per_shard_ops_s": [
            (row["inserts"] + row["deletes"] + row["empties"]) / wall_s
            if wall_s > 0
            else 0.0
            for row in per_shard
        ],
        "per_shard": per_shard,
    }
    summary.update(latency_stats(lat[is_insert], "insert"))
    summary.update(latency_stats(lat[~is_insert], "delete"))

    sampled = replay_ranks(merged, schedule.label_universe, rank_sample_every)
    summary["rank_sample_every"] = rank_sample_every
    summary["rank"] = rank_summary(sampled) if sampled.size else None
    # Raw samples ride along for distribution-level comparison (validate's
    # KS test against the simulator); droppable before archival.
    summary["rank_values"] = sampled.tolist()
    return summary


def sampled_rank_values(
    events_by_shard: Sequence[Sequence[Event]],
    schedule: ArrivalSchedule,
    sample_every: int = 16,
) -> np.ndarray:
    """Raw sampled rank costs (for KS comparison against the simulator)."""
    return replay_ranks(merge_events(events_by_shard), schedule.label_universe, sample_every)
