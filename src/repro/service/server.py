"""Shard owners, d-choice routing, and whole-service orchestration.

The service is a sharded (1+beta) MultiQueue made of real processes:
each *shard owner* process owns one binary heap and drains its request
lanes; clients route each request with the same policy family as the
paper's process — inserts via a (possibly gamma-biased) distribution
over shards, deletes via a beta-mixed one/two-choice on the seqlock-
published shard tops.  :func:`run_service` wires the whole thing up:
segment, owners, prefill, loadgen workers, event collection, teardown,
and the post-mortem ring audit that proves no crash tore shared state.
"""

from __future__ import annotations

import bisect
import heapq
import multiprocessing
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies import biased_insert_probs
from repro.service.loadgen import ArrivalSchedule, ScheduleSpec, loadgen_main
from repro.service.shm import (
    EV_BYE,
    EV_DELETE,
    EV_EMPTY,
    EV_INSERT,
    J_STOP,
    JournalEntry,
    FencedOwnerError,
    OP_DELETE,
    OP_INSERT,
    OP_STOP,
    ServiceSegment,
    TOP_EMPTY,
    TornSlotError,
)
from repro.utils.rngtools import SeedLike, as_generator, spawn_seeds

_NS = 1_000_000_000

#: Requests drained per lane per sweep before the owner republishes its
#: header — bounds how stale the published top can get under load.
OWNER_BATCH = 64

#: Exit code of an owner that discovered it was fenced (a zombie): its
#: successor already took over, so dying is the correct behaviour.
EXIT_FENCED = 3

#: Routing policies, mirroring the process variants in ``repro.core``:
#: ``mq`` is the paper's (1+beta) MultiQueue, ``single`` funnels
#: everything to one shard (the sequential-heap baseline), ``rr`` is
#: deterministic round-robin (the d=1-without-randomness strawman).
POLICIES = ("mq", "single", "rr")


class AllShardsDeadError(RuntimeError):
    """Every shard looked dead to a router: nowhere left to route.

    ``ages`` maps shard -> seconds since its last heartbeat, or ``None``
    for a shard that never published one — enough for an operator to
    tell "the cluster never came up" from "the cluster just died".
    Subclasses :class:`RuntimeError` so pre-existing handlers keep
    working.
    """

    def __init__(self, ages: Dict[int, Optional[float]]) -> None:
        self.ages = dict(ages)
        detail = ", ".join(
            f"shard {s}: "
            + ("never published" if age is None else f"heartbeat {age:.3f}s stale")
            for s, age in sorted(self.ages.items())
        )
        super().__init__(f"every shard is dead; nowhere to route ({detail})")


class Router:
    """Client-side shard choice for inserts and deletes.

    Deletes under ``mq`` flip a beta-coin: tails probes one shard top,
    heads probes two (with replacement, matching the paper's ``p_i``
    law) and takes the smaller.  Tops come from the shard headers'
    seqlock snapshots — advisory, never locked.  Shards marked dead are
    excluded from every subsequent draw.
    """

    def __init__(
        self,
        segment: ServiceSegment,
        beta: float,
        gamma: float = 0.0,
        policy: str = "mq",
        rng: SeedLike = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}: expected one of {POLICIES}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self._segment = segment
        self.n = segment.shards
        self.beta = float(beta)
        self.policy = policy
        self._rng = as_generator(rng)
        self._alive: List[int] = list(range(self.n))
        self._insert_probs = biased_insert_probs(self.n, gamma) if gamma else None
        self._rr = 0

    def alive_shards(self) -> Tuple[int, ...]:
        return tuple(self._alive)

    def dead_shards(self) -> Tuple[int, ...]:
        alive = set(self._alive)
        return tuple(s for s in range(self.n) if s not in alive)

    def heartbeat_ages(self, now_ns: Optional[int] = None) -> Dict[int, Optional[float]]:
        """Seconds since each shard's last heartbeat (None: never published)."""
        now = time.monotonic_ns() if now_ns is None else now_ns
        ages: Dict[int, Optional[float]] = {}
        for s in range(self.n):
            heartbeat_ns = self._segment.header(s).read()[3]
            ages[s] = None if heartbeat_ns == 0 else (now - heartbeat_ns) / _NS
        return ages

    def mark_dead(self, shard: int) -> None:
        if shard in self._alive:
            self._alive.remove(shard)
        if not self._alive:
            raise AllShardsDeadError(self.heartbeat_ages())

    def mark_alive(self, shard: int) -> None:
        """Re-admit a recovered shard so traffic stops herding onto survivors."""
        if not 0 <= shard < self.n:
            raise IndexError(f"shard {shard} outside [0, {self.n})")
        if shard not in self._alive:
            bisect.insort(self._alive, shard)

    def _uniform_alive(self) -> int:
        return self._alive[int(self._rng.integers(len(self._alive)))]

    def insert_shard(self) -> int:
        if self.policy == "single":
            return self._alive[0]
        if self.policy == "rr":
            shard = self._alive[self._rr % len(self._alive)]
            self._rr += 1
            return shard
        if self._insert_probs is None:
            return self._uniform_alive()
        probs = self._insert_probs[self._alive]
        probs = probs / probs.sum()
        return self._alive[int(self._rng.choice(len(self._alive), p=probs))]

    def delete_shard(self) -> int:
        if self.policy == "single":
            return self._alive[0]
        if self.policy == "rr":
            shard = self._alive[self._rr % len(self._alive)]
            self._rr += 1
            return shard
        i = self._uniform_alive()
        two = self.beta >= 1.0 or (self.beta > 0.0 and self._rng.random() < self.beta)
        if not two:
            return i
        j = self._uniform_alive()
        if i == j:
            return i
        top_i = self._segment.header(i).read()[1]
        top_j = self._segment.header(j).read()[1]
        return i if top_i <= top_j else j


# -- the shard-owner process --------------------------------------------------


@dataclass
class RecoveredState:
    """Everything a (re)starting owner rebuilds from snapshot + journal."""

    heap: List[int]
    clock: int
    stopped: List[bool]
    watermarks: List[int]  # per lane: lowest request position not yet applied
    cum_inserts: int
    cum_deletes: int
    cum_empties: int
    fenced_entries: int  # journal entries skipped for a regressed epoch
    replayed: int  # journal entries applied on top of the snapshot
    reemit: List[Tuple[int, int, int, int]]  # (ev, label, clock, t0_ns): journaled, never published


def replay_journal(
    snap, entries: Sequence[JournalEntry], ev_head: int
) -> RecoveredState:
    """Fold journal ``entries`` past the snapshot's fold point into state.

    Pure function of shm content so the conservation auditor can run the
    identical replay out-of-process.  Entries whose epoch regresses below
    an already-seen epoch are zombie commits and are skipped (they could
    only exist if fencing failed; the auditor counts them).  ``ev_head``
    is the recovered event-ring head: journaled events at or past it were
    never published and must be re-emitted by the successor.
    """
    heap = [int(x) for x in snap.labels]
    heapq.heapify(heap)
    watermarks = list(snap.watermarks)
    stopped = [bool(snap.stopped_mask >> lane & 1) for lane in range(len(watermarks))]
    clock = snap.clock
    cum_inserts, cum_deletes, cum_empties = (
        snap.cum_inserts, snap.cum_deletes, snap.cum_empties,
    )
    max_epoch = snap.epoch
    fenced = replayed = 0
    reemit: List[Tuple[int, int, int, int]] = []
    for e in entries:
        if e.pos < snap.fold_pos:
            continue  # already folded into the snapshot labels
        if e.epoch < max_epoch:
            fenced += 1
            continue
        max_epoch = max(max_epoch, e.epoch)
        replayed += 1
        clock = max(clock, e.clock)
        watermarks[e.lane] = max(watermarks[e.lane], e.reqpos + 1)
        if e.op == EV_INSERT:
            heapq.heappush(heap, e.label)
            cum_inserts += 1
        elif e.op == EV_DELETE:
            if not heap or heap[0] != e.label:
                raise TornSlotError(
                    f"journal replay diverged: entry {e.pos} deletes {e.label}, "
                    f"heap top is {heap[0] if heap else 'empty'}"
                )
            heapq.heappop(heap)
            cum_deletes += 1
        elif e.op == EV_EMPTY:
            cum_empties += 1
        elif e.op == J_STOP:
            stopped[e.lane] = True
        if e.op != J_STOP and e.evpos >= ev_head:
            reemit.append((e.op, e.label, e.clock, e.t0_ns))
    return RecoveredState(
        heap=heap, clock=clock, stopped=stopped, watermarks=watermarks,
        cum_inserts=cum_inserts, cum_deletes=cum_deletes, cum_empties=cum_empties,
        fenced_entries=fenced, replayed=replayed, reemit=reemit,
    )


def recover_shard_state(segment: ServiceSegment, shard: int) -> RecoveredState:
    """Reconstruct a shard's full owner state from its snapshot + journal."""
    snap = segment.snapshot(shard).read()
    journal = segment.journal(shard)
    journal.recover()
    events = segment.event_ring(shard)
    events.recover()
    return replay_journal(snap, journal.scan(), events.head)


def run_shard_owner(
    segment_name: str, shard: int, poll_s: float = 0.0002, snapshot_every: int = 1024
) -> int:
    """Own one shard: drain request lanes into a heap, emit events.

    Every applied request is journaled (commit = the op's linearization
    point) *before* the heap mutation, the request slot recycle, and the
    event publish, and the heap is snapshotted every ``snapshot_every``
    ops — so a successor can rebuild this owner's exact state after a
    SIGKILL at any instruction.  A virgin start is just recovery of the
    empty snapshot.  The owner re-checks the header epoch at every
    commit point; observing a newer epoch means a successor already took
    over, and the owner dies with :class:`FencedOwnerError` without
    committing anything further.

    Exits when every lane has sent ``OP_STOP``.  Publishes the header
    (top, size, heartbeat) after every sweep so routers and liveness
    probes see fresh state.  Returns the residual heap size.
    """
    segment = ServiceSegment.attach(segment_name)
    try:
        header = segment.header(shard)
        epoch = header.bump_epoch()
        state = recover_shard_state(segment, shard)
        lanes = [segment.request_ring(shard, lane) for lane in range(segment.lanes)]
        for lane_id, ring in enumerate(lanes):
            ring.recover()
            # Recycle slots a predecessor applied (journaled) but died
            # before recycling — including on lanes already stopped,
            # which the drain loop below never visits again.
            while ring.tail < state.watermarks[lane_id] and ring.try_peek() is not None:
                ring.advance()
        events = segment.event_ring(shard)
        events.recover()
        journal = segment.journal(shard)
        journal.recover()
        snapshot = segment.snapshot(shard)

        heap = state.heap
        stopped = state.stopped
        watermarks = state.watermarks
        clock = state.clock
        cum_inserts = state.cum_inserts
        cum_deletes = state.cum_deletes
        cum_empties = state.cum_empties
        since_snapshot = 0

        def fenced() -> bool:
            return header.epoch() != epoch

        def check_fence() -> None:
            if fenced():
                raise FencedOwnerError(
                    f"shard {shard} owner epoch {epoch} superseded by "
                    f"epoch {header.epoch()}"
                )

        def publish() -> None:
            header.publish(
                top=heap[0] if heap else TOP_EMPTY,
                size=len(heap),
                heartbeat_ns=time.monotonic_ns(),
            )

        def emit(ev: int, label: int, ev_clock: int, t0_ns: int, t1_ns: int) -> None:
            # The event ring has a single consumer (the collector); if it
            # falls behind, wait — but keep the heartbeat fresh so the
            # backpressure is not mistaken for death.  A fenced zombie
            # must not keep refreshing a header it no longer owns.
            while not events.try_push(ev, label, ev_clock, t0_ns, t1_ns):
                check_fence()
                publish()
                time.sleep(poll_s)

        def take_snapshot() -> None:
            check_fence()
            snapshot.write(
                epoch=epoch, clock=clock, fold_pos=journal.head,
                ev_head=events.head, cum_inserts=cum_inserts,
                cum_deletes=cum_deletes, cum_empties=cum_empties,
                stopped_mask=sum(1 << i for i, s in enumerate(stopped) if s),
                watermarks=watermarks, labels=heap,
            )
            journal.truncate_to(journal.head)

        def journal_op(
            ev: int, label: int, op_clock: int, t0_ns: int,
            lane_id: int, reqpos: int, evpos: int,
        ) -> None:
            while not journal.try_append(
                ev, label, op_clock, t0_ns, lane_id, reqpos, evpos, epoch,
                fence=fenced,
            ):
                take_snapshot()  # folds the journal, freeing every slot

        # A successor first re-publishes ownership, then re-emits the
        # journaled events its predecessor applied but never published —
        # they land at exactly the event positions the journal recorded.
        publish()
        for ev, label, ev_clock, t0_ns in state.reemit:
            emit(ev, label, ev_clock, t0_ns, time.monotonic_ns())
        take_snapshot()  # fold the replayed suffix: recovery is idempotent

        while not all(stopped):
            check_fence()
            processed = 0
            for lane_id in range(segment.lanes):
                if stopped[lane_id]:
                    continue
                ring = lanes[lane_id]
                for _ in range(OWNER_BATCH):
                    reqpos = ring.tail
                    req = ring.try_peek()
                    if req is None:
                        break
                    if reqpos < watermarks[lane_id]:
                        # A predecessor journaled this request but died
                        # before recycling the slot: already applied.
                        ring.advance()
                        continue
                    op, label, req_clock, t0_ns, _ = req
                    clock = max(clock, req_clock) + 1
                    processed += 1
                    since_snapshot += 1
                    if op == OP_INSERT:
                        journal_op(
                            EV_INSERT, label, clock, t0_ns, lane_id, reqpos,
                            events.head,
                        )
                        heapq.heappush(heap, label)
                        cum_inserts += 1
                        watermarks[lane_id] = reqpos + 1
                        ring.advance()
                        publish()  # per-op: stale tops make two-choice herd
                        emit(EV_INSERT, label, clock, t0_ns, time.monotonic_ns())
                    elif op == OP_DELETE:
                        if heap:
                            popped = heap[0]
                            journal_op(
                                EV_DELETE, popped, clock, t0_ns, lane_id, reqpos,
                                events.head,
                            )
                            heapq.heappop(heap)
                            cum_deletes += 1
                            watermarks[lane_id] = reqpos + 1
                            ring.advance()
                            publish()
                            emit(EV_DELETE, popped, clock, t0_ns, time.monotonic_ns())
                        else:
                            journal_op(
                                EV_EMPTY, -1, clock, t0_ns, lane_id, reqpos,
                                events.head,
                            )
                            cum_empties += 1
                            watermarks[lane_id] = reqpos + 1
                            ring.advance()
                            emit(EV_EMPTY, -1, clock, t0_ns, time.monotonic_ns())
                    elif op == OP_STOP:
                        journal_op(J_STOP, 0, clock, t0_ns, lane_id, reqpos, -1)
                        stopped[lane_id] = True
                        watermarks[lane_id] = reqpos + 1
                        ring.advance()
                        break
                    if since_snapshot >= snapshot_every:
                        take_snapshot()
                        since_snapshot = 0
            publish()
            if processed == 0:
                time.sleep(poll_s)
        take_snapshot()  # durable goodbye: journal folded, heap preserved
        emit(EV_BYE, len(heap), clock + 1, 0, time.monotonic_ns())
        publish()
        return len(heap)
    finally:
        segment.close()


def shard_owner_main(
    segment_name: str, shard: int, poll_s: float, snapshot_every: int = 1024
) -> None:
    """``multiprocessing.Process`` target wrapper."""
    try:
        run_shard_owner(segment_name, shard, poll_s, snapshot_every)
    except FencedOwnerError:
        sys.exit(EXIT_FENCED)


def _mp_context():
    """Fork where available (fast, COW schedule rebuild), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class ServiceCluster:
    """Lifecycle of the shard-owner processes over one segment.

    ``processes[shard]`` is always the *current* generation; respawned
    predecessors (dead or fenced zombies) move to ``retired`` so their
    exit codes stay observable.
    """

    segment: ServiceSegment
    poll_s: float = 0.0002
    snapshot_every: int = 1024
    processes: List[multiprocessing.Process] = field(default_factory=list)
    retired: List[Tuple[int, multiprocessing.Process]] = field(default_factory=list)

    def _spawn(self, shard: int, generation: int) -> multiprocessing.Process:
        ctx = _mp_context()
        proc = ctx.Process(
            target=shard_owner_main,
            args=(self.segment.name, shard, self.poll_s, self.snapshot_every),
            name=f"shard-owner-{shard}.g{generation}",
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> None:
        for shard in range(self.segment.shards):
            self.processes.append(self._spawn(shard, generation=0))

    def kill(self, shard: int) -> None:
        """SIGKILL one owner — the crash-safety test's hammer."""
        proc = self.processes[shard]
        proc.kill()
        proc.join()

    def respawn(self, shard: int) -> multiprocessing.Process:
        """Retire the current owner generation and start the next one.

        The caller (the supervisor) is responsible for having killed or
        fenced the predecessor first; a fenced zombie is retired while
        still running and joined at :meth:`join` time, after it has
        noticed the fence and exited.
        """
        old = self.processes[shard]
        self.retired.append((shard, old))
        generation = sum(1 for s, _ in self.retired if s == shard)
        proc = self._spawn(shard, generation)
        self.processes[shard] = proc
        return proc

    def alive(self) -> List[bool]:
        return [p.is_alive() for p in self.processes]

    def retired_exitcodes(self) -> List[dict]:
        return [
            {"shard": shard, "exitcode": proc.exitcode}
            for shard, proc in self.retired
        ]

    def join(self, timeout_s: float = 30.0) -> List[Optional[int]]:
        deadline = time.monotonic() + timeout_s
        for proc in list(self.processes) + [p for _, p in self.retired]:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # wedged: don't hang the parent
                proc.kill()
                proc.join()
        return [p.exitcode for p in self.processes]


# -- event collection ---------------------------------------------------------


class EventCollector(threading.Thread):
    """Single consumer of every shard's event ring.

    Runs in the parent while the service is live so bounded event rings
    never become the bottleneck.  A shard is finished when it sends
    ``EV_BYE`` (clean) or its owner died with nothing left to drain —
    unless a supervisor is active, in which case a dead owner is about
    to be respawned and the shard stays live until its eventual BYE.
    """

    def __init__(
        self,
        segment: ServiceSegment,
        cluster: ServiceCluster,
        supervisor=None,
    ) -> None:
        super().__init__(name="service-collector", daemon=True)
        self._segment = segment
        self._cluster = cluster
        self._supervisor = supervisor
        self.events_by_shard: List[List[Tuple[int, int, int, int, int]]] = [
            [] for _ in range(segment.shards)
        ]
        self.residual_sizes: List[Optional[int]] = [None] * segment.shards

    def attach_supervisor(self, supervisor) -> None:
        self._supervisor = supervisor

    def _supervised(self) -> bool:
        return self._supervisor is not None and self._supervisor.active

    def run(self) -> None:
        rings = [self._segment.event_ring(s) for s in range(self._segment.shards)]
        live = [True] * self._segment.shards
        while any(live):
            progressed = False
            owners_alive = self._cluster.alive()
            for s in range(self._segment.shards):
                if not live[s]:
                    continue
                drained_any = False
                for _ in range(4 * OWNER_BATCH):
                    ev = rings[s].try_pop()
                    if ev is None:
                        break
                    drained_any = True
                    if ev[0] == EV_BYE:
                        self.residual_sizes[s] = ev[1]
                        live[s] = False
                        break
                    self.events_by_shard[s].append(ev)
                progressed = progressed or drained_any
                if (
                    live[s]
                    and not drained_any
                    and not owners_alive[s]
                    and not self._supervised()
                ):
                    live[s] = False  # killed owner, ring fully drained, no respawn coming
            if not progressed:
                time.sleep(0.0005)


# -- whole-service runs -------------------------------------------------------


def _prefill(
    segment: ServiceSegment,
    schedule: ArrivalSchedule,
    router: Router,
    timeout_s: float,
) -> None:
    """Load the initial population through the parent's control lane."""
    lane = segment.lanes - 1
    rings = [segment.request_ring(s, lane) for s in range(segment.shards)]
    clock = 0
    for label in schedule.prefill_labels:
        shard = router.insert_shard()
        clock += 1
        deadline = time.monotonic() + timeout_s
        while not rings[shard].try_push(OP_INSERT, int(label), clock, 0, 0):
            if time.monotonic() > deadline:
                raise RuntimeError(f"prefill stalled: shard {shard} not draining")
            time.sleep(0.0002)
    deadline = time.monotonic() + timeout_s
    want = len(schedule.prefill_labels)
    while True:
        total = sum(segment.header(s).read()[2] for s in range(segment.shards))
        if total >= want:
            return
        if time.monotonic() > deadline:
            raise RuntimeError(f"prefill incomplete: {total}/{want} after {timeout_s:.0f}s")
        time.sleep(0.001)


def _stop_owners(
    segment: ServiceSegment,
    timeout_s: float = 10.0,
    dead_after_s: Optional[float] = None,
) -> None:
    """Send the control lane's STOP to every shard.

    ``timeout_s`` caps the *cluster-wide* wait (not per shard: N dead
    owners must not cost N timeouts), and shards whose heartbeat is
    already ``dead_after_s`` stale are skipped outright — a full ring on
    a dead owner would otherwise burn the whole budget for nothing.
    """
    lane = segment.lanes - 1
    deadline = time.monotonic() + timeout_s
    for s in range(segment.shards):
        if dead_after_s is not None:
            heartbeat_ns = segment.header(s).read()[3]
            age_s = (time.monotonic_ns() - heartbeat_ns) / _NS
            if heartbeat_ns == 0 or age_s > dead_after_s:
                continue  # dead (or never-born) owner: nobody to stop
        ring = segment.request_ring(s, lane)
        ring.recover()  # prefill advanced this lane's position
        while not ring.try_push(OP_STOP, 0, 0, 0, 0):
            if time.monotonic() > deadline:
                break  # owner dead and ring full: nobody left to stop
            time.sleep(0.0002)


def _finish_stops(segment: ServiceSegment, timeout_s: float = 10.0) -> None:
    """Deliver the STOPs the loadgens gave up on (supervised shutdown).

    A loadgen skips a shard that is dead at broadcast time, but a
    supervised cluster respawns it — and a successor that never sees its
    STOPs runs forever.  By the time this sweep runs the loadgens have
    exited, so each lane ring has a single producer again: the parent
    recovers the producer position and pushes the missing STOP.  Whether
    a STOP was already delivered is read from the lane's final slot
    (:meth:`SlotRing.last_op`): a loadgen never pushes past its STOP, so
    the last payload ever written tells the whole story even after the
    slot was consumed and recycled.
    """
    deadline = time.monotonic() + timeout_s
    for s in range(segment.shards):
        for lane in range(segment.lanes - 1):  # control lane: _stop_owners
            ring = segment.request_ring(s, lane)
            ring.recover()
            if ring.last_op() == OP_STOP:
                continue
            while not ring.try_push(OP_STOP, 0, 0, 0, 0):
                if time.monotonic() > deadline:
                    break
                time.sleep(0.0002)


def run_service(
    shards: int,
    workers: int,
    spec: ScheduleSpec,
    beta: float = 0.5,
    gamma: float = 0.0,
    policy: str = "mq",
    seed: int = 0,
    req_capacity: int = 2048,
    ev_capacity: int = 8192,
    journal_capacity: int = 8192,
    state_capacity: Optional[int] = None,
    snapshot_every: int = 1024,
    rank_sample_every: int = 16,
    dead_after_s: float = 2.0,
    chaos: Optional[Tuple[int, float]] = None,
    chaos_spec=None,
    supervise: bool = False,
    poll_s: float = 0.0002,
) -> dict:
    """Run one complete service experiment and summarize it.

    Starts ``shards`` owner processes and ``workers`` loadgen processes,
    prefills, replays the schedule, tears down, audits every ring, and
    returns the metrics summary (throughput, tail latency, sampled rank
    quality) plus the audit.  ``chaos=(shard, delay_s)`` SIGKILLs one
    owner ``delay_s`` after traffic starts — the degraded-mode path with
    no recovery.  ``supervise=True`` runs a :class:`Supervisor` that
    respawns crashed owners via snapshot+journal recovery and fences
    zombies; ``chaos_spec`` (a :class:`repro.service.supervisor.ChaosSpec`)
    unleashes a deterministic seeded kill/stall/zombie schedule against
    the live cluster, and the result then carries the full conservation
    audit and recovery incident log.
    """
    from repro.service.metrics import conservation_audit, summarize

    schedule = spec.build()
    if state_capacity is None:
        # The heap can never outgrow prefill + every scheduled insert.
        state_capacity = spec.prefill + (spec.ops + 1) // 2 + 8
    segment = ServiceSegment.create(
        shards, lanes=workers + 1, req_capacity=req_capacity,
        ev_capacity=ev_capacity, journal_capacity=journal_capacity,
        state_capacity=state_capacity,
    )
    cluster = ServiceCluster(segment, poll_s=poll_s, snapshot_every=snapshot_every)
    killer: Optional[threading.Timer] = None
    supervisor = None
    injector = None
    try:
        cluster.start()
        collector = EventCollector(segment, cluster)
        collector.start()
        if supervise or chaos_spec is not None:
            from repro.service.supervisor import ChaosInjector, Supervisor

            zombies = bool(chaos_spec is not None and chaos_spec.zombies)
            supervisor = Supervisor(
                segment,
                cluster,
                dead_after_s=dead_after_s,
                stall_action="fence" if zombies else "kill",
                # Successor boot (journal replay) is quick relative to the
                # death threshold; a long grace just stretches the window
                # in which a SIGSTOPped successor goes undiagnosed.
                respawn_grace_s=max(2.0, 8.0 * dead_after_s),
            )
            collector.attach_supervisor(supervisor)
            supervisor.start()
        control_router = Router(
            segment, beta=beta, gamma=gamma, policy=policy, rng=seed
        )
        _prefill(segment, schedule, control_router, timeout_s=30.0)

        ctx = _mp_context()
        start_ns = time.monotonic_ns() + int(0.05 * _NS)
        loadgens = []
        for w in range(workers):
            proc = ctx.Process(
                target=loadgen_main,
                name=f"loadgen-{w}",
                args=(
                    dict(
                        segment_name=segment.name,
                        worker_id=w,
                        n_workers=workers,
                        spec=spec,
                        start_ns=start_ns,
                        beta=beta,
                        gamma=gamma,
                        policy=policy,
                        routing_seed=seed + 1,
                        dead_after_s=dead_after_s,
                    ),
                ),
                daemon=True,
            )
            proc.start()
            loadgens.append(proc)
        if chaos is not None:
            kill_shard, delay_s = chaos
            wait_s = max(0.0, (start_ns - time.monotonic_ns()) / _NS + delay_s)
            killer = threading.Timer(wait_s, cluster.kill, args=(kill_shard,))
            killer.start()
        if chaos_spec is not None:
            from repro.service.supervisor import ChaosInjector

            injector = ChaosInjector(cluster, segment, chaos_spec, start_ns=start_ns)
            injector.start()

        wall_start = time.monotonic_ns()
        for proc in loadgens:
            proc.join(timeout=120.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
        if killer is not None:
            killer.join()
        if injector is not None:
            injector.join(timeout=60.0)
        if supervisor is not None:
            # Let in-flight recoveries land, then stand down *before*
            # STOPs go out so nobody respawns a cleanly-exited owner.
            supervisor.await_healthy(timeout_s=30.0)
            supervisor.stop()
            supervisor.join(timeout=30.0)
            _finish_stops(segment)
        _stop_owners(segment, dead_after_s=dead_after_s if supervisor is None else None)
        owner_exits = cluster.join(timeout_s=30.0)
        collector.join(timeout=30.0)
        wall_s = (time.monotonic_ns() - wall_start) / _NS

        audit = segment.audit()
        conservation = conservation_audit(segment, collector.events_by_shard)
        result = summarize(
            collector.events_by_shard,
            schedule,
            wall_s=wall_s,
            rank_sample_every=rank_sample_every,
        )
        result.update(
            {
                "shards": shards,
                "workers": workers,
                "beta": beta,
                "gamma": gamma,
                "policy": policy,
                "seed": seed,
                "mode": spec.mode,
                "audit": audit,
                "conservation": conservation,
                "owner_exitcodes": owner_exits,
                "loadgen_exitcodes": [p.exitcode for p in loadgens],
                "residual_sizes": collector.residual_sizes,
                "killed_shard": chaos[0] if chaos else None,
            }
        )
        if supervisor is not None:
            result["supervision"] = {
                "incidents": [inc.as_dict() for inc in supervisor.incidents],
                "takeovers": supervisor.takeovers,
                "retired_exitcodes": cluster.retired_exitcodes(),
            }
            last_recovered = max(
                (
                    inc.recovered_ns
                    for inc in supervisor.incidents
                    if inc.recovered_ns is not None
                ),
                default=None,
            )
            if last_recovered is not None:
                # Post-recovery convergence: score only deletes completed
                # after the last takeover against the exact stationary law.
                from repro.analysis.exact import oracle_row
                from repro.service.metrics import merge_events, ranks_after

                merged = merge_events(collector.events_by_shard)
                recovered_ranks = ranks_after(
                    merged, schedule.label_universe, last_recovered
                )
                block = {"after_ns": last_recovered, "n_ranks": int(recovered_ranks.size)}
                if recovered_ranks.size:
                    block.update(oracle_row(shards, beta, recovered_ranks, gamma=gamma))
                else:
                    block.update(
                        {"oracle_mean": None, "oracle_ks": None, "oracle_mean_err": None}
                    )
                result["post_recovery"] = block
        if injector is not None:
            # staticcheck: allow(DET102) fault manifest; spec/planned are seed-determined, wall-clock taint lands only in the declared-volatile fired_at_s/pid fields
            result["chaos"] = injector.manifest()
        return result
    finally:
        if killer is not None:
            killer.cancel()
        if injector is not None and injector.is_alive():
            injector.abort()
            injector.join(timeout=10.0)
        if supervisor is not None and supervisor.is_alive():
            supervisor.stop()
            supervisor.join(timeout=10.0)
        for proc in cluster.processes + [p for _, p in cluster.retired]:
            if proc.is_alive():
                proc.kill()
        segment.close()
        segment.unlink()


def run_scaling_sweep(
    shard_counts: Sequence[int],
    workers: int,
    spec: ScheduleSpec,
    beta: float = 0.5,
    gamma: float = 0.0,
    policy: str = "mq",
    seed: int = 0,
) -> dict:
    """Throughput scaling across shard-owner counts, same offered load.

    The headline service claim: with real processes on real cores,
    adding shard owners scales delete-min throughput — the axis the
    simulator can model but never demonstrate.
    """
    rows = []
    for shards in shard_counts:
        res = run_service(
            shards, workers, spec, beta=beta, gamma=gamma, policy=policy, seed=seed
        )
        rows.append(
            {
                "shards": shards,
                "workers": workers,
                "throughput_ops_s": res["throughput_ops_s"],
                "delete_p99_ms": res["delete_p99_ms"],
                "rank": res["rank"],
                "torn": res["audit"]["torn"],
            }
        )
    base = rows[0]["throughput_ops_s"]
    for row in rows:
        row["speedup"] = row["throughput_ops_s"] / base if base else float("nan")
    return {
        "beta": beta,
        "gamma": gamma,
        "policy": policy,
        "mode": spec.mode,
        "ops": spec.ops,
        "prefill": spec.prefill,
        "rows": rows,
    }
