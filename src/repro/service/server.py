"""Shard owners, d-choice routing, and whole-service orchestration.

The service is a sharded (1+beta) MultiQueue made of real processes:
each *shard owner* process owns one binary heap and drains its request
lanes; clients route each request with the same policy family as the
paper's process — inserts via a (possibly gamma-biased) distribution
over shards, deletes via a beta-mixed one/two-choice on the seqlock-
published shard tops.  :func:`run_service` wires the whole thing up:
segment, owners, prefill, loadgen workers, event collection, teardown,
and the post-mortem ring audit that proves no crash tore shared state.
"""

from __future__ import annotations

import heapq
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies import biased_insert_probs
from repro.service.loadgen import ArrivalSchedule, ScheduleSpec, loadgen_main
from repro.service.shm import (
    EV_BYE,
    EV_DELETE,
    EV_EMPTY,
    EV_INSERT,
    OP_DELETE,
    OP_INSERT,
    OP_STOP,
    ServiceSegment,
    TOP_EMPTY,
)
from repro.utils.rngtools import SeedLike, as_generator, spawn_seeds

_NS = 1_000_000_000

#: Requests drained per lane per sweep before the owner republishes its
#: header — bounds how stale the published top can get under load.
OWNER_BATCH = 64

#: Routing policies, mirroring the process variants in ``repro.core``:
#: ``mq`` is the paper's (1+beta) MultiQueue, ``single`` funnels
#: everything to one shard (the sequential-heap baseline), ``rr`` is
#: deterministic round-robin (the d=1-without-randomness strawman).
POLICIES = ("mq", "single", "rr")


class Router:
    """Client-side shard choice for inserts and deletes.

    Deletes under ``mq`` flip a beta-coin: tails probes one shard top,
    heads probes two (with replacement, matching the paper's ``p_i``
    law) and takes the smaller.  Tops come from the shard headers'
    seqlock snapshots — advisory, never locked.  Shards marked dead are
    excluded from every subsequent draw.
    """

    def __init__(
        self,
        segment: ServiceSegment,
        beta: float,
        gamma: float = 0.0,
        policy: str = "mq",
        rng: SeedLike = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}: expected one of {POLICIES}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self._segment = segment
        self.n = segment.shards
        self.beta = float(beta)
        self.policy = policy
        self._rng = as_generator(rng)
        self._alive: List[int] = list(range(self.n))
        self._insert_probs = biased_insert_probs(self.n, gamma) if gamma else None
        self._rr = 0

    def alive_shards(self) -> Tuple[int, ...]:
        return tuple(self._alive)

    def mark_dead(self, shard: int) -> None:
        if shard in self._alive:
            self._alive.remove(shard)
        if not self._alive:
            raise RuntimeError("every shard is dead; nowhere to route")

    def _uniform_alive(self) -> int:
        return self._alive[int(self._rng.integers(len(self._alive)))]

    def insert_shard(self) -> int:
        if self.policy == "single":
            return self._alive[0]
        if self.policy == "rr":
            shard = self._alive[self._rr % len(self._alive)]
            self._rr += 1
            return shard
        if self._insert_probs is None:
            return self._uniform_alive()
        probs = self._insert_probs[self._alive]
        probs = probs / probs.sum()
        return self._alive[int(self._rng.choice(len(self._alive), p=probs))]

    def delete_shard(self) -> int:
        if self.policy == "single":
            return self._alive[0]
        if self.policy == "rr":
            shard = self._alive[self._rr % len(self._alive)]
            self._rr += 1
            return shard
        i = self._uniform_alive()
        two = self.beta >= 1.0 or (self.beta > 0.0 and self._rng.random() < self.beta)
        if not two:
            return i
        j = self._uniform_alive()
        if i == j:
            return i
        top_i = self._segment.header(i).read()[1]
        top_j = self._segment.header(j).read()[1]
        return i if top_i <= top_j else j


# -- the shard-owner process --------------------------------------------------


def run_shard_owner(segment_name: str, shard: int, poll_s: float = 0.0002) -> int:
    """Own one shard: drain request lanes into a heap, emit events.

    Exits when every lane has sent ``OP_STOP``.  Publishes the header
    (top, size, heartbeat) after every sweep so routers and liveness
    probes see fresh state.  Returns the residual heap size.
    """
    segment = ServiceSegment.attach(segment_name)
    try:
        header = segment.header(shard)
        header.bump_epoch()
        lanes = [segment.request_ring(shard, lane) for lane in range(segment.lanes)]
        events = segment.event_ring(shard)
        stopped = [False] * segment.lanes
        heap: List[int] = []
        clock = 0

        def publish() -> None:
            header.publish(
                top=heap[0] if heap else TOP_EMPTY,
                size=len(heap),
                heartbeat_ns=time.monotonic_ns(),
            )

        def emit(ev: int, label: int, ev_clock: int, t0_ns: int, t1_ns: int) -> None:
            # The event ring has a single consumer (the collector); if it
            # falls behind, wait — but keep the heartbeat fresh so the
            # backpressure is not mistaken for death.
            while not events.try_push(ev, label, ev_clock, t0_ns, t1_ns):
                publish()
                time.sleep(poll_s)

        publish()
        while not all(stopped):
            processed = 0
            for lane_id in range(segment.lanes):
                if stopped[lane_id]:
                    continue
                ring = lanes[lane_id]
                for _ in range(OWNER_BATCH):
                    req = ring.try_pop()
                    if req is None:
                        break
                    op, label, req_clock, t0_ns, _ = req
                    clock = max(clock, req_clock) + 1
                    processed += 1
                    if op == OP_INSERT:
                        heapq.heappush(heap, label)
                        publish()  # per-op: stale tops make two-choice herd
                        emit(EV_INSERT, label, clock, t0_ns, time.monotonic_ns())
                    elif op == OP_DELETE:
                        if heap:
                            popped = heapq.heappop(heap)
                            publish()
                            emit(EV_DELETE, popped, clock, t0_ns, time.monotonic_ns())
                        else:
                            emit(EV_EMPTY, -1, clock, t0_ns, time.monotonic_ns())
                    elif op == OP_STOP:
                        stopped[lane_id] = True
                        break
            publish()
            if processed == 0:
                time.sleep(poll_s)
        emit(EV_BYE, len(heap), clock + 1, 0, time.monotonic_ns())
        publish()
        return len(heap)
    finally:
        segment.close()


def shard_owner_main(segment_name: str, shard: int, poll_s: float) -> None:
    """``multiprocessing.Process`` target wrapper."""
    run_shard_owner(segment_name, shard, poll_s)


def _mp_context():
    """Fork where available (fast, COW schedule rebuild), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class ServiceCluster:
    """Lifecycle of the shard-owner processes over one segment."""

    segment: ServiceSegment
    poll_s: float = 0.0002
    processes: List[multiprocessing.Process] = field(default_factory=list)

    def start(self) -> None:
        ctx = _mp_context()
        for shard in range(self.segment.shards):
            proc = ctx.Process(
                target=shard_owner_main,
                args=(self.segment.name, shard, self.poll_s),
                name=f"shard-owner-{shard}",
                daemon=True,
            )
            proc.start()
            self.processes.append(proc)

    def kill(self, shard: int) -> None:
        """SIGKILL one owner — the crash-safety test's hammer."""
        proc = self.processes[shard]
        proc.kill()
        proc.join()

    def alive(self) -> List[bool]:
        return [p.is_alive() for p in self.processes]

    def join(self, timeout_s: float = 30.0) -> List[Optional[int]]:
        deadline = time.monotonic() + timeout_s
        for proc in self.processes:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # wedged: don't hang the parent
                proc.kill()
                proc.join()
        return [p.exitcode for p in self.processes]


# -- event collection ---------------------------------------------------------


class EventCollector(threading.Thread):
    """Single consumer of every shard's event ring.

    Runs in the parent while the service is live so bounded event rings
    never become the bottleneck.  A shard is finished when it sends
    ``EV_BYE`` (clean) or its owner died with nothing left to drain.
    """

    def __init__(self, segment: ServiceSegment, cluster: ServiceCluster) -> None:
        super().__init__(name="service-collector", daemon=True)
        self._segment = segment
        self._cluster = cluster
        self.events_by_shard: List[List[Tuple[int, int, int, int, int]]] = [
            [] for _ in range(segment.shards)
        ]
        self.residual_sizes: List[Optional[int]] = [None] * segment.shards

    def run(self) -> None:
        rings = [self._segment.event_ring(s) for s in range(self._segment.shards)]
        live = [True] * self._segment.shards
        while any(live):
            progressed = False
            owners_alive = self._cluster.alive()
            for s in range(self._segment.shards):
                if not live[s]:
                    continue
                drained_any = False
                for _ in range(4 * OWNER_BATCH):
                    ev = rings[s].try_pop()
                    if ev is None:
                        break
                    drained_any = True
                    if ev[0] == EV_BYE:
                        self.residual_sizes[s] = ev[1]
                        live[s] = False
                        break
                    self.events_by_shard[s].append(ev)
                progressed = progressed or drained_any
                if live[s] and not drained_any and not owners_alive[s]:
                    live[s] = False  # killed owner, ring fully drained
            if not progressed:
                time.sleep(0.0005)


# -- whole-service runs -------------------------------------------------------


def _prefill(
    segment: ServiceSegment,
    schedule: ArrivalSchedule,
    router: Router,
    timeout_s: float,
) -> None:
    """Load the initial population through the parent's control lane."""
    lane = segment.lanes - 1
    rings = [segment.request_ring(s, lane) for s in range(segment.shards)]
    clock = 0
    for label in schedule.prefill_labels:
        shard = router.insert_shard()
        clock += 1
        deadline = time.monotonic() + timeout_s
        while not rings[shard].try_push(OP_INSERT, int(label), clock, 0, 0):
            if time.monotonic() > deadline:
                raise RuntimeError(f"prefill stalled: shard {shard} not draining")
            time.sleep(0.0002)
    deadline = time.monotonic() + timeout_s
    want = len(schedule.prefill_labels)
    while True:
        total = sum(segment.header(s).read()[2] for s in range(segment.shards))
        if total >= want:
            return
        if time.monotonic() > deadline:
            raise RuntimeError(f"prefill incomplete: {total}/{want} after {timeout_s:.0f}s")
        time.sleep(0.001)


def _stop_owners(segment: ServiceSegment, timeout_s: float = 10.0) -> None:
    """Send the control lane's STOP to every shard (dead owners skipped)."""
    lane = segment.lanes - 1
    for s in range(segment.shards):
        ring = segment.request_ring(s, lane)
        ring.recover()  # prefill advanced this lane's position
        deadline = time.monotonic() + timeout_s
        while not ring.try_push(OP_STOP, 0, 0, 0, 0):
            if time.monotonic() > deadline:
                break  # owner dead and ring full: nobody left to stop
            time.sleep(0.0002)


def run_service(
    shards: int,
    workers: int,
    spec: ScheduleSpec,
    beta: float = 0.5,
    gamma: float = 0.0,
    policy: str = "mq",
    seed: int = 0,
    req_capacity: int = 2048,
    ev_capacity: int = 8192,
    rank_sample_every: int = 16,
    dead_after_s: float = 2.0,
    chaos: Optional[Tuple[int, float]] = None,
    poll_s: float = 0.0002,
) -> dict:
    """Run one complete service experiment and summarize it.

    Starts ``shards`` owner processes and ``workers`` loadgen processes,
    prefills, replays the schedule, tears down, audits every ring, and
    returns the metrics summary (throughput, tail latency, sampled rank
    quality) plus the audit.  ``chaos=(shard, delay_s)`` SIGKILLs one
    owner ``delay_s`` after traffic starts — the degraded-mode path.
    """
    from repro.service.metrics import summarize

    schedule = spec.build()
    segment = ServiceSegment.create(
        shards, lanes=workers + 1, req_capacity=req_capacity, ev_capacity=ev_capacity
    )
    cluster = ServiceCluster(segment, poll_s=poll_s)
    killer: Optional[threading.Timer] = None
    try:
        cluster.start()
        collector = EventCollector(segment, cluster)
        collector.start()
        control_router = Router(
            segment, beta=beta, gamma=gamma, policy=policy, rng=seed
        )
        _prefill(segment, schedule, control_router, timeout_s=30.0)

        ctx = _mp_context()
        start_ns = time.monotonic_ns() + int(0.05 * _NS)
        loadgens = []
        for w in range(workers):
            proc = ctx.Process(
                target=loadgen_main,
                name=f"loadgen-{w}",
                args=(
                    dict(
                        segment_name=segment.name,
                        worker_id=w,
                        n_workers=workers,
                        spec=spec,
                        start_ns=start_ns,
                        beta=beta,
                        gamma=gamma,
                        policy=policy,
                        routing_seed=seed + 1,
                        dead_after_s=dead_after_s,
                    ),
                ),
                daemon=True,
            )
            proc.start()
            loadgens.append(proc)
        if chaos is not None:
            kill_shard, delay_s = chaos
            wait_s = max(0.0, (start_ns - time.monotonic_ns()) / _NS + delay_s)
            killer = threading.Timer(wait_s, cluster.kill, args=(kill_shard,))
            killer.start()

        wall_start = time.monotonic_ns()
        for proc in loadgens:
            proc.join(timeout=120.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
        if killer is not None:
            killer.join()
        _stop_owners(segment)
        owner_exits = cluster.join(timeout_s=30.0)
        collector.join(timeout=30.0)
        wall_s = (time.monotonic_ns() - wall_start) / _NS

        audit = segment.audit()
        result = summarize(
            collector.events_by_shard,
            schedule,
            wall_s=wall_s,
            rank_sample_every=rank_sample_every,
        )
        result.update(
            {
                "shards": shards,
                "workers": workers,
                "beta": beta,
                "gamma": gamma,
                "policy": policy,
                "seed": seed,
                "mode": spec.mode,
                "audit": audit,
                "owner_exitcodes": owner_exits,
                "loadgen_exitcodes": [p.exitcode for p in loadgens],
                "residual_sizes": collector.residual_sizes,
                "killed_shard": chaos[0] if chaos else None,
            }
        )
        return result
    finally:
        if killer is not None:
            killer.cancel()
        for proc in cluster.processes:
            if proc.is_alive():
                proc.kill()
        segment.close()
        segment.unlink()


def run_scaling_sweep(
    shard_counts: Sequence[int],
    workers: int,
    spec: ScheduleSpec,
    beta: float = 0.5,
    gamma: float = 0.0,
    policy: str = "mq",
    seed: int = 0,
) -> dict:
    """Throughput scaling across shard-owner counts, same offered load.

    The headline service claim: with real processes on real cores,
    adding shard owners scales delete-min throughput — the axis the
    simulator can model but never demonstrate.
    """
    rows = []
    for shards in shard_counts:
        res = run_service(
            shards, workers, spec, beta=beta, gamma=gamma, policy=policy, seed=seed
        )
        rows.append(
            {
                "shards": shards,
                "workers": workers,
                "throughput_ops_s": res["throughput_ops_s"],
                "delete_p99_ms": res["delete_p99_ms"],
                "rank": res["rank"],
                "torn": res["audit"]["torn"],
            }
        )
    base = rows[0]["throughput_ops_s"]
    for row in rows:
        row["speedup"] = row["throughput_ops_s"] / base if base else float("nan")
    return {
        "beta": beta,
        "gamma": gamma,
        "policy": policy,
        "mode": spec.mode,
        "ops": spec.ops,
        "prefill": spec.prefill,
        "rows": rows,
    }
