"""Shared-memory ring shards: the wire format of the live service.

One ``multiprocessing.shared_memory`` segment holds everything the
service's processes exchange: per-shard request lanes, per-shard event
rings, and per-shard headers publishing the queue top for two-choice
routing.  Three protocols live here, all designed so that a SIGKILLed
process can never corrupt what a survivor reads:

**Slot protocol (claim/commit).**  Every ring slot carries an absolute
sequence number.  A slot at ring position ``p`` reads ``seq == p`` while
free (the producer's *claim* is the observation that its own position is
free — single producer per ring, so the claim cannot race), the producer
writes the payload plus a checksum, and only then *commits* by storing
``seq = p + 1``.  The consumer accepts a slot only when ``seq == c + 1``
and recycles it with ``seq = c + capacity``.  A writer killed anywhere
before the commit store leaves ``seq`` unpublished, so the half-written
payload is invisible — there is no torn state a reader can observe, and
:meth:`SlotRing.audit` proves it after the fact by checksumming every
committed slot.

**Lane composition.**  Python cannot issue atomic read-modify-writes on
shared memory, so instead of an MPMC ring guarded by a lock (a kill
while holding it would wedge every peer), each (producer, shard) pair
gets its own single-producer/single-consumer lane and the shard owner
drains its lanes round-robin.  The lane mesh *is* the MPMC channel,
built from parts that need no atomics at all.  (CPython executes the
payload stores before the commit store in bytecode order, and x86/ARM64
TSO/release semantics keep that order visible across processes.)

**Header seqlock + fencing epoch.**  Each shard header publishes
``(top, size, heartbeat)`` under a seqlock (odd = write in progress) so
routers can read two shard tops without locks, and carries a fencing
``epoch`` bumped by every new owner generation — events stamped with a
stale epoch are from a zombie predecessor and can be fenced.

**Durable shard state (journal + snapshot).**  Each shard also owns a
commit *journal* — a ring of applied operations under the same
claim/commit protocol, each entry stamped with the owner's fencing
epoch, the request's ``(lane, position)`` identity, and the event-ring
position its event was (or will be) published at — plus a double-
buffered heap *snapshot* committed by a single atomic buffer-index
flip.  Together they make the owner's private heap reconstructible
after a SIGKILL at any instruction: replay the active snapshot, then
every journal entry past its fold point.  The ``(lane, position)``
identity dedups requests the dead owner applied but never recycled
(exactly-once application), and the recorded event position tells the
successor which journaled events were never published (exactly-once
event emission).  Entries whose epoch regresses below an already-seen
epoch are zombie writes and are fenced out of the replay.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

#: Slot layout: absolute sequence number, opcode, label, Lamport clock,
#: intended-start and completion timestamps (monotonic ns), checksum.
SLOT = struct.Struct("<QQqQqqQ")
_SEQ = struct.Struct("<Q")

#: Request opcodes (client -> shard owner).
OP_INSERT = 1
OP_DELETE = 2
OP_STOP = 3

#: Event opcodes (shard owner -> collector).
EV_INSERT = 11
EV_DELETE = 12
EV_EMPTY = 13  # delete arrived while the shard heap was empty
EV_BYE = 14  # owner shut down cleanly; label carries the residual size

#: Journal opcodes reuse the event opcodes (the journal records the event
#: each applied request produced); J_STOP additionally journals a lane's
#: STOP so a successor does not wait on a lane that already said goodbye.
J_STOP = 15

#: Published "top" for an empty shard: worse than every real label.
TOP_EMPTY = 1 << 62

_MASK64 = (1 << 64) - 1

#: Shard header layout: fencing epoch, seqlock, top, size, heartbeat ns.
HEADER = struct.Struct("<QQqqq")

#: Journal slot layout: absolute sequence, opcode, label, Lamport clock,
#: intended-start ns, source lane, request-ring position the op came from,
#: event-ring position its event publishes at (-1: no event), owner epoch,
#: checksum.
JSLOT = struct.Struct("<QQqQqQQqQQ")

#: Snapshot buffer header: format version, owner epoch, Lamport clock,
#: heap count, journal fold position, event-ring head, cumulative
#: inserts/deletes/empties, per-lane stopped bitmask, checksum.
_SNAP_HEADER = struct.Struct("<QQQQQQQQQQQ")
_SNAP_CONTROL = struct.Struct("<QQ")  # active buffer index + pad
SNAP_VERSION = 1

_SEG_HEADER = struct.Struct("<QIIIIIII")
_SEG_HEADER_SIZE = 40
_MAGIC = 0x4D51534852564D51  # "MQSHRVMQ"


def slot_checksum(op: int, label: int, clock: int, t0_ns: int, t1_ns: int) -> int:
    """FNV-style fold of a slot payload (``hash()`` is salted; this is not)."""
    h = 0x9E3779B97F4A7C15
    for v in (op, label & _MASK64, clock, t0_ns & _MASK64, t1_ns & _MASK64):
        h = ((h ^ v) * 0x100000001B3) & _MASK64
    return h or 1


def journal_checksum(
    op: int, label: int, clock: int, t0_ns: int,
    lane: int, reqpos: int, evpos: int, epoch: int,
) -> int:
    """FNV-style fold of a journal entry payload."""
    h = 0x9E3779B97F4A7C15
    for v in (
        op, label & _MASK64, clock, t0_ns & _MASK64,
        lane, reqpos, evpos & _MASK64, epoch,
    ):
        h = ((h ^ v) * 0x100000001B3) & _MASK64
    return h or 1


_SNAP_SALT = 0xA5A5A5A55A5A5A5A
_SNAP_PRIME = 0x100000001B3


def snapshot_checksum(scalars: Sequence[int], watermarks, labels) -> int:
    """Checksum of one snapshot buffer's full content.

    ``scalars`` are the header fields before the checksum itself;
    ``watermarks``/``labels`` are uint64/int64 numpy arrays.  The label
    fold is an order-insensitive XOR reduce so it vectorises.
    """
    h = 0x9E3779B97F4A7C15
    for v in scalars:
        h = ((h ^ (v & _MASK64)) * _SNAP_PRIME) & _MASK64
    for v in watermarks.tolist():
        h = ((h ^ (v & _MASK64)) * _SNAP_PRIME) & _MASK64
    if labels.size:
        mixed = (labels.astype(np.uint64) ^ np.uint64(_SNAP_SALT)) * np.uint64(
            _SNAP_PRIME
        )
        h = ((h ^ int(np.bitwise_xor.reduce(mixed))) * _SNAP_PRIME) & _MASK64
    return h or 1


class TornSlotError(RuntimeError):
    """A committed slot failed its checksum — the protocol was violated."""


class FencedOwnerError(RuntimeError):
    """An owner observed a newer epoch in its header: it is a zombie.

    Raised between a journal entry's payload write and its commit store,
    so a fenced owner can never publish another committed entry — its
    half-written slot stays invisible (``seq`` unchanged).
    """


@dataclass
class RingAudit:
    """Post-mortem census of one ring's slots."""

    capacity: int
    committed: int  # published but not yet consumed
    free: int
    torn: int  # invalid sequence residue or checksum mismatch

    @property
    def ok(self) -> bool:
        return self.torn == 0


def _recover_positions(
    buf, offset: int, slot_size: int, capacity: int, max_scans: int = 64
) -> Tuple[int, int]:
    """Derive ``(head, tail)`` from slot sequence residues, safely even
    while the ring's producer is live.

    Free slots carry their future producer position, committed slots
    carry ``position + 1``.  In any *consistent* snapshot the free
    region starts at the producer head, so every free future-position
    strictly exceeds every committed position.  A scan that observes a
    free slot at or below a committed position raced a concurrent
    commit (the producer committed the earlier slot after we read it
    but before we read the later one); accepting such a scan would set
    the consumer tail past a committed slot and silently drop that
    request — so rescan.  Committed slots cannot revert while we (the
    recovering side) are not consuming, so one rescan normally settles.
    """
    for _ in range(max_scans):
        free_positions: List[int] = []
        committed_positions: List[int] = []
        for i in range(capacity):
            (seq,) = _SEQ.unpack_from(buf, offset + i * slot_size)
            if (seq - i) % capacity == 0:
                free_positions.append(seq)
            elif (seq - i - 1) % capacity == 0:
                committed_positions.append(seq - 1)
        if (
            free_positions
            and committed_positions
            and min(free_positions) <= max(committed_positions)
        ):
            time.sleep(0.0005)  # let the in-flight commit land
            continue  # torn scan: a producer committed mid-scan
        if free_positions:
            head = min(free_positions)
        elif committed_positions:
            head = min(committed_positions) + capacity
        else:
            head = 0
        tail = min(committed_positions) if committed_positions else head
        return head, tail
    raise TornSlotError(
        f"ring recover(): no consistent scan in {max_scans} attempts"
    )


class SlotRing:
    """A fixed-capacity SPSC ring over a shared-memory region.

    Producer and consumer positions are plain Python attributes — each
    side is a single process, and a restarted process recovers them from
    the slot sequence numbers alone (:meth:`recover`).
    """

    def __init__(self, buf, offset: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf = buf
        self._offset = offset
        self.capacity = capacity
        self._head = 0  # next producer position
        self._tail = 0  # next consumer position

    @staticmethod
    def region_size(capacity: int) -> int:
        """Bytes one ring of ``capacity`` slots occupies."""
        return capacity * SLOT.size

    def _slot_offset(self, position: int) -> int:
        return self._offset + (position % self.capacity) * SLOT.size

    @property
    def head(self) -> int:
        """Next producer position (absolute)."""
        return self._head

    @property
    def tail(self) -> int:
        """Next consumer position (absolute)."""
        return self._tail

    def initialize(self) -> None:
        """Format every slot as free (slot ``i`` gets ``seq = i``)."""
        for i in range(self.capacity):
            SLOT.pack_into(self._buf, self._offset + i * SLOT.size, i, 0, 0, 0, 0, 0, 0)

    # -- producer side ---------------------------------------------------

    def try_push(
        self, op: int, label: int, clock: int = 0, t0_ns: int = 0, t1_ns: int = 0
    ) -> bool:
        """Claim the head slot, write the payload, commit.  False = full."""
        p = self._head
        off = self._slot_offset(p)
        (seq,) = _SEQ.unpack_from(self._buf, off)
        if seq != p:
            return False  # ring full (or we lost our position: recover())
        # Claimed: payload first, checksum included ...
        SLOT.pack_into(
            self._buf, off, seq, op, label, clock, t0_ns, t1_ns,
            slot_checksum(op, label, clock, t0_ns, t1_ns),
        )
        # ... and only then the commit store that publishes the slot.
        _SEQ.pack_into(self._buf, off, p + 1)
        self._head = p + 1
        return True

    # -- consumer side ---------------------------------------------------

    def try_pop(self) -> Optional[Tuple[int, int, int, int, int]]:
        """Consume the tail slot; ``None`` when nothing is committed.

        Returns ``(op, label, clock, t0_ns, t1_ns)``.  Raises
        :class:`TornSlotError` if a committed slot fails its checksum —
        by construction of the commit ordering this cannot happen from a
        crash, only from a protocol bug, so it is loud.
        """
        out = self.try_peek()
        if out is not None:
            self.advance()
        return out

    def try_peek(self) -> Optional[Tuple[int, int, int, int, int]]:
        """Read the tail slot without recycling it; ``None`` = nothing committed.

        Lets a consumer apply+journal an op durably *before* recycling the
        slot — the recovery dedup key is the slot's absolute position, which
        must stay stable until the journal entry is committed.
        """
        c = self._tail
        off = self._slot_offset(c)
        seq, op, label, clock, t0_ns, t1_ns, checksum = SLOT.unpack_from(self._buf, off)
        if seq != c + 1:
            return None
        if checksum != slot_checksum(op, label, clock, t0_ns, t1_ns):
            raise TornSlotError(
                f"slot at position {c} committed with a bad checksum (op={op})"
            )
        return op, label, clock, t0_ns, t1_ns

    def advance(self) -> None:
        """Recycle the tail slot previously observed via :meth:`try_peek`."""
        c = self._tail
        _SEQ.pack_into(self._buf, self._slot_offset(c), c + self.capacity)
        self._tail = c + 1

    def last_op(self) -> Optional[int]:
        """The op of the last slot ever written (committed *or* consumed).

        Consumption recycles a slot's sequence but never rewrites its
        payload, so after :meth:`recover` the slot at ``head - 1`` still
        holds whatever the producer wrote there last.  The supervised
        shutdown sweep uses this to ask "was a STOP ever delivered on
        this lane?" without assuming it is still pending.  ``None`` when
        nothing was ever pushed or the payload fails its checksum (a
        producer killed mid-write of that final slot).
        """
        if self._head == 0:
            return None
        off = self._slot_offset(self._head - 1)
        _seq, op, label, clock, t0_ns, t1_ns, checksum = SLOT.unpack_from(self._buf, off)
        if checksum != slot_checksum(op, label, clock, t0_ns, t1_ns):
            return None
        return op

    # -- crash recovery and audit ----------------------------------------

    def recover(self) -> None:
        """Rederive producer/consumer positions from the slot sequences.

        Used by a process attaching to a ring mid-life (e.g. a restarted
        owner, or the post-kill auditor): free slots carry their future
        producer position, committed slots carry ``position + 1``.  Safe
        to run while the ring's producer is live (a respawned owner
        recovers its request lanes under active loadgen traffic).
        """
        self._head, self._tail = _recover_positions(
            self._buf, self._offset, SLOT.size, self.capacity
        )

    def audit(self) -> RingAudit:
        """Census every slot; a nonzero ``torn`` count is a protocol breach."""
        committed = free = torn = 0
        for i in range(self.capacity):
            off = self._offset + i * SLOT.size
            seq, op, label, clock, t0_ns, t1_ns, checksum = SLOT.unpack_from(self._buf, off)
            if (seq - i) % self.capacity == 0:
                free += 1
            elif (seq - i - 1) % self.capacity == 0:
                if checksum == slot_checksum(op, label, clock, t0_ns, t1_ns):
                    committed += 1
                else:
                    torn += 1
            else:
                torn += 1
        return RingAudit(capacity=self.capacity, committed=committed, free=free, torn=torn)


class JournalEntry(NamedTuple):
    """One committed journal record, tagged with its absolute position."""

    pos: int
    op: int
    label: int
    clock: int
    t0_ns: int
    lane: int
    reqpos: int
    evpos: int
    epoch: int


class JournalRing:
    """The per-shard commit journal: an SPSC ring the owner appends to.

    Same claim/commit discipline as :class:`SlotRing`, but consumption is
    bulk: the owner *truncates* everything below the snapshot fold point
    instead of popping entry by entry, and a successor *scans* the live
    suffix non-destructively during recovery.  The commit store doubles as
    the linearization point of the whole shard — an op happened iff its
    journal entry is committed — and the optional ``fence`` hook lets a
    zombie owner detect its own staleness after the payload write but
    before the slot becomes visible.
    """

    def __init__(self, buf, offset: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf = buf
        self._offset = offset
        self.capacity = capacity
        self._head = 0  # next append position
        self._tail = 0  # lowest retained (un-truncated) position

    @staticmethod
    def region_size(capacity: int) -> int:
        return capacity * JSLOT.size

    def _slot_offset(self, position: int) -> int:
        return self._offset + (position % self.capacity) * JSLOT.size

    @property
    def head(self) -> int:
        return self._head

    @property
    def tail(self) -> int:
        return self._tail

    def initialize(self) -> None:
        for i in range(self.capacity):
            JSLOT.pack_into(
                self._buf, self._offset + i * JSLOT.size, i, 0, 0, 0, 0, 0, 0, 0, 0, 0
            )

    # -- producer side ---------------------------------------------------

    def try_append(
        self, op: int, label: int, clock: int, t0_ns: int,
        lane: int, reqpos: int, evpos: int, epoch: int,
        fence=None,
    ) -> bool:
        """Claim, write payload, check ``fence``, commit.  False = full.

        ``fence`` is called (if given) after the payload write and before
        the commit store; if it returns true the append raises
        :class:`FencedOwnerError` with the slot still free — a fenced
        zombie cannot commit even one more entry.
        """
        p = self._head
        off = self._slot_offset(p)
        (seq,) = _SEQ.unpack_from(self._buf, off)
        if seq != p:
            return False
        JSLOT.pack_into(
            self._buf, off, seq, op, label, clock, t0_ns, lane, reqpos, evpos,
            epoch, journal_checksum(op, label, clock, t0_ns, lane, reqpos, evpos, epoch),
        )
        if fence is not None and fence():
            raise FencedOwnerError(
                f"owner epoch {epoch} fenced before committing journal pos {p}"
            )
        _SEQ.pack_into(self._buf, off, p + 1)
        self._head = p + 1
        return True

    def truncate_to(self, new_tail: int) -> None:
        """Recycle every entry below ``new_tail`` (the snapshot fold point)."""
        if not self._tail <= new_tail <= self._head:
            raise ValueError(
                f"truncate_to({new_tail}) outside [{self._tail}, {self._head}]"
            )
        for c in range(self._tail, new_tail):
            _SEQ.pack_into(self._buf, self._slot_offset(c), c + self.capacity)
        self._tail = new_tail

    # -- recovery / audit -------------------------------------------------

    def scan(self) -> List[JournalEntry]:
        """All committed entries in ``[tail, head)``, non-destructively."""
        out: List[JournalEntry] = []
        for pos in range(self._tail, self._head):
            off = self._slot_offset(pos)
            seq, op, label, clock, t0_ns, lane, reqpos, evpos, epoch, checksum = (
                JSLOT.unpack_from(self._buf, off)
            )
            if seq != pos + 1:
                raise TornSlotError(
                    f"journal position {pos} inside [tail, head) is not committed"
                )
            if checksum != journal_checksum(
                op, label, clock, t0_ns, lane, reqpos, evpos, epoch
            ):
                raise TornSlotError(
                    f"journal position {pos} committed with a bad checksum"
                )
            out.append(
                JournalEntry(pos, op, label, clock, t0_ns, lane, reqpos, evpos, epoch)
            )
        return out

    def recover(self) -> None:
        """Rederive head/tail from slot sequences (same scheme as SlotRing)."""
        self._head, self._tail = _recover_positions(
            self._buf, self._offset, JSLOT.size, self.capacity
        )

    def audit(self) -> RingAudit:
        committed = free = torn = 0
        for i in range(self.capacity):
            off = self._offset + i * JSLOT.size
            seq, op, label, clock, t0_ns, lane, reqpos, evpos, epoch, checksum = (
                JSLOT.unpack_from(self._buf, off)
            )
            if (seq - i) % self.capacity == 0:
                free += 1
            elif (seq - i - 1) % self.capacity == 0:
                if checksum == journal_checksum(
                    op, label, clock, t0_ns, lane, reqpos, evpos, epoch
                ):
                    committed += 1
                else:
                    torn += 1
            else:
                torn += 1
        return RingAudit(capacity=self.capacity, committed=committed, free=free, torn=torn)


class SnapshotState(NamedTuple):
    """Decoded content of the active snapshot buffer."""

    epoch: int
    clock: int
    fold_pos: int  # journal entries below this are folded into the labels
    ev_head: int  # event-ring head as of the fold point
    cum_inserts: int
    cum_deletes: int
    cum_empties: int
    stopped_mask: int  # bit per lane: STOP already consumed
    watermarks: Tuple[int, ...]  # per-lane next-unapplied request position
    labels: "np.ndarray"  # heap content at the fold point (count elements)


class ShardSnapshot:
    """Double-buffered heap snapshot committed by one atomic index flip.

    The owner always writes the *inactive* buffer, then flips the active
    index with a single aligned 8-byte store.  A reader (the recovering
    successor) takes the active buffer if its checksum validates, else
    falls back to the other one — a writer killed at any instruction
    leaves at least one valid buffer, because :meth:`initialize` plants a
    valid empty snapshot before any owner runs.
    """

    def __init__(self, buf, offset: int, lanes: int, state_capacity: int) -> None:
        self._buf = buf
        self._offset = offset
        self.lanes = lanes
        self.state_capacity = state_capacity

    @staticmethod
    def buffer_size(lanes: int, state_capacity: int) -> int:
        return _SNAP_HEADER.size + lanes * 8 + state_capacity * 8

    @classmethod
    def region_size(cls, lanes: int, state_capacity: int) -> int:
        return _SNAP_CONTROL.size + 2 * cls.buffer_size(lanes, state_capacity)

    def _buffer_offset(self, index: int) -> int:
        return self._offset + _SNAP_CONTROL.size + index * self.buffer_size(
            self.lanes, self.state_capacity
        )

    def initialize(self) -> None:
        """Plant a valid empty snapshot in buffer 0 and mark it active."""
        _SNAP_CONTROL.pack_into(self._buf, self._offset, 0, 0)
        # Invalidate buffer 1 (checksum 0 can never validate: folds end `or 1`).
        _SNAP_HEADER.pack_into(self._buf, self._buffer_offset(1), *([0] * 11))
        self._write_buffer(
            0, epoch=0, clock=0, fold_pos=0, ev_head=0, cum_inserts=0,
            cum_deletes=0, cum_empties=0, stopped_mask=0,
            watermarks=np.zeros(self.lanes, dtype=np.uint64),
            labels=np.empty(0, dtype=np.int64),
        )

    def _write_buffer(
        self, index: int, *, epoch: int, clock: int, fold_pos: int, ev_head: int,
        cum_inserts: int, cum_deletes: int, cum_empties: int, stopped_mask: int,
        watermarks, labels,
    ) -> None:
        count = int(labels.size)
        if count > self.state_capacity:
            raise ValueError(
                f"snapshot of {count} labels exceeds state capacity "
                f"{self.state_capacity}"
            )
        base = self._buffer_offset(index)
        scalars = (
            SNAP_VERSION, epoch, clock, count, fold_pos, ev_head,
            cum_inserts, cum_deletes, cum_empties, stopped_mask,
        )
        checksum = snapshot_checksum(scalars, watermarks, labels)
        wm_off = base + _SNAP_HEADER.size
        self._buf[wm_off : wm_off + self.lanes * 8] = watermarks.astype(
            np.uint64
        ).tobytes()
        lab_off = wm_off + self.lanes * 8
        self._buf[lab_off : lab_off + count * 8] = labels.astype(np.int64).tobytes()
        _SNAP_HEADER.pack_into(self._buf, base, *scalars, checksum)

    def write(
        self, *, epoch: int, clock: int, fold_pos: int, ev_head: int,
        cum_inserts: int, cum_deletes: int, cum_empties: int, stopped_mask: int,
        watermarks, labels,
    ) -> None:
        """Write the inactive buffer, then commit it with the index flip."""
        (active, _pad) = _SNAP_CONTROL.unpack_from(self._buf, self._offset)
        target = 1 - int(active)
        self._write_buffer(
            target, epoch=epoch, clock=clock, fold_pos=fold_pos, ev_head=ev_head,
            cum_inserts=cum_inserts, cum_deletes=cum_deletes,
            cum_empties=cum_empties, stopped_mask=stopped_mask,
            watermarks=np.asarray(watermarks, dtype=np.uint64),
            labels=np.asarray(labels, dtype=np.int64),
        )
        _SNAP_CONTROL.pack_into(self._buf, self._offset, target, 0)

    def _read_buffer(self, index: int) -> Optional[SnapshotState]:
        base = self._buffer_offset(index)
        (
            version, epoch, clock, count, fold_pos, ev_head,
            cum_inserts, cum_deletes, cum_empties, stopped_mask, checksum,
        ) = _SNAP_HEADER.unpack_from(self._buf, base)
        if version != SNAP_VERSION or count > self.state_capacity:
            return None
        wm_off = base + _SNAP_HEADER.size
        watermarks = np.frombuffer(
            bytes(self._buf[wm_off : wm_off + self.lanes * 8]), dtype=np.uint64
        )
        lab_off = wm_off + self.lanes * 8
        labels = np.frombuffer(
            bytes(self._buf[lab_off : lab_off + count * 8]), dtype=np.int64
        )
        scalars = (
            version, epoch, clock, count, fold_pos, ev_head,
            cum_inserts, cum_deletes, cum_empties, stopped_mask,
        )
        if checksum != snapshot_checksum(scalars, watermarks, labels):
            return None
        return SnapshotState(
            epoch=epoch, clock=clock, fold_pos=fold_pos, ev_head=ev_head,
            cum_inserts=cum_inserts, cum_deletes=cum_deletes,
            cum_empties=cum_empties, stopped_mask=stopped_mask,
            watermarks=tuple(int(w) for w in watermarks),
            labels=labels.copy(),
        )

    def read(self) -> SnapshotState:
        """The newest valid snapshot (active buffer, else its sibling)."""
        (active, _pad) = _SNAP_CONTROL.unpack_from(self._buf, self._offset)
        active = int(active) & 1
        for index in (active, 1 - active):
            state = self._read_buffer(index)
            if state is not None:
                return state
        raise TornSlotError(
            "both snapshot buffers failed validation — snapshots are "
            "double-buffered, so this is a protocol breach, not a crash"
        )


class ShardHeader:
    """Seqlock-published ``(top, size, heartbeat)`` plus the fencing epoch."""

    def __init__(self, buf, offset: int) -> None:
        self._buf = buf
        self._offset = offset

    @staticmethod
    def region_size() -> int:
        return HEADER.size

    def initialize(self) -> None:
        HEADER.pack_into(self._buf, self._offset, 0, 0, TOP_EMPTY, 0, 0)

    # -- owner side ------------------------------------------------------

    def bump_epoch(self) -> int:
        """Fence out any predecessor: the new owner generation's token."""
        epoch, = struct.unpack_from("<Q", self._buf, self._offset)
        struct.pack_into("<Q", self._buf, self._offset, epoch + 1)
        return epoch + 1

    def publish(self, top: int, size: int, heartbeat_ns: int) -> None:
        """Seqlock write: odd seq while the fields are in flight.

        ``| 1`` (rather than ``+ 1``) absorbs a predecessor that died
        mid-publish and left the seqlock odd: blindly incrementing would
        invert the parity convention for the rest of the shard's life,
        sending every read down the stale-fallback path.
        """
        off = self._offset
        (seqlock,) = struct.unpack_from("<Q", self._buf, off + 8)
        writing = seqlock | 1
        struct.pack_into("<Q", self._buf, off + 8, writing)  # odd: writing
        struct.pack_into("<qqq", self._buf, off + 16, top, size, heartbeat_ns)
        struct.pack_into("<Q", self._buf, off + 8, writing + 1)  # even: stable

    # -- reader side -----------------------------------------------------

    def read(self, max_tries: int = 64) -> Tuple[int, int, int, int]:
        """Consistent ``(epoch, top, size, heartbeat_ns)`` snapshot."""
        for _ in range(max_tries):
            epoch, seq1 = struct.unpack_from("<QQ", self._buf, self._offset)
            if seq1 % 2:
                continue
            top, size, heartbeat_ns = struct.unpack_from(
                "<qqq", self._buf, self._offset + 16
            )
            (seq2,) = struct.unpack_from("<Q", self._buf, self._offset + 8)
            if seq1 == seq2:
                return epoch, top, size, heartbeat_ns
        # The writer died mid-publish: the stale snapshot is still usable
        # for routing (tops are advisory), so return it rather than hang.
        top, size, heartbeat_ns = struct.unpack_from("<qqq", self._buf, self._offset + 16)
        return epoch, top, size, heartbeat_ns

    def epoch(self) -> int:
        (epoch,) = struct.unpack_from("<Q", self._buf, self._offset)
        return epoch


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the block with the resource
    tracker even when merely attaching (bpo-39959), so a child exiting
    would unlink a segment the creator still owns.  Suppress the
    registration for the duration of the attach (unregistering *after*
    would race the tracker and double-remove when creator and attacher
    share a process): only the creating process manages unlink.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class ServiceSegment:
    """Layout and lifetime of the one shared-memory block of a service run.

    Geometry: ``lanes`` producers (loadgen workers plus the control lane
    the parent uses for prefill/shutdown) times ``shards`` request rings,
    one event ring per shard, one header per shard.  Any process can
    attach by name and reconstruct every view from the stored geometry.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owns: bool,
        shards: int, lanes: int, req_capacity: int, ev_capacity: int,
        journal_capacity: int, state_capacity: int,
    ) -> None:
        self._shm = shm
        self._owns = owns
        self.shards = shards
        self.lanes = lanes
        self.req_capacity = req_capacity
        self.ev_capacity = ev_capacity
        self.journal_capacity = journal_capacity
        self.state_capacity = state_capacity

    # -- creation / attachment -------------------------------------------

    @classmethod
    def create(
        cls,
        shards: int,
        lanes: int,
        req_capacity: int = 2048,
        ev_capacity: int = 8192,
        journal_capacity: int = 8192,
        state_capacity: int = 4096,
        name: Optional[str] = None,
    ) -> "ServiceSegment":
        if shards <= 0 or lanes <= 0:
            raise ValueError(f"need positive geometry, got shards={shards}, lanes={lanes}")
        if lanes > 64:
            raise ValueError(
                f"at most 64 lanes (snapshot stopped_mask is one u64), got {lanes}"
            )
        total = cls._total_size(
            shards, lanes, req_capacity, ev_capacity, journal_capacity, state_capacity
        )
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        seg = cls(
            shm, owns=True, shards=shards, lanes=lanes,
            req_capacity=req_capacity, ev_capacity=ev_capacity,
            journal_capacity=journal_capacity, state_capacity=state_capacity,
        )
        _SEG_HEADER.pack_into(
            shm.buf, 0, _MAGIC, 2, shards, lanes, req_capacity, ev_capacity,
            journal_capacity, state_capacity,
        )
        for s in range(shards):
            seg.header(s).initialize()
            seg.event_ring(s).initialize()
            seg.journal(s).initialize()
            seg.snapshot(s).initialize()
            for lane in range(lanes):
                seg.request_ring(s, lane).initialize()
        return seg

    @classmethod
    def attach(cls, name: str) -> "ServiceSegment":
        shm = _attach_segment(name)
        (
            magic, version, shards, lanes, req_capacity, ev_capacity,
            journal_capacity, state_capacity,
        ) = _SEG_HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"shared segment {name!r} is not a repro.service segment")
        if version != 2:
            shm.close()
            raise ValueError(
                f"shared segment {name!r} has layout version {version}, expected 2"
            )
        return cls(
            shm, owns=False, shards=shards, lanes=lanes,
            req_capacity=req_capacity, ev_capacity=ev_capacity,
            journal_capacity=journal_capacity, state_capacity=state_capacity,
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @staticmethod
    def _total_size(
        shards: int, lanes: int, req_capacity: int, ev_capacity: int,
        journal_capacity: int, state_capacity: int,
    ) -> int:
        return (
            _SEG_HEADER_SIZE
            + shards * ShardHeader.region_size()
            + shards * lanes * SlotRing.region_size(req_capacity)
            + shards * SlotRing.region_size(ev_capacity)
            + shards * JournalRing.region_size(journal_capacity)
            + shards * ShardSnapshot.region_size(lanes, state_capacity)
        )

    # -- views ------------------------------------------------------------

    def _headers_base(self) -> int:
        return _SEG_HEADER_SIZE

    def _requests_base(self) -> int:
        return self._headers_base() + self.shards * ShardHeader.region_size()

    def _events_base(self) -> int:
        return self._requests_base() + self.shards * self.lanes * SlotRing.region_size(
            self.req_capacity
        )

    def _journals_base(self) -> int:
        return self._events_base() + self.shards * SlotRing.region_size(self.ev_capacity)

    def _snapshots_base(self) -> int:
        return self._journals_base() + self.shards * JournalRing.region_size(
            self.journal_capacity
        )

    def header(self, shard: int) -> ShardHeader:
        self._check_shard(shard)
        return ShardHeader(
            self._shm.buf, self._headers_base() + shard * ShardHeader.region_size()
        )

    def request_ring(self, shard: int, lane: int) -> SlotRing:
        self._check_shard(shard)
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} outside [0, {self.lanes})")
        offset = self._requests_base() + (
            shard * self.lanes + lane
        ) * SlotRing.region_size(self.req_capacity)
        return SlotRing(self._shm.buf, offset, self.req_capacity)

    def event_ring(self, shard: int) -> SlotRing:
        self._check_shard(shard)
        offset = self._events_base() + shard * SlotRing.region_size(self.ev_capacity)
        return SlotRing(self._shm.buf, offset, self.ev_capacity)

    def journal(self, shard: int) -> JournalRing:
        self._check_shard(shard)
        offset = self._journals_base() + shard * JournalRing.region_size(
            self.journal_capacity
        )
        return JournalRing(self._shm.buf, offset, self.journal_capacity)

    def snapshot(self, shard: int) -> ShardSnapshot:
        self._check_shard(shard)
        offset = self._snapshots_base() + shard * ShardSnapshot.region_size(
            self.lanes, self.state_capacity
        )
        return ShardSnapshot(self._shm.buf, offset, self.lanes, self.state_capacity)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise IndexError(f"shard {shard} outside [0, {self.shards})")

    # -- audit -------------------------------------------------------------

    def audit(self) -> dict:
        """Census every ring; ``torn == 0`` is the crash-safety contract."""
        torn = committed = 0
        rings = 0
        for s in range(self.shards):
            audits = [self.event_ring(s).audit(), self.journal(s).audit()]
            audits.extend(
                self.request_ring(s, lane).audit() for lane in range(self.lanes)
            )
            for a in audits:
                torn += a.torn
                committed += a.committed
                rings += 1
        return {"rings": rings, "torn": torn, "pending": committed}

    # -- lifetime ----------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owns:
            self._shm.unlink()

    def __enter__(self) -> "ServiceSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owns:
            self.unlink()
