"""Shared-memory ring shards: the wire format of the live service.

One ``multiprocessing.shared_memory`` segment holds everything the
service's processes exchange: per-shard request lanes, per-shard event
rings, and per-shard headers publishing the queue top for two-choice
routing.  Three protocols live here, all designed so that a SIGKILLed
process can never corrupt what a survivor reads:

**Slot protocol (claim/commit).**  Every ring slot carries an absolute
sequence number.  A slot at ring position ``p`` reads ``seq == p`` while
free (the producer's *claim* is the observation that its own position is
free — single producer per ring, so the claim cannot race), the producer
writes the payload plus a checksum, and only then *commits* by storing
``seq = p + 1``.  The consumer accepts a slot only when ``seq == c + 1``
and recycles it with ``seq = c + capacity``.  A writer killed anywhere
before the commit store leaves ``seq`` unpublished, so the half-written
payload is invisible — there is no torn state a reader can observe, and
:meth:`SlotRing.audit` proves it after the fact by checksumming every
committed slot.

**Lane composition.**  Python cannot issue atomic read-modify-writes on
shared memory, so instead of an MPMC ring guarded by a lock (a kill
while holding it would wedge every peer), each (producer, shard) pair
gets its own single-producer/single-consumer lane and the shard owner
drains its lanes round-robin.  The lane mesh *is* the MPMC channel,
built from parts that need no atomics at all.  (CPython executes the
payload stores before the commit store in bytecode order, and x86/ARM64
TSO/release semantics keep that order visible across processes.)

**Header seqlock + fencing epoch.**  Each shard header publishes
``(top, size, heartbeat)`` under a seqlock (odd = write in progress) so
routers can read two shard tops without locks, and carries a fencing
``epoch`` bumped by every new owner generation — events stamped with a
stale epoch are from a zombie predecessor and can be fenced.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Tuple

#: Slot layout: absolute sequence number, opcode, label, Lamport clock,
#: intended-start and completion timestamps (monotonic ns), checksum.
SLOT = struct.Struct("<QQqQqqQ")
_SEQ = struct.Struct("<Q")

#: Request opcodes (client -> shard owner).
OP_INSERT = 1
OP_DELETE = 2
OP_STOP = 3

#: Event opcodes (shard owner -> collector).
EV_INSERT = 11
EV_DELETE = 12
EV_EMPTY = 13  # delete arrived while the shard heap was empty
EV_BYE = 14  # owner shut down cleanly; label carries the residual size

#: Published "top" for an empty shard: worse than every real label.
TOP_EMPTY = 1 << 62

_MASK64 = (1 << 64) - 1

#: Shard header layout: fencing epoch, seqlock, top, size, heartbeat ns.
HEADER = struct.Struct("<QQqqq")

_SEG_HEADER = struct.Struct("<QIIIII")
_SEG_HEADER_SIZE = 32
_MAGIC = 0x4D51534852564D51  # "MQSHRVMQ"


def slot_checksum(op: int, label: int, clock: int, t0_ns: int, t1_ns: int) -> int:
    """FNV-style fold of a slot payload (``hash()`` is salted; this is not)."""
    h = 0x9E3779B97F4A7C15
    for v in (op, label & _MASK64, clock, t0_ns & _MASK64, t1_ns & _MASK64):
        h = ((h ^ v) * 0x100000001B3) & _MASK64
    return h or 1


class TornSlotError(RuntimeError):
    """A committed slot failed its checksum — the protocol was violated."""


@dataclass
class RingAudit:
    """Post-mortem census of one ring's slots."""

    capacity: int
    committed: int  # published but not yet consumed
    free: int
    torn: int  # invalid sequence residue or checksum mismatch

    @property
    def ok(self) -> bool:
        return self.torn == 0


class SlotRing:
    """A fixed-capacity SPSC ring over a shared-memory region.

    Producer and consumer positions are plain Python attributes — each
    side is a single process, and a restarted process recovers them from
    the slot sequence numbers alone (:meth:`recover`).
    """

    def __init__(self, buf, offset: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf = buf
        self._offset = offset
        self.capacity = capacity
        self._head = 0  # next producer position
        self._tail = 0  # next consumer position

    @staticmethod
    def region_size(capacity: int) -> int:
        """Bytes one ring of ``capacity`` slots occupies."""
        return capacity * SLOT.size

    def _slot_offset(self, position: int) -> int:
        return self._offset + (position % self.capacity) * SLOT.size

    def initialize(self) -> None:
        """Format every slot as free (slot ``i`` gets ``seq = i``)."""
        for i in range(self.capacity):
            SLOT.pack_into(self._buf, self._offset + i * SLOT.size, i, 0, 0, 0, 0, 0, 0)

    # -- producer side ---------------------------------------------------

    def try_push(
        self, op: int, label: int, clock: int = 0, t0_ns: int = 0, t1_ns: int = 0
    ) -> bool:
        """Claim the head slot, write the payload, commit.  False = full."""
        p = self._head
        off = self._slot_offset(p)
        (seq,) = _SEQ.unpack_from(self._buf, off)
        if seq != p:
            return False  # ring full (or we lost our position: recover())
        # Claimed: payload first, checksum included ...
        SLOT.pack_into(
            self._buf, off, seq, op, label, clock, t0_ns, t1_ns,
            slot_checksum(op, label, clock, t0_ns, t1_ns),
        )
        # ... and only then the commit store that publishes the slot.
        _SEQ.pack_into(self._buf, off, p + 1)
        self._head = p + 1
        return True

    # -- consumer side ---------------------------------------------------

    def try_pop(self) -> Optional[Tuple[int, int, int, int, int]]:
        """Consume the tail slot; ``None`` when nothing is committed.

        Returns ``(op, label, clock, t0_ns, t1_ns)``.  Raises
        :class:`TornSlotError` if a committed slot fails its checksum —
        by construction of the commit ordering this cannot happen from a
        crash, only from a protocol bug, so it is loud.
        """
        c = self._tail
        off = self._slot_offset(c)
        seq, op, label, clock, t0_ns, t1_ns, checksum = SLOT.unpack_from(self._buf, off)
        if seq != c + 1:
            return None
        if checksum != slot_checksum(op, label, clock, t0_ns, t1_ns):
            raise TornSlotError(
                f"slot at position {c} committed with a bad checksum (op={op})"
            )
        _SEQ.pack_into(self._buf, off, c + self.capacity)
        self._tail = c + 1
        return op, label, clock, t0_ns, t1_ns

    # -- crash recovery and audit ----------------------------------------

    def recover(self) -> None:
        """Rederive producer/consumer positions from the slot sequences.

        Used by a process attaching to a ring mid-life (e.g. a restarted
        owner, or the post-kill auditor): free slots carry their future
        producer position, committed slots carry ``position + 1``.
        """
        free_positions: List[int] = []
        committed_positions: List[int] = []
        for i in range(self.capacity):
            (seq,) = _SEQ.unpack_from(self._buf, self._offset + i * SLOT.size)
            if (seq - i) % self.capacity == 0:
                free_positions.append(seq)
            elif (seq - i - 1) % self.capacity == 0:
                committed_positions.append(seq - 1)
        if free_positions:
            self._head = min(free_positions)
        elif committed_positions:
            self._head = min(committed_positions) + self.capacity
        else:
            self._head = 0
        self._tail = min(committed_positions) if committed_positions else self._head

    def audit(self) -> RingAudit:
        """Census every slot; a nonzero ``torn`` count is a protocol breach."""
        committed = free = torn = 0
        for i in range(self.capacity):
            off = self._offset + i * SLOT.size
            seq, op, label, clock, t0_ns, t1_ns, checksum = SLOT.unpack_from(self._buf, off)
            if (seq - i) % self.capacity == 0:
                free += 1
            elif (seq - i - 1) % self.capacity == 0:
                if checksum == slot_checksum(op, label, clock, t0_ns, t1_ns):
                    committed += 1
                else:
                    torn += 1
            else:
                torn += 1
        return RingAudit(capacity=self.capacity, committed=committed, free=free, torn=torn)


class ShardHeader:
    """Seqlock-published ``(top, size, heartbeat)`` plus the fencing epoch."""

    def __init__(self, buf, offset: int) -> None:
        self._buf = buf
        self._offset = offset

    @staticmethod
    def region_size() -> int:
        return HEADER.size

    def initialize(self) -> None:
        HEADER.pack_into(self._buf, self._offset, 0, 0, TOP_EMPTY, 0, 0)

    # -- owner side ------------------------------------------------------

    def bump_epoch(self) -> int:
        """Fence out any predecessor: the new owner generation's token."""
        epoch, = struct.unpack_from("<Q", self._buf, self._offset)
        struct.pack_into("<Q", self._buf, self._offset, epoch + 1)
        return epoch + 1

    def publish(self, top: int, size: int, heartbeat_ns: int) -> None:
        """Seqlock write: odd seq while the fields are in flight."""
        off = self._offset
        (seqlock,) = struct.unpack_from("<Q", self._buf, off + 8)
        struct.pack_into("<Q", self._buf, off + 8, seqlock + 1)  # odd: writing
        struct.pack_into("<qqq", self._buf, off + 16, top, size, heartbeat_ns)
        struct.pack_into("<Q", self._buf, off + 8, seqlock + 2)  # even: stable

    # -- reader side -----------------------------------------------------

    def read(self, max_tries: int = 64) -> Tuple[int, int, int, int]:
        """Consistent ``(epoch, top, size, heartbeat_ns)`` snapshot."""
        for _ in range(max_tries):
            epoch, seq1 = struct.unpack_from("<QQ", self._buf, self._offset)
            if seq1 % 2:
                continue
            top, size, heartbeat_ns = struct.unpack_from(
                "<qqq", self._buf, self._offset + 16
            )
            (seq2,) = struct.unpack_from("<Q", self._buf, self._offset + 8)
            if seq1 == seq2:
                return epoch, top, size, heartbeat_ns
        # The writer died mid-publish: the stale snapshot is still usable
        # for routing (tops are advisory), so return it rather than hang.
        top, size, heartbeat_ns = struct.unpack_from("<qqq", self._buf, self._offset + 16)
        return epoch, top, size, heartbeat_ns

    def epoch(self) -> int:
        (epoch,) = struct.unpack_from("<Q", self._buf, self._offset)
        return epoch


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the block with the resource
    tracker even when merely attaching (bpo-39959), so a child exiting
    would unlink a segment the creator still owns.  Suppress the
    registration for the duration of the attach (unregistering *after*
    would race the tracker and double-remove when creator and attacher
    share a process): only the creating process manages unlink.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class ServiceSegment:
    """Layout and lifetime of the one shared-memory block of a service run.

    Geometry: ``lanes`` producers (loadgen workers plus the control lane
    the parent uses for prefill/shutdown) times ``shards`` request rings,
    one event ring per shard, one header per shard.  Any process can
    attach by name and reconstruct every view from the stored geometry.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owns: bool,
        shards: int, lanes: int, req_capacity: int, ev_capacity: int,
    ) -> None:
        self._shm = shm
        self._owns = owns
        self.shards = shards
        self.lanes = lanes
        self.req_capacity = req_capacity
        self.ev_capacity = ev_capacity

    # -- creation / attachment -------------------------------------------

    @classmethod
    def create(
        cls,
        shards: int,
        lanes: int,
        req_capacity: int = 2048,
        ev_capacity: int = 8192,
        name: Optional[str] = None,
    ) -> "ServiceSegment":
        if shards <= 0 or lanes <= 0:
            raise ValueError(f"need positive geometry, got shards={shards}, lanes={lanes}")
        total = cls._total_size(shards, lanes, req_capacity, ev_capacity)
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        seg = cls(
            shm, owns=True, shards=shards, lanes=lanes,
            req_capacity=req_capacity, ev_capacity=ev_capacity,
        )
        _SEG_HEADER.pack_into(
            shm.buf, 0, _MAGIC, 1, shards, lanes, req_capacity, ev_capacity
        )
        for s in range(shards):
            seg.header(s).initialize()
            seg.event_ring(s).initialize()
            for lane in range(lanes):
                seg.request_ring(s, lane).initialize()
        return seg

    @classmethod
    def attach(cls, name: str) -> "ServiceSegment":
        shm = _attach_segment(name)
        magic, version, shards, lanes, req_capacity, ev_capacity = _SEG_HEADER.unpack_from(
            shm.buf, 0
        )
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"shared segment {name!r} is not a repro.service segment")
        return cls(
            shm, owns=False, shards=shards, lanes=lanes,
            req_capacity=req_capacity, ev_capacity=ev_capacity,
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @staticmethod
    def _total_size(shards: int, lanes: int, req_capacity: int, ev_capacity: int) -> int:
        return (
            _SEG_HEADER_SIZE
            + shards * ShardHeader.region_size()
            + shards * lanes * SlotRing.region_size(req_capacity)
            + shards * SlotRing.region_size(ev_capacity)
        )

    # -- views ------------------------------------------------------------

    def _headers_base(self) -> int:
        return _SEG_HEADER_SIZE

    def _requests_base(self) -> int:
        return self._headers_base() + self.shards * ShardHeader.region_size()

    def _events_base(self) -> int:
        return self._requests_base() + self.shards * self.lanes * SlotRing.region_size(
            self.req_capacity
        )

    def header(self, shard: int) -> ShardHeader:
        self._check_shard(shard)
        return ShardHeader(
            self._shm.buf, self._headers_base() + shard * ShardHeader.region_size()
        )

    def request_ring(self, shard: int, lane: int) -> SlotRing:
        self._check_shard(shard)
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} outside [0, {self.lanes})")
        offset = self._requests_base() + (
            shard * self.lanes + lane
        ) * SlotRing.region_size(self.req_capacity)
        return SlotRing(self._shm.buf, offset, self.req_capacity)

    def event_ring(self, shard: int) -> SlotRing:
        self._check_shard(shard)
        offset = self._events_base() + shard * SlotRing.region_size(self.ev_capacity)
        return SlotRing(self._shm.buf, offset, self.ev_capacity)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise IndexError(f"shard {shard} outside [0, {self.shards})")

    # -- audit -------------------------------------------------------------

    def audit(self) -> dict:
        """Census every ring; ``torn == 0`` is the crash-safety contract."""
        torn = committed = 0
        rings = 0
        for s in range(self.shards):
            audits = [self.event_ring(s).audit()]
            audits.extend(
                self.request_ring(s, lane).audit() for lane in range(self.lanes)
            )
            for a in audits:
                torn += a.torn
                committed += a.committed
                rings += 1
        return {"rings": rings, "torn": torn, "pending": committed}

    # -- lifetime ----------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owns:
            self._shm.unlink()

    def __enter__(self) -> "ServiceSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owns:
            self.unlink()
