"""Self-healing for the live service: detection, fencing, respawn, chaos.

The :class:`Supervisor` watches every shard header's heartbeat from the
parent process and turns "an owner stopped publishing" into a completed
*takeover*: fence the old generation by bumping the header epoch, make
sure the predecessor can no longer write (SIGKILL for a kill-mode stall,
or — in zombie/fence mode — SIGCONT it into the fence and wait for it to
die of :class:`~repro.service.shm.FencedOwnerError`), then respawn the
owner, which rebuilds its exact heap from the durable snapshot+journal
(:func:`repro.service.server.recover_shard_state`) and re-emits any
journaled-but-unpublished events.

**Why fence mode serializes zombie exit before successor boot.**  Python
cannot CAS shared memory, so a zombie frozen *between* its claim check
and a payload/commit store could, if woken concurrently with a live
successor, scribble over a slot the successor now owns.  The supervisor
therefore never lets the two overlap: the zombie is woken into an
already-bumped epoch while the shard has no other owner, its first fence
check kills it (any op it managed to commit pre-fence is an ordinary
predecessor op the successor replays from the journal), and only after
it is reaped does the successor start.  This is the lease/STONITH
discipline from the multi-host orchestrator, applied in-process.

The :class:`ChaosInjector` drives a deterministic seeded schedule of
SIGKILLs, SIGSTOP stalls, and SIGSTOP zombies against the live cluster —
the standing harness behind ``repro serve --chaos`` — and
:func:`run_chaos_service` packages a whole supervised-chaos experiment,
whose result carries the conservation audit proving no op was lost or
double-served across the crash cycles.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.service.loadgen import ScheduleSpec
from repro.service.server import ServiceCluster, recover_shard_state
from repro.service.shm import ServiceSegment
from repro.utils.rngtools import as_generator

_NS = 1_000_000_000

#: Wall-clock-derived fields of incident records and chaos manifests
#: (DET102): measurement, not result — exempt from determinism
#: comparison.
SUPERVISOR_VOLATILE_KEYS = frozenset(
    {
        "detected_ns",
        "recovered_ns",
        "recovery_s",
        "heartbeat_age_s",
        "zombie_pid",
        "pid",
        "fired_at_s",
        "replayed",
        "recovered_heap",
    }
)

STALL_ACTIONS = ("kill", "fence")


@dataclass
class RecoveryIncident:
    """One completed (or abandoned) takeover of a shard."""

    shard: int
    kind: str  # "dead" (process gone) or "stalled" (alive, heartbeat stale)
    action: str  # "respawn", "kill-respawn", or "fence-respawn"
    detected_ns: int
    recovered_ns: Optional[int]
    old_epoch: int
    fence_epoch: int
    heartbeat_age_s: Optional[float]  # None: the owner never published one
    zombie_pid: Optional[int] = None
    zombie_exitcode: Optional[int] = None
    takeover_ok: bool = True
    replayed: Optional[int] = None  # journal entries the successor replays
    recovered_heap: Optional[int] = None  # heap size handed to the successor

    def as_dict(self) -> dict:
        out = asdict(self)
        out["recovery_s"] = (
            (self.recovered_ns - self.detected_ns) / _NS
            if self.recovered_ns is not None
            else None
        )
        return out


class Supervisor(threading.Thread):
    """Detect stale shard heartbeats and run fenced takeovers.

    ``dead_after_s`` is the heartbeat staleness that counts as death;
    an owner that has *never* published is given ``startup_grace_s``
    from supervisor start before the same verdict applies (closing the
    heartbeat==0-is-alive-forever hole from the client side too).
    ``stall_action`` picks what happens to an owner that is alive but
    silent: ``"kill"`` (SIGKILL, then fence+respawn — the default
    STONITH) or ``"fence"`` (bump the epoch, SIGCONT the zombie into it,
    wait for it to die fenced, then respawn — the zombie-semantics path
    the chaos harness exercises).
    """

    def __init__(
        self,
        segment: ServiceSegment,
        cluster: ServiceCluster,
        dead_after_s: float = 0.5,
        poll_s: float = 0.02,
        startup_grace_s: Optional[float] = None,
        stall_action: str = "kill",
        respawn_limit: int = 16,
        zombie_exit_timeout_s: float = 10.0,
        respawn_grace_s: float = 10.0,
    ) -> None:
        if stall_action not in STALL_ACTIONS:
            raise ValueError(
                f"unknown stall_action {stall_action!r}: expected one of {STALL_ACTIONS}"
            )
        super().__init__(name="service-supervisor", daemon=True)
        self._segment = segment
        self._cluster = cluster
        self.dead_after_s = float(dead_after_s)
        self.poll_s = float(poll_s)
        self.startup_grace_s = (
            max(1.0, 4.0 * dead_after_s) if startup_grace_s is None else startup_grace_s
        )
        self.stall_action = stall_action
        self.respawn_limit = respawn_limit
        self.zombie_exit_timeout_s = zombie_exit_timeout_s
        self.respawn_grace_s = respawn_grace_s
        self.incidents: List[RecoveryIncident] = []
        self.takeovers = 0
        self._respawns = [0] * segment.shards
        self._abandoned: Set[int] = set()
        # shard -> (incident awaiting its successor's first heartbeat,
        #           monotonic_ns of the respawn).  Resolved by the monitor
        #           loop so takeovers on different shards never serialize.
        self._pending: Dict[int, Tuple[RecoveryIncident, int]] = {}
        self._stop_evt = threading.Event()
        self._active = True
        self._boot_ns: Optional[int] = None

    @property
    def active(self) -> bool:
        """True while takeovers may still happen (collector stays patient)."""
        return self._active

    def stop(self) -> None:
        self._active = False
        self._stop_evt.set()

    # -- detection --------------------------------------------------------

    def _heartbeat_age_s(self, shard: int, now_ns: int) -> Optional[float]:
        heartbeat_ns = self._segment.header(shard).read()[3]
        if heartbeat_ns == 0:
            return None
        return (now_ns - heartbeat_ns) / _NS

    def _looks_dead(self, shard: int, now_ns: int) -> bool:
        age = self._heartbeat_age_s(shard, now_ns)
        if age is None:
            assert self._boot_ns is not None
            return (now_ns - self._boot_ns) / _NS > self.startup_grace_s
        return age > self.dead_after_s

    def _shard_completed(self, shard: int) -> bool:
        """A cleanly-exited owner (every lane STOPped) must not be respawned."""
        snap = self._segment.snapshot(shard).read()
        lanes = self._segment.lanes
        return snap.stopped_mask == (1 << lanes) - 1

    def run(self) -> None:
        self._boot_ns = time.monotonic_ns()
        while not self._stop_evt.wait(self.poll_s):
            now_ns = time.monotonic_ns()
            self._settle_pending(now_ns)
            for shard in range(self._segment.shards):
                if shard in self._abandoned or shard in self._pending:
                    continue
                if not self._looks_dead(shard, now_ns):
                    continue
                if self._shard_completed(shard):
                    continue
                self._recover(shard, self._heartbeat_age_s(shard, now_ns), now_ns)
                if self._stop_evt.is_set():
                    break

    # -- recovery ---------------------------------------------------------

    @staticmethod
    def _proc_stopped(pid: int) -> bool:
        """True when ``pid`` is SIGSTOPped (Linux state ``T``); False on
        any doubt — this is an accelerator for re-detection, never the
        sole evidence."""
        try:
            with open(f"/proc/{pid}/stat", "rb") as f:
                stat = f.read()
            # Field 3, after the parenthesized comm (which may hold spaces).
            return stat.rpartition(b")")[2].split()[0] == b"T"
        except (OSError, IndexError):
            return False

    def _settle_pending(self, now_ns: int) -> None:
        """Resolve in-flight takeovers: a successor's first heartbeat marks
        the incident recovered; a successor that dies first (chaos can kill
        it before it ever publishes), is SIGSTOPped pre-heartbeat (a
        never-published successor has no liveness to wait out — only its
        process state can exonerate it), or never publishes within
        ``respawn_grace_s`` goes back under ordinary dead-detection (and a
        fresh incident retries it, up to ``respawn_limit``)."""
        for shard, (incident, respawn_ns) in list(self._pending.items()):
            heartbeat_ns = self._segment.header(shard).read()[3]
            proc = self._cluster.processes[shard]
            if heartbeat_ns > incident.detected_ns:
                incident.recovered_ns = now_ns
                incident.takeover_ok = True
                self.takeovers += 1
                del self._pending[shard]
            elif not proc.is_alive():
                del self._pending[shard]
            elif self._proc_stopped(proc.pid):
                del self._pending[shard]
            elif (now_ns - respawn_ns) / _NS > self.respawn_grace_s:
                del self._pending[shard]

    def _recover(
        self, shard: int, heartbeat_age_s: Optional[float], detected_ns: int
    ) -> None:
        header = self._segment.header(shard)
        old_epoch = header.epoch()
        proc = self._cluster.processes[shard]
        stalled = proc.is_alive()
        kind = "stalled" if stalled else "dead"
        zombie_pid: Optional[int] = None
        zombie_exitcode: Optional[int] = None
        if stalled and self.stall_action == "kill":
            action = "kill-respawn"
            self._cluster.kill(shard)  # STONITH first, fence second
            fence_epoch = header.bump_epoch()
        elif stalled:
            # Fence mode: wake the zombie *into* the fence while the shard
            # has no other owner, and only respawn once it is reaped —
            # see the module docstring for why this must serialize.
            action = "fence-respawn"
            zombie_pid = proc.pid
            fence_epoch = header.bump_epoch()
            try:
                os.kill(proc.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            proc.join(timeout=self.zombie_exit_timeout_s)
            if proc.is_alive():  # never noticed the fence: fall back to STONITH
                proc.kill()
                proc.join()
            zombie_exitcode = proc.exitcode
        else:
            action = "respawn"
            proc.join()  # reap the corpse before a same-name successor starts
            fence_epoch = header.bump_epoch()

        # What will the successor rebuild?  recover_shard_state is a pure
        # function of the (now quiescent) shm, so the supervisor can read
        # the same answer out-of-process and put it on the incident record.
        replayed: Optional[int] = None
        recovered_heap: Optional[int] = None
        try:
            state = recover_shard_state(self._segment, shard)
            replayed = state.replayed
            recovered_heap = len(state.heap)
        except Exception:
            pass  # recovery itself will surface a real protocol breach

        self._respawns[shard] += 1
        incident = RecoveryIncident(
            shard=shard,
            kind=kind,
            action=action,
            detected_ns=detected_ns,
            recovered_ns=None,
            old_epoch=old_epoch,
            fence_epoch=fence_epoch,
            heartbeat_age_s=heartbeat_age_s,
            zombie_pid=zombie_pid,
            zombie_exitcode=zombie_exitcode,
            takeover_ok=False,
            replayed=replayed,
            recovered_heap=recovered_heap,
        )
        self.incidents.append(incident)
        if self._respawns[shard] > self.respawn_limit:
            self._abandoned.add(shard)
        else:
            self._cluster.respawn(shard)
            # Settled asynchronously by :meth:`_settle_pending` so a slow
            # boot on one shard never delays detection on another.
            self._pending[shard] = (incident, time.monotonic_ns())

    # -- shutdown coordination -------------------------------------------

    def await_healthy(self, timeout_s: float = 30.0) -> bool:
        """Block until every non-abandoned shard heartbeats fresh.

        Also waits out ``_pending``: the monitor thread must get a tick
        to credit an in-flight takeover before the caller stops us, or
        the final recovery of a run goes uncounted.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            now_ns = time.monotonic_ns()
            healthy = not self._pending and all(
                shard in self._abandoned or not self._looks_dead(shard, now_ns)
                for shard in range(self._segment.shards)
            )
            if healthy:
                return True
            time.sleep(self.poll_s)
        return False


# -- chaos ---------------------------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic seeded schedule of faults against a live cluster.

    ``kills`` SIGKILL the current owner generation of a random shard;
    ``stalls`` SIGSTOP it and SIGCONT it ``stall_s`` later (the injector
    resumes it — death is only observed if the stall outlives the
    supervisor's ``dead_after_s``); ``zombies`` SIGSTOP it and *leave it
    stopped* — the supervisor's fence-mode takeover wakes it into the
    bumped epoch and it must die of :class:`FencedOwnerError`.  Fault
    times are spread over ``[start_s, start_s + window_s)`` after
    traffic starts; everything is a pure function of ``seed``.
    """

    kills: int = 3
    stalls: int = 0
    zombies: int = 1
    seed: int = 0
    start_s: float = 0.25
    window_s: float = 1.2
    stall_s: float = 0.9

    def build(self, shards: int) -> List[dict]:
        """The concrete fault list for a ``shards``-wide cluster."""
        if min(self.kills, self.stalls, self.zombies) < 0:
            raise ValueError("fault counts must be non-negative")
        rng = as_generator(self.seed)
        kinds = ["kill"] * self.kills + ["stall"] * self.stalls + (
            ["zombie"] * self.zombies
        )
        n = len(kinds)
        kinds = [kinds[i] for i in rng.permutation(n)]
        times = sorted(
            float(self.start_s + self.window_s * t) for t in rng.random(n)
        )
        ops = [
            {
                "id": i,
                "kind": kind,
                "shard": int(rng.integers(shards)),
                "at_s": at_s,
            }
            for i, (kind, at_s) in enumerate(zip(kinds, times))
        ]
        for op in list(ops):
            if op["kind"] == "stall":
                ops.append(
                    {
                        "id": op["id"],
                        "kind": "cont",
                        "shard": op["shard"],
                        "at_s": op["at_s"] + self.stall_s,
                    }
                )
        return sorted(ops, key=lambda op: (op["at_s"], op["id"]))


class ChaosInjector(threading.Thread):
    """Execute a :class:`ChaosSpec` against the cluster, on schedule.

    Fault times are relative to ``start_ns`` (the loadgens' traffic
    epoch) so the schedule is deterministic relative to offered load.
    Every fired fault is recorded in :meth:`manifest` along with the pid
    it hit — the artifact the CI chaos job uploads.
    """

    def __init__(
        self,
        cluster: ServiceCluster,
        segment: ServiceSegment,
        spec: "ChaosSpec",
        start_ns: int,
    ) -> None:
        super().__init__(name="chaos-injector", daemon=True)
        self.spec = spec
        self._cluster = cluster
        self._segment = segment
        self._ops = spec.build(segment.shards)
        self._start_ns = start_ns
        self._stopped: Dict[int, object] = {}
        self._abort = threading.Event()
        self.executed: List[dict] = []

    def abort(self) -> None:
        self._abort.set()

    def run(self) -> None:
        for op in self._ops:
            target_ns = self._start_ns + int(op["at_s"] * _NS)
            while not self._abort.is_set():
                remaining = (target_ns - time.monotonic_ns()) / _NS
                if remaining <= 0:
                    break
                self._abort.wait(min(remaining, 0.05))
            if self._abort.is_set():
                return
            self._fire(op)

    def _live_owner(self, shard: int, timeout_s: float = 5.0, booted: bool = False):
        """The shard's current owner, waiting out an in-flight takeover.

        Two faults drawn close together can target the same shard; firing
        the second at the first one's corpse wastes it.  Waiting for the
        supervisor's respawn keeps every scheduled fault effective (and
        the delay is recorded in the manifest via ``fired_at_s``).

        ``booted`` additionally waits for a heartbeat published *during
        this wait*.  SIGSTOP-based faults need it: stopping a spawned
        successor before it runs ``bump_epoch`` freezes it pre-fence, so
        on SIGCONT it would bump *past* the supervisor's fence epoch and
        resume as the legitimate owner instead of dying fenced.  A fresh
        heartbeat proves the generation is past boot (epoch bumped,
        serving), because only a live serving owner publishes.
        """
        deadline = time.monotonic() + timeout_s
        since_ns = time.monotonic_ns()
        while not self._abort.is_set() and time.monotonic() < deadline:
            proc = self._cluster.processes[shard]
            if proc.is_alive():
                if not booted:
                    return proc
                heartbeat_ns = self._segment.header(shard).read()[3]
                if heartbeat_ns > since_ns:
                    return proc
            time.sleep(0.02)
        return self._cluster.processes[shard]

    def _fire(self, op: dict) -> None:
        shard = op["shard"]
        record = dict(op)
        if op["kind"] == "kill":
            proc = self._live_owner(shard)
            record["pid"] = proc.pid
            proc.kill()
        elif op["kind"] in ("stall", "zombie"):
            proc = self._live_owner(shard, booted=True)
            record["pid"] = proc.pid
            try:
                os.kill(proc.pid, signal.SIGSTOP)
                self._stopped[op["id"]] = proc
            except ProcessLookupError:
                record["kind"] = f"{op['kind']}-missed"  # owner already gone
        elif op["kind"] == "cont":
            proc = self._stopped.pop(op["id"], None)
            record["pid"] = getattr(proc, "pid", None)
            if proc is not None and proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
        record["fired_at_s"] = (time.monotonic_ns() - self._start_ns) / _NS
        self.executed.append(record)

    def manifest(self) -> dict:
        return {
            "spec": asdict(self.spec),
            "planned": [dict(op) for op in self._ops],
            "events": [dict(ev) for ev in self.executed],
        }


def run_chaos_service(
    shards: int,
    workers: int,
    spec: ScheduleSpec,
    chaos: Optional[ChaosSpec] = None,
    beta: float = 1.0,
    gamma: float = 0.0,
    policy: str = "mq",
    seed: int = 0,
    dead_after_s: float = 0.35,
    snapshot_every: int = 256,
    rank_sample_every: int = 4,
) -> dict:
    """One supervised service run under a deterministic chaos schedule.

    The standing harness behind ``repro serve --chaos``: a live cluster,
    the seeded kill/stall/zombie schedule, supervised takeovers, and a
    result whose ``conservation`` block proves (from the journal) that
    no op was lost or double-served across the crash cycles and whose
    ``supervision`` block records every incident.
    """
    from repro.service.server import run_service

    return run_service(
        shards,
        workers,
        spec,
        beta=beta,
        gamma=gamma,
        policy=policy,
        seed=seed,
        supervise=True,
        chaos_spec=ChaosSpec() if chaos is None else chaos,
        dead_after_s=dead_after_s,
        snapshot_every=snapshot_every,
        rank_sample_every=rank_sample_every,
    )
