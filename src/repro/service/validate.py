"""Cross-validation: the live service against the discrete-event simulator.

The simulator predicts *shapes*, not wall-clock numbers: which policies
keep rank cost flat as contention grows, and how rank quality orders
across beta.  :func:`compare_service_and_sim` runs the same
``(n, beta, gamma, clients)`` grid on both systems and checks that the
shapes agree — the hard criterion is that the service's mean-rank
ordering across beta matches the simulator's (more two-choice, better
rank), with the KS distance between the two rank distributions reported
alongside as a soft diagnostic (the service adds real scheduling noise
the simulator's adversary does not model, so exact distributional parity
is not expected, only shape agreement).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.stats import ks_2sample, rank_summary
from repro.service.loadgen import ScheduleSpec
from repro.service.server import run_service

#: Per-side cap on KS sample sizes (matches ``repro.vector.sweep``'s
#: rationale: rank streams are autocorrelated, so the test is fed thin,
#: evenly spaced subsamples).
KS_CAP = 2_000


def _thin(values: np.ndarray, cap: int = KS_CAP) -> np.ndarray:
    values = np.asarray(values)
    if values.size <= cap:
        return values
    idx = np.unique(np.round(np.linspace(0, values.size - 1, num=cap)).astype(np.intp))
    return values[idx]


def _sim_ranks(n: int, beta: float, clients: int, ops: int, prefill: int, seed: int) -> np.ndarray:
    """Rank costs of the simulator on the matched configuration."""
    from repro.concurrent import ConcurrentMultiQueue, OpRecorder
    from repro.sim.engine import Engine
    from repro.sim.workload import AlternatingWorkload

    recorder = OpRecorder()
    engine = Engine()
    model = ConcurrentMultiQueue(engine, n, beta=beta, rng=seed, recorder=recorder)
    model.prefill(np.random.default_rng(seed).integers(2**40, size=prefill))
    per_thread = max(1, ops // (2 * clients))  # one insert + one delete per op pair
    AlternatingWorkload(model, clients, per_thread, rng=seed + 1).spawn_on(engine)
    engine.run()
    return np.asarray(recorder.rank_trace().ranks)


def compare_service_and_sim(
    shards: int,
    workers: int,
    betas: Sequence[float] = (0.0, 0.5, 1.0),
    ops: int = 4_000,
    prefill: int = 512,
    seed: int = 0,
    gamma: float = 0.0,
    rate: float = 2_000.0,
    rank_sample_every: int = 4,
) -> dict:
    """Run the beta grid on both systems and check shape agreement.

    The service runs *paced* (``rate`` ops/s, below saturation), not
    closed-throttle: rank quality is only comparable to the simulator
    when routing decisions execute promptly.  Under flood, deep request
    backlogs mean a delete's two-choice probe is acted on long after it
    was made, and stale choices herd onto one shard — a real phenomenon
    worth measuring, but a different experiment than the paper's law.

    Returns one row per beta with both mean ranks and the KS comparison,
    plus ``ordering_agreement``: both systems must agree on which beta
    pays the worst mean rank, and the two mean-rank profiles must be
    positively rank-correlated across the grid.  (Exact permutation
    equality is deliberately not required: mid-grid betas often sit
    within noise of each other in both systems.)

    Each row also carries the *exact oracle* columns (``oracle_mean`` /
    ``oracle_ks`` / ``oracle_mean_err``): the closed-form stationary law
    at ``n = shards`` scored against the service's measured ranks.  They
    are ``None`` outside the oracle's model (``beta = 0``, ``gamma !=
    0``), and — like the sim comparison — a third, independent arbiter:
    the service adds real scheduling noise, so the oracle deviation is a
    diagnostic of *how far* the deployment drifts from the ideal law,
    not a pass/fail gate.
    """
    from repro.analysis.exact import oracle_row
    if len(betas) < 2:
        raise ValueError("need at least two betas to compare orderings")
    rows = []
    for i, beta in enumerate(betas):
        spec = ScheduleSpec(
            mode="poisson", ops=ops, prefill=prefill, rate=rate, seed=seed + i
        )
        svc = run_service(
            shards,
            workers,
            spec,
            beta=beta,
            gamma=gamma,
            seed=seed + i,
            rank_sample_every=rank_sample_every,
        )
        if svc["audit"]["torn"]:
            raise RuntimeError(f"service run at beta={beta} tore {svc['audit']['torn']} slots")
        svc_ranks = np.asarray(svc["rank_values"])
        sim_ranks = _sim_ranks(shards, beta, workers, ops, prefill, seed + i)
        ks_stat, ks_p = ks_2sample(_thin(svc_ranks), _thin(sim_ranks))
        rows.append(
            {
                "beta": beta,
                "service": rank_summary(svc_ranks),
                "sim": rank_summary(sim_ranks),
                "service_empties": svc["empties"],
                "ks_stat": ks_stat,
                "ks_p_value": ks_p,
                **oracle_row(shards, beta, _thin(svc_ranks, cap=20_000), gamma=gamma),
            }
        )
    svc_means = np.array([row["service"]["mean_rank"] for row in rows])
    sim_means = np.array([row["sim"]["mean_rank"] for row in rows])
    worst_agree = int(np.argmax(svc_means)) == int(np.argmax(sim_means))
    svc_order = np.argsort(np.argsort(svc_means, kind="stable"), kind="stable")
    sim_order = np.argsort(np.argsort(sim_means, kind="stable"), kind="stable")
    spearman = float(np.corrcoef(svc_order, sim_order)[0, 1])
    return {
        "shards": shards,
        "workers": workers,
        "betas": list(betas),
        "ops": ops,
        "prefill": prefill,
        "gamma": gamma,
        "rate": rate,
        "seed": seed,
        "rows": rows,
        "worst_beta_agreement": bool(worst_agree),
        "spearman_rho": spearman,
        "ordering_agreement": bool(worst_agree and spearman > 0),
    }
