"""Sharded (1+beta) MultiQueue served over shared memory.

Real worker *processes* — not simulated threads — exchange requests and
events through :mod:`repro.service.shm` rings: shard-owner processes
each own one priority shard, loadgen processes replay open-loop arrival
schedules against them, and the parent collects events for rank-quality
and tail-latency analysis.  :mod:`repro.service.validate` closes the
loop by running the same (n, beta, gamma, threads) grid on the
discrete-event simulator and checking shape agreement.
"""

from repro.service.shm import (
    OP_DELETE,
    OP_INSERT,
    OP_STOP,
    ServiceSegment,
    ShardHeader,
    SlotRing,
    TOP_EMPTY,
    TornSlotError,
)

__all__ = [
    "OP_DELETE",
    "OP_INSERT",
    "OP_STOP",
    "ServiceSegment",
    "ShardHeader",
    "SlotRing",
    "TOP_EMPTY",
    "TornSlotError",
]
