"""Sharded (1+beta) MultiQueue served over shared memory.

Real worker *processes* — not simulated threads — exchange requests and
events through :mod:`repro.service.shm` rings: shard-owner processes
each own one priority shard, loadgen processes replay open-loop arrival
schedules against them, and the parent collects events for rank-quality
and tail-latency analysis.  Every applied op is journaled and the heap
periodically snapshotted in the same segment, so
:mod:`repro.service.supervisor` can respawn a SIGKILLed owner with its
exact state, fence zombie predecessors by epoch, and prove op
conservation across crash cycles.  :mod:`repro.service.validate` closes
the loop by running the same (n, beta, gamma, threads) grid on the
discrete-event simulator and checking shape agreement.
"""

from repro.service.shm import (
    FencedOwnerError,
    JournalRing,
    OP_DELETE,
    OP_INSERT,
    OP_STOP,
    ServiceSegment,
    ShardHeader,
    ShardSnapshot,
    SlotRing,
    TOP_EMPTY,
    TornSlotError,
)

__all__ = [
    "FencedOwnerError",
    "JournalRing",
    "OP_DELETE",
    "OP_INSERT",
    "OP_STOP",
    "ServiceSegment",
    "ShardHeader",
    "ShardSnapshot",
    "SlotRing",
    "TOP_EMPTY",
    "TornSlotError",
]
