"""Seed sweeps and parameter sweeps for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence

import numpy as np


@dataclass
class ExperimentResult:
    """A named batch of result rows plus free-form metadata."""

    name: str
    rows: List[Dict] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def column(self, key: str) -> np.ndarray:
        """Extract one column across rows as an array."""
        return np.asarray([row[key] for row in self.rows])

    def __repr__(self) -> str:
        return f"ExperimentResult({self.name!r}, rows={len(self.rows)})"


def run_seeds(fn: Callable[[int], Any], seeds: Sequence[int]) -> List[Any]:
    """Run ``fn(seed)`` for each seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [fn(int(seed)) for seed in seeds]


def sweep(
    fn: Callable[..., Dict],
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    reduce: str = "mean",
    **fixed,
) -> List[Dict]:
    """Sweep one parameter, averaging numeric outputs across seeds.

    ``fn(param_name=value, seed=seed, **fixed)`` must return a dict of
    numbers (non-numeric values are taken from the first seed's run).
    Returns one row per parameter value with the parameter included.
    """
    if reduce not in ("mean", "median"):
        raise ValueError(f"unknown reduce {reduce!r}")
    rows: List[Dict] = []
    for value in values:
        outputs = [fn(**{param_name: value, "seed": int(s)}, **fixed) for s in seeds]
        row: Dict = {param_name: value}
        for key in outputs[0]:
            samples = [out[key] for out in outputs]
            if all(isinstance(s, (int, float, np.integer, np.floating)) for s in samples):
                agg = np.mean(samples) if reduce == "mean" else np.median(samples)
                row[key] = float(agg)
            else:
                row[key] = samples[0]
        rows.append(row)
    return rows
