"""Seed sweeps and parameter sweeps for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence

import numpy as np


@dataclass
class ExperimentResult:
    """A named batch of result rows plus free-form metadata."""

    name: str
    rows: List[Dict] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def column(self, key: str) -> np.ndarray:
        """Extract one column across rows as an array."""
        return np.asarray([row[key] for row in self.rows])

    def __repr__(self) -> str:
        return f"ExperimentResult({self.name!r}, rows={len(self.rows)})"


def run_seeds(fn: Callable[[int], Any], seeds: Sequence[int]) -> List[Any]:
    """Run ``fn(seed)`` for each seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [fn(int(seed)) for seed in seeds]


def make_reducer(reduce: str) -> Callable[[Sequence[float]], float]:
    """Resolve a reduction name to a function over per-seed samples.

    Accepts ``"mean"``, ``"median"``, or a percentile spec ``"pNN"`` /
    ``"pNN.N"`` (e.g. ``"p95"``, ``"p99.9"``).
    """
    if reduce == "mean":
        return lambda s: float(np.mean(s))
    if reduce == "median":
        return lambda s: float(np.median(s))
    if reduce.startswith("p"):
        try:
            q = float(reduce[1:])
        except ValueError:
            raise ValueError(f"unknown reduce {reduce!r}") from None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range in reduce {reduce!r}")
        return lambda s: float(np.percentile(s, q))
    raise ValueError(f"unknown reduce {reduce!r}")


def sweep(
    fn: Callable[..., Dict],
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    reduce: str = "mean",
    with_sd: bool = False,
    **fixed,
) -> List[Dict]:
    """Sweep one parameter, reducing numeric outputs across seeds.

    ``fn(param_name=value, seed=seed, **fixed)`` must return a dict of
    numbers (non-numeric values are taken from the first seed's run).
    Returns one row per parameter value with the parameter included.

    ``reduce`` may be ``"mean"``, ``"median"``, or a percentile such as
    ``"p95"``.  With ``with_sd=True`` each numeric column ``key`` gains a
    companion ``key_sd`` column holding the per-seed sample standard
    deviation (ddof=1; 0.0 for a single seed), so sweep tables carry
    their own error bars.
    """
    reducer = make_reducer(reduce)
    rows: List[Dict] = []
    for value in values:
        outputs = [fn(**{param_name: value, "seed": int(s)}, **fixed) for s in seeds]
        row: Dict = {param_name: value}
        for key in outputs[0]:
            samples = [out[key] for out in outputs]
            if all(isinstance(s, (int, float, np.integer, np.floating)) for s in samples):
                row[key] = reducer(samples)
                if with_sd:
                    sd = float(np.std(samples, ddof=1)) if len(samples) > 1 else 0.0
                    row[f"{key}_sd"] = sd
            else:
                row[key] = samples[0]
        rows.append(row)
    return rows
