"""Seed sweeps and parameter sweeps for experiments.

Execution routes through :mod:`repro.orchestrate`: serial in-process by
default (what tests exercise), with ``workers=N`` fanning cells out
across processes and ``cache_dir=...`` making the sweep resumable — a
killed run recomputes only the cells that never finished.
:func:`queue_worker` is the multi-host path: the grid becomes a
lease-based job queue on a shared filesystem and each invocation drains
cells as one worker (see docs/usage.md, "Running a sweep across
machines").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.orchestrate import (
    ResultCache,
    RetryPolicy,
    RunManifest,
    expand_grid,
    run_cells,
)


@dataclass
class ExperimentResult:
    """A named batch of result rows plus free-form metadata."""

    name: str
    rows: List[Dict] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def column(self, key: str) -> np.ndarray:
        """Extract one column across rows as an array.

        Raises a :class:`KeyError` naming the offending row when the
        rows are ragged, instead of an opaque bare-key error.
        """
        values = []
        for i, row in enumerate(self.rows):
            try:
                values.append(row[key])
            except KeyError:
                raise KeyError(
                    f"row {i} of ExperimentResult {self.name!r} has no column "
                    f"{key!r} (row keys: {sorted(row)})"
                ) from None
        return np.asarray(values)

    def __repr__(self) -> str:
        return f"ExperimentResult({self.name!r}, rows={len(self.rows)})"


def run_seeds(fn: Callable[[int], Any], seeds: Sequence[int]) -> List[Any]:
    """Run ``fn(seed)`` for each seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [fn(int(seed)) for seed in seeds]


def make_reducer(reduce: str) -> Callable[[Sequence[float]], float]:
    """Resolve a reduction name to a function over per-seed samples.

    Accepts ``"mean"``, ``"median"``, or a percentile spec ``"pNN"`` /
    ``"pNN.N"`` (e.g. ``"p95"``, ``"p99.9"``).
    """
    if reduce == "mean":
        return lambda s: float(np.mean(s))
    if reduce == "median":
        return lambda s: float(np.median(s))
    if reduce.startswith("p"):
        try:
            q = float(reduce[1:])
        except ValueError:
            raise ValueError(f"unknown reduce {reduce!r}") from None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range in reduce {reduce!r}")
        return lambda s: float(np.percentile(s, q))
    raise ValueError(f"unknown reduce {reduce!r}")


def _is_numeric(value: Any) -> bool:
    """True for values that mean-reduce meaningfully across seeds.

    Booleans are excluded explicitly: ``isinstance(True, int)`` holds in
    Python, but averaging a flag like ``parity_ok`` into ``0.75`` is
    silent data corruption, not a statistic.
    """
    if isinstance(value, (bool, np.bool_)):
        return False
    return isinstance(value, (int, float, np.integer, np.floating))


def _is_flag(value: Any) -> bool:
    return isinstance(value, (bool, np.bool_))


def _validate_key_sets(outputs: Sequence[Dict], seeds: Sequence[int]) -> None:
    """Every seed's output dict must expose the same columns."""
    expected = set(outputs[0])
    for out, seed in zip(outputs[1:], seeds[1:]):
        got = set(out)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            detail = []
            if missing:
                detail.append(f"missing keys {missing}")
            if extra:
                detail.append(f"extra keys {extra}")
            raise ValueError(
                f"sweep outputs disagree on columns: seed {seed} "
                f"{' and '.join(detail)} relative to seed {seeds[0]} "
                f"(expected {sorted(expected)})"
            )


def reduce_outputs(
    outputs: Sequence[Dict],
    seeds: Sequence[int],
    reducer: Callable[[Sequence[float]], float],
    with_sd: bool = False,
) -> Dict:
    """Collapse per-seed output dicts into one row.

    Numeric columns reduce via ``reducer`` (plus a ``_sd`` companion
    when ``with_sd``); boolean flags reduce via ``all`` — a sweep point
    only passes if every seed passed — and the per-seed values are kept
    under ``<key>_seeds`` whenever the seeds disagree; anything else is
    taken from the first seed's run.
    """
    _validate_key_sets(outputs, seeds)
    row: Dict = {}
    for key in outputs[0]:
        samples = [out[key] for out in outputs]
        if all(_is_numeric(s) for s in samples):
            row[key] = reducer(samples)
            if with_sd:
                sd = float(np.std(samples, ddof=1)) if len(samples) > 1 else 0.0
                row[f"{key}_sd"] = sd
        elif all(_is_flag(s) for s in samples):
            row[key] = all(bool(s) for s in samples)
            if len(set(bool(s) for s in samples)) > 1:
                row[f"{key}_seeds"] = [bool(s) for s in samples]
        else:
            row[key] = samples[0]
    return row


def sweep(
    fn: Callable[..., Dict],
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    reduce: str = "mean",
    with_sd: bool = False,
    workers: int = 0,
    cache_dir: Optional[Union[str, "ResultCache"]] = None,
    manifest_path: Optional[str] = None,
    retries: int = 0,
    cell_timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    on_error: str = "raise",
    policy: Optional["RetryPolicy"] = None,
    fault_hook: Optional[Callable] = None,
    max_pool_restarts: int = 3,
    **fixed,
) -> List[Dict]:
    """Sweep one parameter, reducing numeric outputs across seeds.

    ``fn(param_name=value, seed=seed, **fixed)`` must return a dict with
    the same keys for every seed (a mismatch raises ``ValueError`` naming
    the seed).  Returns one row per parameter value with the parameter
    included.

    ``reduce`` may be ``"mean"``, ``"median"``, or a percentile such as
    ``"p95"``.  With ``with_sd=True`` each numeric column ``key`` gains a
    companion ``key_sd`` column holding the per-seed sample standard
    deviation (ddof=1; 0.0 for a single seed), so sweep tables carry
    their own error bars.  Boolean columns are *not* averaged: a flag
    such as ``parity_ok`` reduces via ``all`` and stays a bool.

    Execution is serial and in-process by default.  ``workers=N`` fans
    the ``(value, seed)`` cells out across N processes (``fn`` must be a
    module-level function); ``cache_dir`` persists each completed cell
    so an interrupted sweep resumes where it stopped; ``manifest_path``
    archives the run manifest (grid, cache hits, per-cell wall time,
    git SHA) as JSON.

    Fault tolerance mirrors :func:`repro.orchestrate.run_cells`:
    ``retries=N`` grants each failing cell N extra attempts,
    ``cell_timeout``/``deadline`` bound cell and sweep durations, and
    ``on_error="quarantine"`` skips cells that exhaust their attempts.
    Quarantined cells leave holes: the affected parameter value reduces
    over its surviving seeds only (or drops out entirely when no seed
    survived) — inspect the manifest's ``failures`` section and report
    the holes alongside any table built from the rows.
    """
    reducer = make_reducer(reduce)
    seeds = [int(s) for s in seeds]
    run = sweep_cells(
        fn, param_name, values, seeds,
        workers=workers, cache_dir=cache_dir, manifest_path=manifest_path,
        retries=retries, cell_timeout=cell_timeout, deadline=deadline,
        on_error=on_error, policy=policy, fault_hook=fault_hook,
        max_pool_restarts=max_pool_restarts,
        **fixed,
    )
    # Group by parameter value rather than slicing len(seeds)-sized
    # chunks: quarantined cells leave holes, and results stay in grid
    # order (all seeds of one value are consecutive).
    rows: List[Dict] = []
    idx = 0
    results = run.results
    while idx < len(results):
        value = results[idx].cell.params[param_name]
        chunk = [results[idx]]
        idx += 1
        while (
            idx < len(results)
            and results[idx].cell.params[param_name] == value
        ):
            chunk.append(results[idx])
            idx += 1
        seeds_used = [r.cell.seed for r in chunk]
        row = {param_name: value}
        row.update(
            reduce_outputs([r.payload for r in chunk], seeds_used, reducer, with_sd)
        )
        rows.append(row)
    return rows


def sweep_cells(
    fn: Callable[..., Dict],
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    workers: int = 0,
    cache_dir: Optional[Union[str, "ResultCache"]] = None,
    manifest_path: Optional[str] = None,
    config: Optional[Dict] = None,
    retries: int = 0,
    cell_timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    on_error: str = "raise",
    policy: Optional["RetryPolicy"] = None,
    fault_hook: Optional[Callable] = None,
    max_pool_restarts: int = 3,
    **fixed,
):
    """Run a sweep grid through the orchestrator without reducing.

    The unreduced sibling of :func:`sweep` — returns the
    :class:`repro.orchestrate.SweepRun` with one payload per
    ``(value, seed)`` cell plus the run manifest.  ``retries=N`` is
    shorthand for ``policy=RetryPolicy(max_attempts=N + 1)``; pass
    ``policy`` explicitly to tune backoff or failure classification.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if policy is None and retries:
        policy = RetryPolicy(max_attempts=retries + 1)
    cells = expand_grid(param_name, values, list(seeds), **fixed)
    cache = None
    if cache_dir is not None:
        cache = cache_dir if isinstance(cache_dir, ResultCache) else ResultCache(cache_dir)
    run = run_cells(
        fn, cells, workers=workers, cache=cache, config=config,
        policy=policy, cell_timeout=cell_timeout, deadline=deadline,
        on_error=on_error, fault_hook=fault_hook,
        max_pool_restarts=max_pool_restarts,
    )
    if manifest_path is not None and run.manifest is not None:
        run.manifest.write(manifest_path)
    return run


def queue_worker(
    fn: Callable[..., Dict],
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    queue_dir: Union[str, "Path"],
    lease_ttl_s: float = 30.0,
    heartbeat_s: Optional[float] = None,
    max_attempts: int = 3,
    worker_id: Optional[str] = None,
    fault_plan: Optional[Callable] = None,
    poll_s: float = 0.5,
    allow_sigkill: bool = False,
    gc_tmp_age_s: float = 3600.0,
    config: Optional[Dict] = None,
    policy: Optional["RetryPolicy"] = None,
    merged_manifest_path: Optional[str] = None,
    **fixed,
):
    """Attach one worker to a shared-filesystem job queue and drain it.

    The multi-host sibling of :func:`sweep_cells`: instead of executing
    the grid in this process's pool, the grid is materialised as a
    :class:`repro.orchestrate.JobQueue` under ``queue_dir`` (created by
    whichever worker arrives first; later arrivals validate the spec
    hash and join) and *this* process becomes one
    :class:`repro.orchestrate.QueueWorker`.  Start the same invocation
    on any number of hosts sharing ``queue_dir`` — cells are divided
    dynamically via lease files, a crashed worker's cells are taken
    over after ``lease_ttl_s`` without heartbeats, and every worker
    returns once all cells are committed or quarantined.

    Returns ``(report, run)``: the per-worker
    :class:`~repro.orchestrate.WorkerReport` and the queue-wide
    :class:`~repro.orchestrate.SweepRun` (grid-order results, merged
    manifest, quarantined failures) — identical rows, modulo timing
    fields, to a serial :func:`sweep_cells` of the same grid.

    ``allow_sigkill=True`` lets an injected ``"kill"`` fault deliver a
    real ``SIGKILL`` (the CLI does this — each worker is a process);
    leave it off for thread-hosted workers in tests.
    """
    from repro.orchestrate import JobQueue, QueueWorker

    cells = expand_grid(param_name, values, [int(s) for s in seeds], **fixed)
    queue = JobQueue(
        queue_dir,
        fn,
        cells,
        config=config,
        lease_ttl_s=lease_ttl_s,
        heartbeat_s=heartbeat_s,
        max_attempts=max_attempts,
        policy=policy,
    )
    worker = QueueWorker(
        queue,
        fn,
        worker_id=worker_id,
        fault_plan=fault_plan,
        poll_s=poll_s,
        allow_sigkill=allow_sigkill,
        gc_tmp_age_s=gc_tmp_age_s,
    )
    report = worker.run()
    run = queue.to_sweep_run()
    if merged_manifest_path is not None and run.manifest is not None:
        run.manifest.write(merged_manifest_path)
    return report, run
