"""Experiment harness: seed sweeps and paper-style table printing."""

from repro.bench.tables import format_series, format_table
from repro.bench.harness import (
    ExperimentResult,
    reduce_outputs,
    run_seeds,
    sweep,
    sweep_cells,
)
from repro.bench.registry import (
    ExperimentSpec,
    all_experiments,
    coverage_report,
    get_experiment,
)

__all__ = [
    "format_table",
    "format_series",
    "ExperimentResult",
    "reduce_outputs",
    "run_seeds",
    "sweep",
    "sweep_cells",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
    "coverage_report",
]
