"""Plain-text table/series formatting for benchmark output.

The benchmarks print the same rows/series the paper's figures plot, so
the output of ``pytest benchmarks/ --benchmark-only -s`` can be compared
to the paper's curves by eye (and is captured in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value, floatfmt: str) -> str:
    if value is None:
        return "-"  # out-of-model cells (e.g. oracle columns at beta=0)
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render dict-rows as an aligned ASCII table.

    ``columns`` fixes the column order (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_fmt(row.get(c, ""), floatfmt) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), max((len(r[i]) for r in body), default=0))
        for i in range(len(cols))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence,
    y: Sequence,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render paired series as a two-column table."""
    if len(x) != len(y):
        raise ValueError(f"series lengths differ: {len(x)} vs {len(y)}")
    rows = [{x_label: xi, y_label: yi} for xi, yi in zip(x, y)]
    return format_table(rows, columns=[x_label, y_label], title=title, floatfmt=floatfmt)
