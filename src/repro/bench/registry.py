"""Registry of all reproduced experiments and their artifacts.

A single authoritative mapping from experiment ids (the per-experiment
index of DESIGN.md) to the paper claim, the benchmark file, and the
archived result path — so tooling (`python -m repro experiments`) and
docs can enumerate the reproduction's coverage programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproduced figure/claim."""

    experiment_id: str
    paper_ref: str
    claim: str
    bench_file: str

    @property
    def result_name(self) -> str:
        """Stem of the archived table under ``benchmarks/results/``."""
        return self.bench_file.replace("test_", "").replace(".py", "")


_SPECS: List[ExperimentSpec] = [
    ExperimentSpec(
        "fig1", "Figure 1",
        "MQ scales with threads; beta<1 beats beta=1; LJ/kLSM lag",
        "test_fig1_throughput.py",
    ),
    ExperimentSpec(
        "fig2", "Figure 2",
        "mean rank grows modestly as beta decreases (log scale)",
        "test_fig2_mean_rank.py",
    ),
    ExperimentSpec(
        "fig3", "Figure 3",
        "relaxed parallel Dijkstra: beta<1 fastest, kLSM slowest",
        "test_fig3_sssp.py",
    ),
    ExperimentSpec(
        "t1-avg", "Thm 1 / Cor 2", "E[rank] = O(n/beta^2), time-uniform",
        "test_theory_avg_rank.py",
    ),
    ExperimentSpec(
        "t1-max", "Thm 1 / Cor 1", "E[max top rank] = O((n/b) log(n/b))",
        "test_theory_max_rank.py",
    ),
    ExperimentSpec(
        "t2-equiv", "Thm 2", "exponential process has the identical rank law",
        "test_exponential_equivalence.py",
    ),
    ExperimentSpec(
        "t3-potential", "Thm 3", "E[Gamma(t)] <= C n; supermartingale drift",
        "test_potential.py",
    ),
    ExperimentSpec(
        "t6-diverge", "Thm 6", "single choice diverges as sqrt(t n log n)",
        "test_single_choice_divergence.py",
    ),
    ExperimentSpec(
        "a-reduction", "App. A", "round-robin removals == two-choice allocation",
        "test_round_robin_reduction.py",
    ),
    ExperimentSpec(
        "bias-robust", "Thm 1 (gamma>0)", "guarantees survive beta=Omega(gamma) bias",
        "test_bias_robustness.py",
    ),
    ExperimentSpec(
        "c-counterex", "App. C", "stalled lock holder => unbounded rank error",
        "test_stall_counterexample.py",
    ),
    ExperimentSpec(
        "g-graph", "Sec. 6", "expansion governs the graph choice process",
        "test_graph_choice.py",
    ),
    ExperimentSpec(
        "abl-d", "extension", "d=2 captures most of the power of choice",
        "test_ablation_dchoice.py",
    ),
    ExperimentSpec(
        "abl-sticky", "extension", "stickiness: locality vs rank quality",
        "test_ablation_stickiness.py",
    ),
    ExperimentSpec(
        "abl-c", "extension", "queues-per-thread multiplier trade-off",
        "test_ablation_queue_multiplier.py",
    ),
    ExperimentSpec(
        "abl-cost", "extension", "Fig. 1 conclusion robust to cost model",
        "test_ablation_cost_model.py",
    ),
    ExperimentSpec(
        "abl-klsm", "extension", "why the paper's kLSM uses k=256",
        "test_ablation_klsm.py",
    ),
    ExperimentSpec(
        "abl-substrate", "extension", "wall-clock cost of PQ substrates",
        "test_ablation_substrate.py",
    ),
    ExperimentSpec(
        "abl-delta", "extension", "delta-stepping vs relaxed-queue SSSP",
        "test_ablation_delta_stepping.py",
    ),
    ExperimentSpec(
        "abl-workload", "extension", "workload shape: where each bottleneck lives",
        "test_ablation_workload_shape.py",
    ),
    ExperimentSpec(
        "ext-general", "Sec. 5 discussion", "general priority insertion orders",
        "test_general_priorities.py",
    ),
    ExperimentSpec(
        "ext-preempt", "App. C generalized", "rank error under OS-style preemption",
        "test_preemption_robustness.py",
    ),
    ExperimentSpec(
        "ext-chaos", "App. C extended",
        "graceful degradation under injected faults; invariants hold",
        "test_chaos_robustness.py",
    ),
    ExperimentSpec(
        "vec-backend", "infrastructure",
        "vector backend >= 10x reference throughput, identical rank law",
        "test_vector_backend.py",
    ),
    ExperimentSpec(
        "vec-theory", "Thm 1/3/6 (replica-parallel)",
        "theory claims re-verified across wide replica sweeps",
        "test_vector_theory.py",
    ),
    ExperimentSpec(
        "orch-scaling", "infrastructure",
        "orchestrated sweeps: identical rows, resumable cache, multi-core scaling",
        "test_orchestrate_scaling.py",
    ),
    ExperimentSpec(
        "orch-queue", "infrastructure",
        "multi-host job queue: crash takeover and zombie fencing, rows identical",
        "test_orchestrate_distributed.py",
    ),
    ExperimentSpec(
        "service-scaling", "infrastructure",
        "live shm service: throughput scales with shard owners, sim rank shape holds",
        "test_service_scaling.py",
    ),
    ExperimentSpec(
        "service-recovery", "infrastructure",
        "supervised shm service: SIGKILL/zombie takeovers conserve every element, "
        "rank law holds post-recovery",
        "test_service_recovery.py",
    ),
    ExperimentSpec(
        "oracle", "Walzer-Williams 2024",
        "exact stationary rank law matches the simulator; instant closed-form "
        "predictions at n far beyond the grid",
        "test_oracle_agreement.py",
    ),
]


def all_experiments() -> List[ExperimentSpec]:
    """Every registered experiment, in DESIGN.md order."""
    return list(_SPECS)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment by id."""
    for spec in _SPECS:
        if spec.experiment_id == experiment_id:
            return spec
    raise KeyError(f"unknown experiment id {experiment_id!r}")


def coverage_report(repo_root: Optional[Path] = None) -> List[Dict]:
    """Rows describing each experiment and whether artifacts exist."""
    root = repo_root or Path(__file__).resolve().parents[3]
    bench_dir = root / "benchmarks"
    results_dir = bench_dir / "results"
    rows = []
    for spec in _SPECS:
        rows.append(
            {
                "id": spec.experiment_id,
                "paper": spec.paper_ref,
                "claim": spec.claim,
                "bench exists": (bench_dir / spec.bench_file).exists(),
                "result archived": (results_dir / f"{spec.result_name}.txt").exists(),
            }
        )
    return rows
