"""The sanitizer front end: run detectors, classify with policies, report.

:class:`Sanitizer` ties the pieces together: attach to an engine (it
installs an :class:`~repro.sanitizer.events.EventLog` as the monitor),
run the workload, then call :meth:`Sanitizer.report`.  The report runs
the happens-before detector and the lockset analyzer over the trace,
applies the models' :mod:`~repro.sanitizer.annotations` to separate
by-design relaxations from genuine protocol violations, and adds two
dynamic *discipline* checks the detectors alone cannot express:

* **unguarded-write** — a write reached a guarded cell while the owning
  lock was not held (even if no race materialized this run);
* **unleased-write** — a plain ``Write`` reached a lease-guarded cell
  while its lock runs in lease mode (must be ``GuardedWrite``: a plain
  write by a revoked holder would corrupt the cell).

Suppression policy (races *reported but not failing*):

* ``atomic`` cells — CAS-based synchronization objects; every race on
  them is the algorithm;
* ``atomic_reads`` cells — read-involved races are blessed **iff** the
  write side held the owning lock (the MultiQueue's lock-free top peeks
  against guarded publishes).  Write-write races always fail.

Everything else is an unsuppressed race and fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.sanitizer.annotations import ResolvedCell, resolve_policies
from repro.sanitizer.events import EventLog
from repro.sanitizer.hb import HBDetector, HBRace
from repro.sanitizer.lockset import LocksetAnalyzer, LocksetWarning


@dataclass(frozen=True)
class RaceFinding:
    """One happens-before race, classified against the annotations."""

    race: HBRace
    label: str
    suppressed: bool
    reason: str

    def describe(self) -> str:
        a, b = self.race.prior, self.race.current
        locks_a = ", ".join(l.name or "?" for l in a.locks) or "none"
        locks_b = ", ".join(l.name or "?" for l in b.locks) or "none"
        status = "suppressed" if self.suppressed else "RACE"
        return (
            f"{status} [{self.race.kind}] on {self.label}: "
            f"tid {a.tid} at {a.site or '?'} (locks: {locks_a}, seq {a.seq}) "
            f"vs tid {b.tid} at {b.site or '?'} (locks: {locks_b}, seq {b.seq}) "
            f"— {self.reason}"
        )


@dataclass(frozen=True)
class DisciplineViolation:
    """A dynamic syscall-discipline breach (see module docstring)."""

    kind: str  # "unguarded-write" | "unleased-write"
    label: str
    tid: int
    site: Optional[str]
    seq: int
    time: float

    def describe(self) -> str:
        return (
            f"{self.kind} on {self.label} by tid {self.tid} "
            f"at {self.site or '?'} (seq {self.seq}, t={self.time:.0f})"
        )


@dataclass(frozen=True)
class LocksetFinding:
    """One lockset warning, classified against the annotations."""

    warning: LocksetWarning
    label: str
    suppressed: bool
    reason: str

    def describe(self) -> str:
        w = self.warning
        status = "suppressed" if self.suppressed else "WARNING"
        return (
            f"{status} [lockset] on {self.label}: no common lock across "
            f"tids {sorted(w.tids)}; last write at {w.write_site or '?'}, "
            f"drained at {w.access_site or '?'} (seq {w.seq}) — {self.reason}"
        )


@dataclass
class SanitizerReport:
    """Outcome of one sanitized run."""

    seed: Optional[int]
    n_events: int
    races: List[RaceFinding] = field(default_factory=list)
    lockset: List[LocksetFinding] = field(default_factory=list)
    discipline: List[DisciplineViolation] = field(default_factory=list)

    @property
    def unsuppressed_races(self) -> List[RaceFinding]:
        return [f for f in self.races if not f.suppressed]

    @property
    def suppressed_races(self) -> List[RaceFinding]:
        return [f for f in self.races if f.suppressed]

    @property
    def unsuppressed_lockset(self) -> List[LocksetFinding]:
        return [f for f in self.lockset if not f.suppressed]

    @property
    def ok(self) -> bool:
        """Race-free: no unsuppressed HB race, no discipline violation."""
        return not self.unsuppressed_races and not self.discipline

    def summary(self) -> Dict[str, Any]:
        return {
            "events": self.n_events,
            "races": len(self.unsuppressed_races),
            "suppressed races": len(self.suppressed_races),
            "lockset warnings": len(self.unsuppressed_lockset),
            "suppressed lockset": len(self.lockset) - len(self.unsuppressed_lockset),
            "discipline": len(self.discipline),
        }

    def describe(self) -> str:
        """Full report, with repeated findings (same cell, kind, and site
        pair — e.g. the same unsynchronized peek racing the same publish
        thousands of times) collapsed into one line with a count."""
        lines = [
            f"sanitizer: {self.n_events} events"
            + (f" (seed {self.seed})" if self.seed is not None else "")
        ]

        def collapse(findings, key):
            groups: Dict[Any, List[Any]] = {}
            for finding in findings:
                groups.setdefault(key(finding), []).append(finding)
            for bucket in groups.values():
                suffix = f"  (x{len(bucket)})" if len(bucket) > 1 else ""
                lines.append("  " + bucket[0].describe() + suffix)

        collapse(
            self.races,
            lambda f: (f.label, f.race.kind, f.race.prior.site,
                       f.race.current.site, f.suppressed),
        )
        collapse(self.discipline, lambda v: (v.kind, v.label, v.site))
        collapse(self.lockset, lambda f: (f.label, f.suppressed))
        if self.ok:
            lines.append("  verdict: race-free (given the annotations)")
        else:
            lines.append(
                f"  verdict: {len(self.unsuppressed_races)} race(s), "
                f"{len(self.discipline)} discipline violation(s)"
            )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` with the full report unless :attr:`ok`."""
        if not self.ok:
            raise AssertionError(self.describe())


class Sanitizer:
    """Attach race detection to an engine for one run.

    Example
    -------
    >>> from repro.sim import Engine
    >>> from repro.sanitizer import Sanitizer
    >>> eng = Engine()
    >>> san = Sanitizer.attach(eng)
    >>> # model = ConcurrentMultiQueue(eng, ...); workload; eng.run()
    >>> # report = san.report(model, seed=1); report.raise_if_failed()
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.log = EventLog.attach(engine)

    @classmethod
    def attach(cls, engine) -> "Sanitizer":
        return cls(engine)

    def report(self, *models: Any, seed: Optional[int] = None) -> SanitizerReport:
        """Analyze the collected trace against ``models``' annotations."""
        policies = resolve_policies(*models)
        report = SanitizerReport(seed=seed, n_events=len(self.log))

        for race in HBDetector().process(self.log):
            resolved = policies.get(id(race.cell))
            report.races.append(self._classify_race(race, resolved))

        for warning in LocksetAnalyzer().process(self.log):
            resolved = policies.get(id(warning.cell))
            report.lockset.append(self._classify_warning(warning, resolved))

        report.discipline.extend(self._check_discipline(policies))
        return report

    # -- classification ----------------------------------------------------

    @staticmethod
    def _label(cell: Any, resolved: Optional[ResolvedCell]) -> str:
        if resolved is not None:
            return resolved.label
        return getattr(cell, "name", "") or f"<cell {id(cell):#x}>"

    def _classify_race(
        self, race: HBRace, resolved: Optional[ResolvedCell]
    ) -> RaceFinding:
        label = self._label(race.cell, resolved)
        if resolved is None:
            return RaceFinding(race, label, False, "cell has no declared policy")
        policy = resolved.policy
        if policy.atomic:
            return RaceFinding(race, label, True, "atomic cell: races by design")
        if policy.atomic_reads and race.involves_read():
            write = race.write_epoch
            if resolved.guard is not None and resolved.guard in write.locks:
                return RaceFinding(
                    race, label, True, "lock-free read vs guarded write (by design)"
                )
            return RaceFinding(
                race, label, False, "read race but the write side did not hold the guard"
            )
        return RaceFinding(race, label, False, f"unordered {race.kind} on guarded cell")

    def _classify_warning(
        self, warning: LocksetWarning, resolved: Optional[ResolvedCell]
    ) -> LocksetFinding:
        label = self._label(warning.cell, resolved)
        if resolved is None:
            return LocksetFinding(warning, label, False, "cell has no declared policy")
        policy = resolved.policy
        if policy.atomic:
            return LocksetFinding(warning, label, True, "atomic cell: no lock expected")
        if policy.atomic_reads:
            return LocksetFinding(
                warning,
                label,
                True,
                "lock-free reads drain the candidate set by design "
                "(writes are checked by the discipline pass)",
            )
        return LocksetFinding(warning, label, False, "guarded cell lost all candidates")

    # -- dynamic discipline ------------------------------------------------

    def _check_discipline(
        self, policies: Dict[int, ResolvedCell]
    ) -> List[DisciplineViolation]:
        violations: List[DisciplineViolation] = []
        held: Dict[int, List[Any]] = {}
        for ev in self.log:
            if ev.kind == "acquire":
                held.setdefault(ev.tid, []).append(ev.obj)
                continue
            if ev.kind in ("release", "revoke"):
                locks = held.get(ev.tid)
                if locks is not None and ev.obj in locks:
                    locks.remove(ev.obj)
                continue
            if not ev.is_write:
                continue
            resolved = policies.get(id(ev.obj))
            if resolved is None or resolved.policy.guard is None:
                continue
            if resolved.guard is not None and resolved.guard not in held.get(
                ev.tid, ()
            ):
                violations.append(
                    DisciplineViolation(
                        "unguarded-write", resolved.label, ev.tid, ev.site, ev.seq, ev.time
                    )
                )
            elif (
                ev.kind == "write"
                and resolved.policy.lease_guarded
                and resolved.guard is not None
                and resolved.guard.lease is not None
            ):
                violations.append(
                    DisciplineViolation(
                        "unleased-write", resolved.label, ev.tid, ev.site, ev.seq, ev.time
                    )
                )
        return violations
