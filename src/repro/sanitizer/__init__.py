"""Concurrency sanitizer for the simulated MultiQueue stack.

Two halves (see ``docs/simulator.md``, "The concurrency sanitizer"):

* **Dynamic** — attach :class:`Sanitizer` to an engine and the run's
  event stream is replayed through a FastTrack-style happens-before
  detector (:mod:`.hb`) and an Eraser-style lockset analyzer
  (:mod:`.lockset`); :meth:`Sanitizer.report` classifies every finding
  against the models' lock-ownership annotations (:mod:`.annotations`).
  ``repro sanitize`` and the ``sanitized`` pytest fixture wrap this.
* **Static** — ``repro lint`` (:mod:`.lint`) checks the syscall
  discipline in ``src/repro/concurrent`` from the AST alone, using the
  same annotations as ground truth.

Note: :mod:`.scenarios` is intentionally not imported here — the
concurrent models import :mod:`.annotations` at class-definition time,
and scenarios imports the models.
"""

from repro.sanitizer.annotations import (
    CellPolicy,
    ResolvedCell,
    SharedStateSpec,
    atomic_cell,
    guarded_by,
    resolve_policies,
    shared_state,
)
from repro.sanitizer.detector import (
    DisciplineViolation,
    LocksetFinding,
    RaceFinding,
    Sanitizer,
    SanitizerReport,
)
from repro.sanitizer.events import Event, EventLog
from repro.sanitizer.hb import HBDetector, HBRace, VectorClock
from repro.sanitizer.lockset import LocksetAnalyzer, LocksetWarning

__all__ = [
    "CellPolicy",
    "DisciplineViolation",
    "Event",
    "EventLog",
    "HBDetector",
    "HBRace",
    "LocksetAnalyzer",
    "LocksetFinding",
    "LocksetWarning",
    "RaceFinding",
    "ResolvedCell",
    "Sanitizer",
    "SanitizerReport",
    "SharedStateSpec",
    "VectorClock",
    "atomic_cell",
    "guarded_by",
    "resolve_policies",
    "shared_state",
]
