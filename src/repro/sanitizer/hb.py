"""FastTrack-style happens-before race detection over the event stream.

Vector-clock semantics (Flanagan & Freund's FastTrack, adapted to the
engine's event vocabulary):

* each thread ``t`` carries a clock ``C_t``; ``C_t[t]`` advances after
  every synchronization release-side operation;
* ``fork``: the child joins the parent's clock (spawn happens-before the
  child's first step), the parent then advances;
* ``acquire``: the acquirer joins the lock's release clock ``L_l``;
* ``release`` **and** ``revoke``: ``L_l := C_t`` — lease revocation is a
  release edge *from the stale holder*: everything the holder did before
  losing the lock happens-before the next acquirer.  (Its post-revocation
  ``GuardedWrite`` attempts fail and mutate nothing, so no un-ordered
  write ever reaches the cell.)
* ``barrier_release``: all arrivers join the pairwise-merged clock (an
  all-to-all edge), then each advances.

Per cell the detector keeps the last write (an *epoch*: writer tid +
clock component) and a read map ``tid -> epoch``; an access races with a
prior access when the prior epoch is not covered by the current thread's
clock.  Reads are cleared after an ordered write (the write dominates
them for all later conflicts, as in FastTrack's read-share demotion).

Each :class:`HBRace` carries both access sites, the locks held on both
sides, and the event sequence numbers — with the run's seed this is an
exact reproduction recipe.  Suppression policy (annotations) is applied
one level up, in :mod:`repro.sanitizer.detector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.sanitizer.events import Event
from repro.sim.primitives import SimLock


class VectorClock:
    """A sparse vector clock (missing components are 0)."""

    __slots__ = ("_c",)

    def __init__(self, init: Optional[Dict[int, int]] = None) -> None:
        self._c: Dict[int, int] = dict(init) if init else {}

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def advance(self, tid: int) -> None:
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, value in other._c.items():
            if value > self._c.get(tid, 0):
                self._c[tid] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def covers(self, tid: int, value: int) -> bool:
        """Whether event ``(tid, value)`` happens-before this clock."""
        return value <= self._c.get(tid, 0)

    def __repr__(self) -> str:
        return f"VC({self._c})"


@dataclass(frozen=True)
class AccessEpoch:
    """One memory access, pinned to its thread clock component."""

    tid: int
    clock: int
    seq: int
    time: float
    site: Optional[str]
    locks: FrozenSet[SimLock]
    kind: str


@dataclass(frozen=True)
class HBRace:
    """Two accesses to one cell unordered by happens-before."""

    cell: object
    #: ``write-write``, ``write-read`` (write first), or ``read-write``.
    kind: str
    prior: AccessEpoch
    current: AccessEpoch

    def involves_read(self) -> bool:
        return "read" in self.kind

    @property
    def write_epoch(self) -> AccessEpoch:
        """The write side of the race (the current access for
        ``read-write``, the prior one otherwise)."""
        return self.current if self.kind == "read-write" else self.prior


@dataclass
class _CellState:
    last_write: Optional[AccessEpoch] = None
    reads: Dict[int, AccessEpoch] = field(default_factory=dict)


class HBDetector:
    """Replay an event log, reporting all happens-before races.

    One race is reported per conflicting access pair; a cell with a
    broken protocol typically yields several (first occurrence first).
    """

    def __init__(self) -> None:
        self._clocks: Dict[int, VectorClock] = {}
        self._lock_clocks: Dict[int, VectorClock] = {}
        self._held: Dict[int, List[SimLock]] = {}
        self._cells: Dict[int, _CellState] = {}
        self.races: List[HBRace] = []

    # -- clock plumbing ----------------------------------------------------

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = self._clocks[tid] = VectorClock()
            clock.advance(tid)  # every thread starts with its own step
        return clock

    def _epoch(self, ev: Event) -> AccessEpoch:
        clock = self._clock(ev.tid)
        return AccessEpoch(
            tid=ev.tid,
            clock=clock.get(ev.tid),
            seq=ev.seq,
            time=ev.time,
            site=ev.site,
            locks=frozenset(self._held.get(ev.tid, ())),
            kind=ev.kind,
        )

    # -- event dispatch ----------------------------------------------------

    def process(self, events) -> List[HBRace]:
        """Run the detector over an iterable of events; returns races."""
        for ev in events:
            handler = getattr(self, f"_on_{ev.kind}", None)
            if handler is not None:
                handler(ev)
        return self.races

    def _on_fork(self, ev: Event) -> None:
        parent = ev.info.get("parent")
        child = self._clock(ev.tid)
        if parent is not None:
            child.join(self._clock(parent))
            self._clock(parent).advance(parent)

    def _on_finish(self, ev: Event) -> None:
        # A finished thread's clock stays around: its past accesses can
        # still race with later ones (and a crashed holder's lock may be
        # revoked after the kill).
        self._clock(ev.tid).advance(ev.tid)

    def _on_acquire(self, ev: Event) -> None:
        lock_clock = self._lock_clocks.get(id(ev.obj))
        if lock_clock is not None:
            self._clock(ev.tid).join(lock_clock)
        self._held.setdefault(ev.tid, []).append(ev.obj)

    def _end_grant(self, ev: Event) -> None:
        clock = self._clock(ev.tid)
        self._lock_clocks[id(ev.obj)] = clock.copy()
        clock.advance(ev.tid)
        held = self._held.get(ev.tid)
        if held is not None and ev.obj in held:
            held.remove(ev.obj)

    _on_release = _end_grant
    #: Lease revocation is a release edge from the stale holder (see
    #: module docstring) — identical clock treatment, distinct event
    #: kind so reports can say which one ended the grant.
    _on_revoke = _end_grant

    def _on_barrier_release(self, ev: Event) -> None:
        waiters = ev.info.get("waiters", ())
        merged = VectorClock()
        for tid in waiters:
            merged.join(self._clock(tid))
        for tid in waiters:
            clock = self._clock(tid)
            clock.join(merged)
            clock.advance(tid)

    # -- memory accesses ---------------------------------------------------

    def _on_read(self, ev: Event) -> None:
        state = self._cells.setdefault(id(ev.obj), _CellState())
        clock = self._clock(ev.tid)
        epoch = self._epoch(ev)
        lw = state.last_write
        if lw is not None and lw.tid != ev.tid and not clock.covers(lw.tid, lw.clock):
            self.races.append(HBRace(ev.obj, "write-read", lw, epoch))
        state.reads[ev.tid] = epoch

    def _on_write(self, ev: Event) -> None:
        self._record_write(ev)

    def _on_cas(self, ev: Event) -> None:
        # A CAS is an atomic read-modify-write: even a failed CAS
        # observes the value, so treat it as a read; a successful one is
        # also a write.
        if ev.is_write:
            self._record_write(ev)
        else:
            self._on_read(ev)

    def _on_guarded_write(self, ev: Event) -> None:
        # A failed GuardedWrite (revoked holder) mutates nothing and
        # observes only the lock word, not the cell value: no access.
        if ev.is_write:
            self._record_write(ev)

    def _record_write(self, ev: Event) -> None:
        state = self._cells.setdefault(id(ev.obj), _CellState())
        clock = self._clock(ev.tid)
        epoch = self._epoch(ev)
        lw = state.last_write
        if lw is not None and lw.tid != ev.tid and not clock.covers(lw.tid, lw.clock):
            self.races.append(HBRace(ev.obj, "write-write", lw, epoch))
        for read in state.reads.values():
            if read.tid != ev.tid and not clock.covers(read.tid, read.clock):
                self.races.append(HBRace(ev.obj, "read-write", read, epoch))
        state.last_write = epoch
        # The write now dominates all ordered reads; racing reads were
        # just reported.  Later accesses conflict with the write instead.
        state.reads.clear()
