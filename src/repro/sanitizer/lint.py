"""``repro lint``: AST-level syscall-discipline checks for the models.

The lint walks ``src/repro/concurrent/*.py`` without importing anything
and enforces the discipline the dynamic sanitizer checks at runtime,
using each class's :func:`~repro.sanitizer.annotations.shared_state`
declaration (read straight from the AST) as ground truth:

========  =============================================================
SAN101    a ``Write``/``GuardedWrite`` reaches a guarded cell on a path
          where no lock of the owning guard is held (or the
          ``GuardedWrite`` names the wrong guard)
SAN102    a plain ``Write`` to a *lease-guarded* cell — must be
          ``GuardedWrite`` so the publish revalidates holdership
SAN103    a blocking ``Acquire`` whose acquisition order is not provably
          the canonical ascending-index order (see the "Lock-order
          contract" section of docs/simulator.md): an ``Acquire`` of
          ``self._arr[i]`` inside a loop needs ``sorted(...)`` evidence
          on the iterable; several blocking acquisitions of distinct
          indices need ``min``/``max`` (or ``sorted``) ordering
          evidence.  ``TryAcquire`` is exempt — try-with-restart never
          deadlocks.
SAN104    raw attribute mutation of declared shared state
          (``cell.value = ...``) outside a syscall
========  =============================================================

Intentional exceptions carry a suppression comment on the same line or
the line above::

    # sanitizer: allow(SAN104) prefill runs before the clock starts
    self._tops[q].value = ...

Suppressions are counted and listed in the report, never silent.

The path analysis is a conservative abstract interpretation of each
function body: the held-lock set is tracked through straight-line code,
``if`` branch forks (merged by intersection; terminated branches —
``return``/``continue``/``break``/``raise`` — drop out), ``while``
loops (the post-loop state is the meet of the ``break`` states), and
the try-lock idiom (``ok = yield TryAcquire(L)`` followed by ``if
ok:``/``if not ok:``).  Lock identity is syntactic: writes to a guarded
cell accept *any* held lock of the owning guard array, because index
aliasing (``_tops[chosen]`` under ``_locks[first]``/``_locks[second]``)
is beyond static reach — the exact per-index pairing is the dynamic
detector's job.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

RULES = {
    "SAN101": "write to guarded cell without holding the owning lock",
    "SAN102": "plain Write to a lease-guarded cell (use GuardedWrite)",
    "SAN103": "blocking lock acquisition order not provably canonical",
    "SAN104": "raw mutation of shared-cell state outside a syscall",
}

_SUPPRESS_RE = re.compile(r"#\s*sanitizer:\s*allow\((SAN\d{3})\)\s*(.*)")

#: A held lock, syntactically: (attribute name, index expression source
#: or None for scalar locks), e.g. ("_locks", "q") or ("_shared_lock", None).
LockToken = Tuple[str, Optional[str]]


@dataclass(frozen=True)
class Violation:
    file: str
    line: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppressed:
    file: str
    line: int
    rule: str
    reason: str

    def describe(self) -> str:
        reason = self.reason or "(no reason given)"
        return f"{self.file}:{self.line}: {self.rule} suppressed — {reason}"


@dataclass
class LintReport:
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Suppressed] = field(default_factory=list)
    files_checked: int = 0
    classes_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"lint: {self.files_checked} file(s), "
            f"{self.classes_checked} annotated class(es), "
            f"{len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppression(s)"
        ]
        lines += ["  " + v.describe() for v in self.violations]
        lines += ["  " + s.describe() for s in self.suppressed]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Structured form of the report (``repro lint --json``), so CI
        and ``repro check`` can merge lint output with checker reports."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "classes_checked": self.classes_checked,
            "violations": [
                {"file": v.file, "line": v.line, "rule": v.rule, "message": v.message}
                for v in self.violations
            ],
            "suppressed": [
                {"file": s.file, "line": s.line, "rule": s.rule, "reason": s.reason}
                for s in self.suppressed
            ],
            "rules": dict(RULES),
        }


@dataclass(frozen=True)
class StaticPolicy:
    guard: Optional[str]
    atomic: bool
    lease_guarded: bool


# -- annotation extraction (AST only, no imports) ---------------------------


def _extract_spec(cls: ast.ClassDef) -> Optional[Dict[str, StaticPolicy]]:
    """Parse a ``@shared_state(cells={...})`` decorator, if present."""
    for deco in cls.decorator_list:
        if not (isinstance(deco, ast.Call) and _callee_name(deco) == "shared_state"):
            continue
        cells_node = None
        for kw in deco.keywords:
            if kw.arg == "cells":
                cells_node = kw.value
        if cells_node is None and deco.args:
            cells_node = deco.args[0]
        if not isinstance(cells_node, ast.Dict):
            return {}
        spec: Dict[str, StaticPolicy] = {}
        for key, value in zip(cells_node.keys, cells_node.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            policy = _parse_policy(value)
            if policy is not None:
                spec[key.value] = policy
        return spec
    return None


def _parse_policy(node: ast.expr) -> Optional[StaticPolicy]:
    if not isinstance(node, ast.Call):
        return None
    name = _callee_name(node)
    if name == "atomic_cell":
        return StaticPolicy(guard=None, atomic=True, lease_guarded=False)
    if name == "guarded_by":
        guard = None
        if node.args and isinstance(node.args[0], ast.Constant):
            guard = node.args[0].value
        lease = False
        for kw in node.keywords:
            if kw.arg == "guard" and isinstance(kw.value, ast.Constant):
                guard = kw.value.value
            if kw.arg == "lease_guarded" and isinstance(kw.value, ast.Constant):
                lease = bool(kw.value.value)
        return StaticPolicy(guard=guard, atomic=False, lease_guarded=lease)
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# -- syntactic helpers ------------------------------------------------------


def _self_attr(node: ast.expr) -> Optional[Tuple[str, Optional[str]]]:
    """Decompose ``self.attr`` / ``self.attr[idx]`` into (attr, idx-src)."""
    if isinstance(node, ast.Subscript):
        inner = _self_attr(node.value)
        if inner is not None and inner[1] is None:
            return (inner[0], ast.unparse(node.slice))
        return None
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return (node.attr, None)
    return None


def _syscall(node: ast.expr) -> Optional[Tuple[str, ast.Call]]:
    """If ``node`` is ``SyscallName(...)``, return (name, call)."""
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        if name in ("Acquire", "TryAcquire", "Release", "Write", "GuardedWrite",
                    "Read", "CAS", "Holding", "BarrierWait", "Delay", "Yield"):
            return (name, node)
    return None


def _contains_call(node: ast.AST, names: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _callee_name(sub) in names:
            return True
    return False


#: Sentinel: the scanned path terminated (return/raise/continue/break).
_TERMINATED = None


class _FunctionScan:
    """Abstract interpretation of one function body (see module docstring)."""

    def __init__(self, linter: "Linter", func: ast.FunctionDef) -> None:
        self.linter = linter
        self.func = func
        #: Name -> pending TryAcquire lock token (the try-lock idiom).
        self.try_vars: Dict[str, LockToken] = {}
        #: Stack of break-state collectors for enclosing loops.
        self.break_states: List[List[Set[LockToken]]] = []
        #: Distinct index expressions blocking-acquired per lock array.
        self.blocking_indices: Dict[str, Set[str]] = {}
        self.has_order_evidence = any(
            _contains_call(stmt, {"sorted"})
            or (_contains_call(stmt, {"min"}) and _contains_call(stmt, {"max"}))
            for stmt in func.body
        )

    def run(self) -> None:
        self.scan_block(self.func.body, set())
        for array, indices in self.blocking_indices.items():
            if len(indices) > 1 and not self.has_order_evidence:
                self.linter.report(
                    "SAN103",
                    self.func.lineno,
                    f"{self.func.name} blocking-acquires self.{array} at "
                    f"indices {sorted(indices)} with no sorted()/min-max "
                    f"ordering evidence",
                )

    # -- block/statement dispatch ------------------------------------------

    def scan_block(
        self, stmts: Sequence[ast.stmt], held: Optional[Set[LockToken]]
    ) -> Optional[Set[LockToken]]:
        for stmt in stmts:
            if held is _TERMINATED:
                return _TERMINATED
            held = self.scan_stmt(stmt, held)
        return held

    def scan_stmt(
        self, stmt: ast.stmt, held: Set[LockToken]
    ) -> Optional[Set[LockToken]]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return _TERMINATED
        if isinstance(stmt, ast.Continue):
            return _TERMINATED
        if isinstance(stmt, ast.Break):
            if self.break_states:
                self.break_states[-1].append(set(held))
            return _TERMINATED
        if isinstance(stmt, ast.If):
            return self.scan_if(stmt, held)
        if isinstance(stmt, ast.While):
            return self.scan_while(stmt, held)
        if isinstance(stmt, ast.For):
            return self.scan_for(stmt, held)
        if isinstance(stmt, ast.Try):
            held = self.scan_block(stmt.body, held)
            if held is not _TERMINATED:
                held = self.scan_block(stmt.finalbody, held)
            return held
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            self.check_raw_mutation(stmt)
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                held = self.scan_yield(stmt, node, held)
                if held is _TERMINATED:
                    return _TERMINATED
        return held

    def scan_if(
        self, stmt: ast.If, held: Set[LockToken]
    ) -> Optional[Set[LockToken]]:
        true_state, false_state = set(held), set(held)
        test = stmt.test
        if isinstance(test, ast.Name) and test.id in self.try_vars:
            true_state.add(self.try_vars[test.id])
        elif (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id in self.try_vars
        ):
            false_state.add(self.try_vars[test.operand.id])
        after_true = self.scan_block(stmt.body, true_state)
        after_false = (
            self.scan_block(stmt.orelse, false_state) if stmt.orelse else false_state
        )
        if after_true is _TERMINATED:
            return after_false
        if after_false is _TERMINATED:
            return after_true
        return after_true & after_false

    def scan_while(
        self, stmt: ast.While, held: Set[LockToken]
    ) -> Optional[Set[LockToken]]:
        self.break_states.append([])
        self.scan_block(stmt.body, set(held))
        breaks = self.break_states.pop()
        exits: List[Set[LockToken]] = list(breaks)
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if not infinite:
            exits.append(set(held))
        if not exits:
            return _TERMINATED  # while True with no break: nothing follows
        result = exits[0]
        for state in exits[1:]:
            result &= state
        return result

    def scan_for(
        self, stmt: ast.For, held: Set[LockToken]
    ) -> Optional[Set[LockToken]]:
        loop_var = stmt.target.id if isinstance(stmt.target, ast.Name) else None
        self.break_states.append([])
        outer = self._for_context
        self._for_context = (loop_var, stmt.iter)
        body_exit = self.scan_block(stmt.body, set(held))
        self._for_context = outer
        self.break_states.pop()
        # Assume the loop body ran (locks acquired per-iteration are held
        # after an acquire-all loop, the hold_locks_op idiom); a body
        # that terminates every path contributes nothing new.
        return body_exit if body_exit is not _TERMINATED else set(held)

    _for_context: Optional[Tuple[Optional[str], ast.expr]] = None

    # -- syscall effects ---------------------------------------------------

    def scan_yield(
        self, stmt: ast.stmt, yield_node: ast.AST, held: Set[LockToken]
    ) -> Optional[Set[LockToken]]:
        if isinstance(yield_node, ast.YieldFrom):
            return held  # delegation: callee checked on its own
        value = yield_node.value
        if value is None:
            return held
        sc = _syscall(value)
        if sc is None:
            return held
        name, call = sc
        if name == "TryAcquire":
            token = self.lock_token(call.args[0]) if call.args else None
            if token is not None and isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.try_vars[target.id] = token
            return held
        if name == "Acquire":
            return self.on_acquire(call, held)
        if name == "Release":
            token = self.lock_token(call.args[0]) if call.args else None
            if token is not None:
                held.discard(token)
            return held
        if name == "Write":
            self.on_write(call, held, guarded=False)
            return held
        if name == "GuardedWrite":
            self.on_write(call, held, guarded=True)
            return held
        return held

    def on_acquire(self, call: ast.Call, held: Set[LockToken]) -> Set[LockToken]:
        if not call.args:
            return held
        token = self.lock_token(call.args[0])
        if token is None:
            return held
        array, index = token
        if index is not None:
            ctx = self._for_context
            in_loop_over_index = (
                ctx is not None and ctx[0] is not None and ctx[0] in index
            )
            if in_loop_over_index:
                if not self.iterable_is_sorted(ctx[1]):
                    self.linter.report(
                        "SAN103",
                        call.lineno,
                        f"Acquire of self.{array}[{index}] iterates an "
                        f"order the lint cannot prove ascending "
                        f"(no sorted() evidence on the loop iterable)",
                    )
            else:
                self.blocking_indices.setdefault(array, set()).add(index)
        held.add(token)
        return held

    def iterable_is_sorted(self, iterable: ast.expr) -> bool:
        """``sorted(...)`` inline, or a local assigned from ``sorted(...)``."""
        if _contains_call(iterable, {"sorted"}):
            return True
        if isinstance(iterable, ast.Name):
            for node in ast.walk(self.func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == iterable.id
                            and _contains_call(node.value, {"sorted"})
                        ):
                            return True
        return False

    def on_write(self, call: ast.Call, held: Set[LockToken], guarded: bool) -> None:
        if not call.args:
            return
        cell = _self_attr(call.args[0])
        if cell is None:
            return
        attr, _index = cell
        policy = self.linter.policies.get(attr)
        if policy is None or policy.atomic or policy.guard is None:
            return
        if not guarded and policy.lease_guarded:
            self.linter.report(
                "SAN102",
                call.lineno,
                f"plain Write to lease-guarded self.{attr} "
                f"(use GuardedWrite(..., self.{policy.guard}[...]))",
            )
            return
        if guarded and len(call.args) >= 3:
            lock = self.lock_token(call.args[2])
            if lock is not None and lock[0] != policy.guard:
                self.linter.report(
                    "SAN101",
                    call.lineno,
                    f"GuardedWrite to self.{attr} names self.{lock[0]} "
                    f"but the declared guard is self.{policy.guard}",
                )
                return
        if not any(token[0] == policy.guard for token in held):
            self.linter.report(
                "SAN101",
                call.lineno,
                f"write to self.{attr} on a path where no self.{policy.guard} "
                f"lock is held",
            )

    def lock_token(self, node: ast.expr) -> Optional[LockToken]:
        return _self_attr(node)

    # -- raw mutation ------------------------------------------------------

    def check_raw_mutation(self, stmt: ast.stmt) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if not (isinstance(target, ast.Attribute) and target.attr == "value"):
                continue
            base = _self_attr(target.value)
            if base is None:
                continue
            if base[0] in self.linter.policies:
                self.linter.report(
                    "SAN104",
                    stmt.lineno,
                    f"raw mutation of self.{base[0]}.value outside a syscall",
                )


class Linter:
    """Lint one file's annotated classes."""

    def __init__(self, path: Path, report_into: LintReport) -> None:
        self.path = path
        self.rel = str(path)
        self.out = report_into
        self.policies: Dict[str, StaticPolicy] = {}
        source = path.read_text()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions: Dict[int, Tuple[str, str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                self.suppressions[lineno] = (match.group(1), match.group(2).strip())

    def run(self) -> None:
        self.out.files_checked += 1
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                spec = _extract_spec(node)
                self.policies = spec or {}
                if spec is not None:
                    self.out.classes_checked += 1
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        _FunctionScan(self, item).run()
            elif isinstance(node, ast.FunctionDef):
                self.policies = {}
                _FunctionScan(self, node).run()

    def report(self, rule: str, line: int, message: str) -> None:
        for candidate in (line, line - 1):
            entry = self.suppressions.get(candidate)
            if entry is not None and entry[0] == rule:
                self.out.suppressed.append(Suppressed(self.rel, line, rule, entry[1]))
                return
        self.out.violations.append(Violation(self.rel, line, rule, message))


def default_paths() -> List[Path]:
    """The lint's home turf: ``src/repro/concurrent/*.py``."""
    root = Path(__file__).resolve().parents[1] / "concurrent"
    return sorted(root.glob("*.py"))


def lint_paths(paths: Optional[Sequence] = None) -> LintReport:
    """Lint the given files (default: the concurrent package)."""
    report = LintReport()
    for path in [Path(p) for p in paths] if paths else default_paths():
        if path.is_dir():
            for sub in sorted(path.glob("*.py")):
                Linter(sub, report).run()
        else:
            Linter(path, report).run()
    return report
