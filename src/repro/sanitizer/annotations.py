"""Lock-ownership annotations: the sanitizer's ground truth.

Concurrent models declare which of their attributes are shared state and
what protects each one, via the :func:`shared_state` class decorator:

    @shared_state(
        cells={"_tops": guarded_by("_locks", atomic_reads=True,
                                   lease_guarded=True)},
        lock_order="ascending-index",
    )
    class ConcurrentMultiQueue: ...

The declaration serves both halves of the sanitizer.  The **static**
lint (:mod:`repro.sanitizer.lint`) reads it from the AST, so it checks
the discipline without importing or instantiating anything.  The
**dynamic** detector (:mod:`repro.sanitizer.detector`) resolves it
against live instances with :func:`resolve_policies`, mapping each
``SimCell`` identity to its policy and owning ``SimLock`` — list-valued
attributes are zipped index-wise (``_tops[i]`` is guarded by
``_locks[i]``), the idiom all per-queue structures use.

Policies
--------
* :func:`guarded_by` — writes require holding the named lock attribute.
  ``atomic_reads`` blesses lock-free reads (the MultiQueue's unsynchronized
  top peeks — benign by design, the algorithm re-validates under the
  lock).  ``lease_guarded`` additionally requires writes to use
  ``GuardedWrite`` so they re-validate holdership under lock leases.
* :func:`atomic_cell` — the cell is a synchronization object itself
  (CAS-based versions/regions); all access patterns are legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.primitives import SimCell, SimLock


@dataclass(frozen=True)
class CellPolicy:
    """How one shared-cell attribute may be accessed."""

    #: Attribute name of the owning lock (or lock list, zipped
    #: index-wise); ``None`` for atomic cells.
    guard: Optional[str] = None
    #: The cell is itself a synchronization object (CAS target): any
    #: access pattern is legal, races on it are by design.
    atomic: bool = False
    #: Lock-free reads are blessed (writes still need the guard).
    atomic_reads: bool = False
    #: Writes must use ``GuardedWrite`` (revalidates holdership), so the
    #: cell stays consistent under lease revocation.
    lease_guarded: bool = False


def guarded_by(
    guard: str, atomic_reads: bool = False, lease_guarded: bool = False
) -> CellPolicy:
    """Writes to the cell require holding ``guard`` (an attribute name)."""
    return CellPolicy(
        guard=guard, atomic_reads=atomic_reads, lease_guarded=lease_guarded
    )


def atomic_cell() -> CellPolicy:
    """The cell is a CAS-based synchronization object; races are by design."""
    return CellPolicy(atomic=True)


@dataclass(frozen=True)
class SharedStateSpec:
    """A class's full shared-state declaration (``cls.__shared_state__``)."""

    cells: Tuple[Tuple[str, CellPolicy], ...]
    #: Human-readable name of the lock-order contract blocking acquirers
    #: follow (documented in docs/simulator.md, "Lock-order contract").
    lock_order: Optional[str] = None

    def policy(self, attr: str) -> Optional[CellPolicy]:
        """Policy declared for attribute ``attr`` (``None`` if absent)."""
        for name, pol in self.cells:
            if name == attr:
                return pol
        return None


def shared_state(cells: Dict[str, CellPolicy], lock_order: Optional[str] = None):
    """Class decorator declaring shared cells and their owning locks."""

    spec = SharedStateSpec(cells=tuple(cells.items()), lock_order=lock_order)

    def decorate(cls):
        cls.__shared_state__ = spec
        return cls

    return decorate


@dataclass(frozen=True)
class ResolvedCell:
    """One live ``SimCell`` bound to its policy and owning lock."""

    cell: SimCell
    policy: CellPolicy
    #: The owning ``SimLock`` instance (``None`` for atomic cells).
    guard: Optional[SimLock]
    #: Report label, e.g. ``ConcurrentMultiQueue._tops[3]``.
    label: str


def resolve_policies(*models: Any) -> Dict[int, ResolvedCell]:
    """Map ``id(cell) -> ResolvedCell`` for every declared cell of every
    model instance (models without ``__shared_state__`` are skipped).

    List-valued cell attributes are zipped index-wise with list-valued
    guard attributes; a scalar guard protects every cell in the list.
    """
    resolved: Dict[int, ResolvedCell] = {}
    for model in models:
        spec = getattr(type(model), "__shared_state__", None)
        if spec is None:
            continue
        cls_name = type(model).__name__
        for attr, policy in spec.cells:
            value = getattr(model, attr)
            guard_value = getattr(model, policy.guard) if policy.guard else None
            cells: List[Tuple[SimCell, Optional[SimLock], str]] = []
            if isinstance(value, SimCell):
                guard = guard_value if isinstance(guard_value, SimLock) else None
                cells.append((value, guard, f"{cls_name}.{attr}"))
            elif isinstance(value, (list, tuple)):
                for index, cell in enumerate(value):
                    if not isinstance(cell, SimCell):
                        continue
                    if isinstance(guard_value, (list, tuple)):
                        guard = guard_value[index]
                    else:
                        guard = guard_value
                    if not isinstance(guard, SimLock):
                        guard = None
                    cells.append((cell, guard, f"{cls_name}.{attr}[{index}]"))
            else:
                raise TypeError(
                    f"{cls_name}.{attr} declared shared but is neither a "
                    f"SimCell nor a list of them: {value!r}"
                )
            for cell, guard, label in cells:
                resolved[id(cell)] = ResolvedCell(cell, policy, guard, label)
    return resolved
