"""The typed event stream the engine emits for race analysis.

:class:`EventLog` is the concrete ``engine.monitor``: the engine calls
:meth:`EventLog.record` for every shared-memory access, lock transition,
fork, and finish (see :meth:`repro.sim.engine.Engine._notify` for the
event vocabulary).  Events carry the emitting thread, the simulated
time, the accessed object (``SimCell``/``SimLock``/``SimBarrier``), and
the *access site* — the source line of the generator's suspension point
— so race reports can name both offending lines.

The log is an offline trace: detectors (:mod:`repro.sanitizer.hb`,
:mod:`repro.sanitizer.lockset`) replay it after the run.  Because the
engine is deterministic, the event sequence is a pure function of the
spawned generators, so a race report's ``(seed, seq)`` pair is an exact
reproduction recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Event kinds that touch a memory cell.
ACCESS_KINDS = frozenset({"read", "write", "cas", "guarded_write"})

#: Event kinds that end a lock grant (paired 1:1 with ``acquire``).
GRANT_END_KINDS = frozenset({"release", "revoke"})


@dataclass(frozen=True)
class Event:
    """One engine-level event, in linearization order."""

    seq: int
    kind: str
    tid: int
    time: float
    obj: Any
    #: ``file.py:line (func)`` of the emitting thread's suspension point,
    #: or ``None`` when the thread is already gone (kill, revocation of a
    #: crashed holder's lock).
    site: Optional[str]
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_access(self) -> bool:
        """Whether this event touches a memory cell."""
        return self.kind in ACCESS_KINDS

    @property
    def is_write(self) -> bool:
        """Whether this event mutates the cell (failed ``guarded_write``
        and failed ``cas`` do not — the value never changes)."""
        if self.kind == "write":
            return True
        if self.kind in ("guarded_write", "cas"):
            return bool(self.info.get("ok"))
        return False

    def describe(self, label: str = "") -> str:
        """Human-oriented one-liner for reports."""
        where = self.site or "<thread gone>"
        name = label or getattr(self.obj, "name", "") or "<unnamed>"
        return f"{self.kind} of {name} by tid {self.tid} at t={self.time:.0f} [{where}]"


class EventLog:
    """Append-only event collector; attach as ``engine.monitor``.

    Example
    -------
    >>> from repro.sim import Engine
    >>> from repro.sanitizer import EventLog
    >>> eng = Engine()
    >>> log = EventLog.attach(eng)
    >>> # ... spawn threads, eng.run() ...
    >>> len(log.events)  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.events: List[Event] = []

    @classmethod
    def attach(cls, engine) -> "EventLog":
        """Create a log and install it as ``engine.monitor``."""
        log = cls()
        engine.monitor = log
        return log

    def record(
        self,
        kind: str,
        tid: int,
        time: float,
        obj: Any,
        site: Optional[str],
        info: Dict[str, Any],
    ) -> None:
        """Engine callback: append one event (linearization order)."""
        self.events.append(Event(len(self.events), kind, tid, time, obj, site, info))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def kinds(self) -> Dict[str, int]:
        """Event counts by kind (diagnostics)."""
        counts: Dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts
