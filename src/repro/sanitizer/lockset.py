"""Eraser-style lockset analysis over the event stream.

The lockset discipline is stricter than happens-before: a cell is
suspect as soon as *no single lock* is held consistently across all the
accesses that touch it, even if this run's interleaving happened to
order them (fork edges, barrier edges, lucky timing).  That makes the
analyzer noisier than :mod:`repro.sanitizer.hb` but immune to
interleaving luck — and its warnings a **superset** of the HB races
(two accesses unordered by happens-before cannot both hold a common
lock: the lock's release→acquire edge would order them; lease
revocation also creates that edge, see the HB module).

State machine per cell (Eraser, with one refinement):

* ``virgin`` → first access → ``exclusive`` (single thread; written-ness
  remembered);
* ``exclusive`` → access by a second thread → ``shared-modified`` if a
  write is involved **on either side** (classic Eraser forgets the
  exclusive phase's writes and downgrades write-then-foreign-read to
  read-shared, which would lose write→read races and break the superset
  property) — otherwise ``shared``;
* ``shared`` → any write → ``shared-modified``.

The candidate lockset is intersected on *every* access from the very
first (prefill happens outside the engine, so there is no init phase to
forgive).  A warning fires when the state reaches ``shared-modified``
with an empty candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.sanitizer.events import Event
from repro.sim.primitives import SimLock

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


@dataclass(frozen=True)
class LocksetWarning:
    """A cell whose accesses share no common lock while written by
    multiple threads (candidate set drained to empty)."""

    cell: object
    #: Site of the most recent write when the warning fired.
    write_site: Optional[str]
    #: Site of the access that drained the candidate set.
    access_site: Optional[str]
    tids: FrozenSet[int]
    seq: int
    time: float


@dataclass
class _CellState:
    state: str = VIRGIN
    owner: Optional[int] = None
    written: bool = False
    candidates: Optional[Set[SimLock]] = None  # None = not yet initialized
    tids: Set[int] = field(default_factory=set)
    last_write_site: Optional[str] = None
    warned: bool = False


class LocksetAnalyzer:
    """Replay an event log through the Eraser state machine."""

    def __init__(self) -> None:
        self._held: Dict[int, List[SimLock]] = {}
        self._cells: Dict[int, _CellState] = {}
        self.warnings: List[LocksetWarning] = []

    def process(self, events) -> List[LocksetWarning]:
        """Run the analyzer over an iterable of events; returns warnings."""
        for ev in events:
            if ev.kind == "acquire":
                self._held.setdefault(ev.tid, []).append(ev.obj)
            elif ev.kind in ("release", "revoke"):
                held = self._held.get(ev.tid)
                if held is not None and ev.obj in held:
                    held.remove(ev.obj)
            elif ev.is_access:
                if ev.kind == "guarded_write" and not ev.is_write:
                    continue  # failed guarded write: touches nothing
                self._access(ev, is_write=ev.is_write or ev.kind == "cas")
        return self.warnings

    def _access(self, ev: Event, is_write: bool) -> None:
        state = self._cells.setdefault(id(ev.obj), _CellState())
        held = set(self._held.get(ev.tid, ()))
        state.tids.add(ev.tid)
        if state.candidates is None:
            state.candidates = held
        else:
            state.candidates &= held
        if is_write:
            state.last_write_site = ev.site

        if state.state == VIRGIN:
            state.state = EXCLUSIVE
            state.owner = ev.tid
            state.written = is_write
        elif state.state == EXCLUSIVE:
            if ev.tid == state.owner:
                state.written = state.written or is_write
            elif state.written or is_write:
                state.state = SHARED_MODIFIED
            else:
                state.state = SHARED
        elif state.state == SHARED and is_write:
            state.state = SHARED_MODIFIED

        if state.state == SHARED_MODIFIED and not state.candidates and not state.warned:
            state.warned = True
            self.warnings.append(
                LocksetWarning(
                    cell=ev.obj,
                    write_site=state.last_write_site,
                    access_site=ev.site,
                    tids=frozenset(state.tids),
                    seq=ev.seq,
                    time=ev.time,
                )
            )
