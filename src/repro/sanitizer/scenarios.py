"""Canned sanitized scenarios for ``repro sanitize``, CI, and tests.

:func:`run_sanitized` builds an engine with a :class:`Sanitizer`
attached, runs a MultiQueue workload (optionally under the chaos
engine's fault plan, with lock leases and revocation in play), and
returns the :class:`~repro.sanitizer.detector.SanitizerReport`.

Variants:

* ``lock-better`` / ``lock-both`` — the real MultiQueue locking
  disciplines; both must come out race-free.
* ``broken-nolock`` — :class:`NoLockMultiQueue`, a deliberately broken
  mutant whose inserts publish the top cell with a plain ``Write`` and
  **no lock**.  Two threads hitting the same queue is a true write-write
  race the happens-before detector must flag (and the discipline pass
  reports as ``unguarded-write`` even on interleavings where no race
  materializes).  It exists to prove the sanitizer can see; it is not
  exported outside this module's scenarios.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.concurrent import ConcurrentMultiQueue
from repro.sanitizer.detector import Sanitizer, SanitizerReport
from repro.sim.engine import Engine
from repro.sim.faults import CrashStop, FaultInjector, FaultPlan, LockHolderStall
from repro.sim.syscalls import Delay, Write
from repro.sim.workload import AlternatingWorkload

VARIANTS = ("lock-better", "lock-both", "broken-nolock")
SCENARIOS = ("workload", "chaos")


class NoLockMultiQueue(ConcurrentMultiQueue):
    """Mutant MultiQueue that publishes tops without taking the lock.

    Inherits the (correct) deletion path; only ``insert_op`` is broken,
    which is enough: unlocked insert-publishes race both with each other
    and with the locked deleters' ``GuardedWrite`` publishes.
    """

    def insert_op(self, tid: int, priority: int) -> Generator:
        cost = self.engine.cost
        eid = self._new_eid(priority)
        yield Delay(cost.rng_draw)
        q = int(self._rng.integers(self.n_queues))
        heap = self._heaps[q]
        heap.push(priority, eid)
        if self._recorder is not None:
            self._recorder.record_insert(self.engine.now, eid)
        yield Delay(cost.pq_op_cost(len(heap)))
        # BROKEN ON PURPOSE: no TryAcquire around the publish.
        yield Write(self._tops[q], heap.peek().priority)
        return eid


def run_sanitized(
    scenario: str = "workload",
    variant: str = "lock-better",
    seed: int = 1,
    n_threads: int = 4,
    ops_per_thread: int = 100,
    n_queues: int = 4,
    prefill: int = 500,
    lease: Optional[float] = None,
    progress_budget: Optional[float] = 5e6,
) -> SanitizerReport:
    """Run one scenario under race detection; returns the report.

    ``scenario='chaos'`` adds a crash-stop and a targeted lock-holder
    stall (fixed fault seed) and defaults lock leases on, so revocation
    paths are exercised under detection.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}, got {scenario!r}")
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")

    chaos = scenario == "chaos"
    if chaos and lease is None:
        lease = 50_000.0

    engine = Engine(progress_budget=progress_budget)
    sanitizer = Sanitizer.attach(engine)
    model_cls = NoLockMultiQueue if variant == "broken-nolock" else ConcurrentMultiQueue
    model = model_cls(
        engine,
        n_queues,
        rng=seed,
        delete_locking="both" if variant == "lock-both" else "better",
        lock_lease=lease,
    )
    model.prefill(np.random.default_rng(seed).integers(2**40, size=prefill))
    AlternatingWorkload(model, n_threads, ops_per_thread, rng=seed + 1).spawn_on(engine)

    if chaos:
        horizon = 600.0 * n_threads * ops_per_thread
        plan = FaultPlan(
            [
                CrashStop(at=0.25 * horizon, thread="worker-0"),
                LockHolderStall(at=0.5 * horizon, duration=2 * (lease or 50_000.0)),
            ],
            rng=seed,
        )
        FaultInjector(plan).attach(engine)

    engine.run()
    return sanitizer.report(model, seed=seed)


def run_sweep(
    scenario: str = "workload",
    variant: str = "lock-better",
    seeds: int = 10,
    **kwargs,
) -> list:
    """Run ``seeds`` independent sanitized runs (seeds 1..N); returns the
    reports in seed order."""
    return [
        run_sanitized(scenario=scenario, variant=variant, seed=s, **kwargs)
        for s in range(1, seeds + 1)
    ]
