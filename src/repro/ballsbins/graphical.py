"""Graphical balanced allocation (Peres–Talwar–Wieder).

The two choices are the endpoints of a uniformly random *edge* of a
graph ``G`` on the bins; the complete graph recovers classic two-choice.
Expansion of ``G`` governs the gap — the same phenomenon the paper's
Section 6 conjectures for the labelled graph process (implemented in
:mod:`repro.graphs.choice_process`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator

Edge = Tuple[int, int]


class GraphicalAllocation:
    """Balls-into-bins where choices come from random edges of a graph.

    Parameters
    ----------
    n:
        Number of bins (graph vertices ``0..n-1``).
    edges:
        Edge list; each step samples one edge uniformly and places the
        ball on its lesser-loaded endpoint (random tie-break).
    """

    def __init__(self, n: int, edges: Sequence[Edge], rng: SeedLike = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not edges:
            raise ValueError("edge list must be non-empty")
        self.n = n
        self._edges = np.asarray(edges, dtype=np.int64)
        if self._edges.ndim != 2 or self._edges.shape[1] != 2:
            raise ValueError("edges must be a sequence of (u, v) pairs")
        if self._edges.min() < 0 or self._edges.max() >= n:
            raise ValueError("edge endpoints out of range")
        self._rng = as_generator(rng)
        self._loads = np.zeros(n, dtype=np.int64)
        self.balls = 0

    @property
    def loads(self) -> np.ndarray:
        """Current load vector (a copy)."""
        return self._loads.copy()

    def gap(self) -> float:
        """``max(loads) - mean(loads)``."""
        return float(self._loads.max() - self._loads.mean())

    def insert_many(self, m: int) -> None:
        """Throw ``m`` balls along uniformly random edges."""
        rng = self._rng
        edge_idx = rng.integers(len(self._edges), size=m)
        ties = rng.random(size=m) < 0.5
        loads = self._loads
        edges = self._edges
        for b in range(m):
            u, v = edges[edge_idx[b]]
            lu, lv = loads[u], loads[v]
            if lv < lu or (lv == lu and ties[b]):
                u = v
            loads[u] += 1
        self.balls += m

    def gap_history(self, m: int, sample_every: int = 1000) -> Tuple[np.ndarray, np.ndarray]:
        """Insert ``m`` balls, sampling the gap periodically."""
        steps: List[int] = []
        gaps: List[float] = []
        remaining = m
        while remaining > 0:
            chunk = min(sample_every, remaining)
            self.insert_many(chunk)
            remaining -= chunk
            steps.append(self.balls)
            gaps.append(self.gap())
        return np.asarray(steps), np.asarray(gaps)

    def __repr__(self) -> str:
        return f"GraphicalAllocation(n={self.n}, edges={len(self._edges)}, balls={self.balls})"
