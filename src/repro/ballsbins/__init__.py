"""Balls-into-bins processes: the classical substrate behind the analysis.

The paper's proof connects priority scheduling to "heavily loaded"
balls-into-bins theory (Berenbrink et al., Peres–Talwar–Wieder).  This
package implements the classical processes so the reductions and
tightness arguments can be exercised empirically:

* one-choice, two-choice, d-choice and (1+beta)-choice allocations;
* the heavily-loaded *long-lived* variant (insert + delete each step);
* weighted allocations (exponential weights — [30, Example 2], the
  source of the ``Theta(log n)`` gap behind the ``Theta(n log n)``
  max-rank tightness claim);
* graphical allocations, where choices are the endpoints of a random
  edge of a graph (the Section 6 future-work process is its labelled
  sibling).
"""

from repro.ballsbins.processes import (
    BallsIntoBins,
    d_choice_loads,
    gap,
    gap_history,
    one_choice_loads,
    one_plus_beta_loads,
    two_choice_loads,
)
from repro.ballsbins.weighted import WeightedBallsIntoBins, exponential_weight_gap
from repro.ballsbins.graphical import GraphicalAllocation

__all__ = [
    "BallsIntoBins",
    "one_choice_loads",
    "two_choice_loads",
    "d_choice_loads",
    "one_plus_beta_loads",
    "gap",
    "gap_history",
    "WeightedBallsIntoBins",
    "exponential_weight_gap",
    "GraphicalAllocation",
]
