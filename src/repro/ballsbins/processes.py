"""Classical (unweighted) balls-into-bins allocation processes."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator


def gap(loads: np.ndarray) -> float:
    """The load gap ``max(loads) - mean(loads)``.

    The headline statistic of allocation theory: ``Theta(sqrt(m log n / n))``
    for one-choice after ``m`` balls, but only ``log log n + O(1)`` for
    two-choice — independent of ``m`` (heavily-loaded case).
    """
    loads = np.asarray(loads)
    return float(loads.max() - loads.mean())


def one_choice_loads(n: int, m: int, rng: SeedLike = None) -> np.ndarray:
    """Throw ``m`` balls into ``n`` bins uniformly (vectorized)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    gen = as_generator(rng)
    return np.bincount(gen.integers(n, size=m), minlength=n).astype(np.int64)


def d_choice_loads(
    n: int, m: int, d: int = 2, rng: SeedLike = None, tie_break: str = "random"
) -> np.ndarray:
    """Throw ``m`` balls, each into the least loaded of ``d`` uniform choices.

    Choices are sampled with replacement.  ``tie_break`` is ``"random"``
    (uniform among tied minima, the textbook process) or ``"index"``
    (smallest bin index, the deterministic variant used by the App. A
    reduction).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if d <= 0:
        raise ValueError(f"d must be positive, got {d}")
    if tie_break not in ("random", "index"):
        raise ValueError(f"unknown tie_break {tie_break!r}")
    gen = as_generator(rng)
    loads = np.zeros(n, dtype=np.int64)
    # Draw all choices up front: an (m, d) matrix of bin indices.
    choices = gen.integers(n, size=(m, d))
    if tie_break == "random":
        # Pre-draw per-ball tiebreak permutations lazily via random keys.
        keys = gen.random(size=(m, d))
    for b in range(m):
        row = choices[b]
        best = row[0]
        best_load = loads[best]
        if tie_break == "random":
            best_key = keys[b, 0]
            for k in range(1, d):
                c = row[k]
                lc = loads[c]
                if lc < best_load or (lc == best_load and keys[b, k] < best_key):
                    best, best_load, best_key = c, lc, keys[b, k]
        else:
            for k in range(1, d):
                c = row[k]
                lc = loads[c]
                if lc < best_load or (lc == best_load and c < best):
                    best, best_load = c, lc
        loads[best] += 1
    return loads


def two_choice_loads(n: int, m: int, rng: SeedLike = None, tie_break: str = "random") -> np.ndarray:
    """The classic power-of-two-choices allocation (``d_choice`` with d=2)."""
    return d_choice_loads(n, m, d=2, rng=rng, tie_break=tie_break)


def one_plus_beta_loads(n: int, m: int, beta: float, rng: SeedLike = None) -> np.ndarray:
    """The (1+beta)-choice mixture of Peres–Talwar–Wieder.

    Each ball uses two choices with probability ``beta`` and a single
    uniform choice otherwise.
    """
    if not 0 <= beta <= 1:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    gen = as_generator(rng)
    loads = np.zeros(n, dtype=np.int64)
    coins = gen.random(size=m) < beta
    first = gen.integers(n, size=m)
    second = gen.integers(n, size=m)
    ties = gen.random(size=m) < 0.5
    for b in range(m):
        i = first[b]
        if coins[b]:
            j = second[b]
            li, lj = loads[i], loads[j]
            if lj < li or (lj == li and ties[b]):
                i = j
        loads[i] += 1
    return loads


def gap_history(
    n: int,
    m: int,
    d: int = 2,
    beta: float = 1.0,
    rng: SeedLike = None,
    sample_every: int = 1000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gap trajectory of a (1+beta) d-choice allocation.

    Returns ``(sample_steps, gaps)``.  For ``d=2`` the gap plateaus
    (heavily-loaded two-choice); for ``d=1`` (or ``beta=0``) it grows as
    ``sqrt(m)`` — the dichotomy mirrored by Theorems 1 and 6.
    """
    gen = as_generator(rng)
    loads = np.zeros(n, dtype=np.int64)
    steps: List[int] = []
    gaps: List[float] = []
    for ball in range(1, m + 1):
        use_two = d >= 2 and (beta >= 1.0 or gen.random() < beta)
        i = int(gen.integers(n))
        if use_two:
            best, best_load = i, loads[i]
            for _ in range(d - 1):
                j = int(gen.integers(n))
                if loads[j] < best_load:
                    best, best_load = j, loads[j]
            i = best
        loads[i] += 1
        if ball % sample_every == 0:
            steps.append(ball)
            gaps.append(gap(loads))
    return np.asarray(steps), np.asarray(gaps)


class BallsIntoBins:
    """Long-lived (heavily loaded) allocation: inserts and deletions.

    Each :meth:`step` inserts one ball by the (1+beta) d-choice rule and
    (optionally) deletes one ball from a uniformly random *non-empty*
    bin, keeping the total load roughly constant — the regime of
    Berenbrink et al.'s heavily-loaded analysis.
    """

    def __init__(
        self,
        n: int,
        d: int = 2,
        beta: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if d <= 0:
            raise ValueError(f"d must be positive, got {d}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.n = n
        self.d = d
        self.beta = beta
        self._rng = as_generator(rng)
        self._loads = np.zeros(n, dtype=np.int64)
        self.steps = 0

    @property
    def loads(self) -> np.ndarray:
        """Current load vector (a copy)."""
        return self._loads.copy()

    def gap(self) -> float:
        """Current max-minus-mean gap."""
        return gap(self._loads)

    def insert(self) -> int:
        """Insert one ball; returns the chosen bin."""
        rng = self._rng
        use_two = self.d >= 2 and (self.beta >= 1.0 or rng.random() < self.beta)
        best = int(rng.integers(self.n))
        if use_two:
            best_load = self._loads[best]
            for _ in range(self.d - 1):
                j = int(rng.integers(self.n))
                if self._loads[j] < best_load:
                    best, best_load = j, self._loads[j]
        self._loads[best] += 1
        return best

    def delete_uniform(self) -> Optional[int]:
        """Delete one ball from a uniform random non-empty bin.

        Returns the bin index, or ``None`` if the system is empty.
        """
        if self._loads.sum() == 0:
            return None
        rng = self._rng
        while True:
            i = int(rng.integers(self.n))
            if self._loads[i] > 0:
                self._loads[i] -= 1
                return i

    def step(self) -> None:
        """One heavily-loaded round: insert then delete."""
        self.insert()
        self.delete_uniform()
        self.steps += 1

    def run(self, steps: int, prefill: int = 0) -> None:
        """Prefill ``prefill`` balls then run ``steps`` insert+delete rounds."""
        for _ in range(prefill):
            self.insert()
        for _ in range(steps):
            self.step()

    def __repr__(self) -> str:
        return (
            f"BallsIntoBins(n={self.n}, d={self.d}, beta={self.beta}, "
            f"total={int(self._loads.sum())})"
        )
