"""Weighted balls-into-bins (Talwar–Wieder, Peres–Talwar–Wieder).

Balls carry i.i.d. weights; each ball goes to the lighter of its random
choices.  With ``Exp(1)`` weights this is [30, Example 2] — the process
whose ``Theta(log n)`` expected gap underlies the paper's tightness
argument for the ``Theta(n log n)`` expected max rank.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator

#: A weight sampler: maps (generator, count) to an array of weights.
WeightSampler = Callable[[np.random.Generator, int], np.ndarray]


def exponential_weights(gen: np.random.Generator, count: int) -> np.ndarray:
    """``Exp(1)`` ball weights — the canonical heavy-ish tailed case."""
    return gen.exponential(1.0, size=count)


def uniform_weights(gen: np.random.Generator, count: int) -> np.ndarray:
    """``U[0, 2]`` ball weights (mean 1, bounded)."""
    return gen.uniform(0.0, 2.0, size=count)


def unit_weights(gen: np.random.Generator, count: int) -> np.ndarray:
    """Constant weight 1 — recovers the unweighted process."""
    return np.ones(count)


class WeightedBallsIntoBins:
    """(1+beta) d-choice allocation of weighted balls.

    Parameters
    ----------
    n:
        Number of bins.
    beta:
        Probability of using two choices (else one).
    weight_sampler:
        Callable drawing ball weights; defaults to ``Exp(1)``.
    """

    def __init__(
        self,
        n: int,
        beta: float = 1.0,
        weight_sampler: WeightSampler = exponential_weights,
        rng: SeedLike = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.n = n
        self.beta = beta
        self._sampler = weight_sampler
        self._rng = as_generator(rng)
        self._loads = np.zeros(n, dtype=float)
        self.balls = 0

    @property
    def loads(self) -> np.ndarray:
        """Current (real-valued) load vector, as a copy."""
        return self._loads.copy()

    def gap(self) -> float:
        """``max(loads) - mean(loads)``."""
        return float(self._loads.max() - self._loads.mean())

    def insert_many(self, m: int) -> None:
        """Throw ``m`` weighted balls via the (1+beta) rule."""
        rng = self._rng
        weights = self._sampler(rng, m)
        coins = rng.random(size=m) < self.beta if self.beta < 1.0 else np.ones(m, bool)
        first = rng.integers(self.n, size=m)
        second = rng.integers(self.n, size=m)
        loads = self._loads
        for b in range(m):
            i = first[b]
            if coins[b]:
                j = second[b]
                if loads[j] < loads[i]:
                    i = j
            loads[i] += weights[b]
        self.balls += m

    def gap_history(self, m: int, sample_every: int = 1000) -> Tuple[np.ndarray, np.ndarray]:
        """Insert ``m`` balls, sampling the gap periodically."""
        steps, gaps = [], []
        remaining = m
        while remaining > 0:
            chunk = min(sample_every, remaining)
            self.insert_many(chunk)
            remaining -= chunk
            steps.append(self.balls)
            gaps.append(self.gap())
        return np.asarray(steps), np.asarray(gaps)

    def __repr__(self) -> str:
        return f"WeightedBallsIntoBins(n={self.n}, beta={self.beta}, balls={self.balls})"


def exponential_weight_gap(
    n: int, m: int, beta: float = 1.0, rng: SeedLike = None
) -> float:
    """Final gap after ``m`` exponential-weight balls (convenience)."""
    proc = WeightedBallsIntoBins(n, beta=beta, rng=rng)
    proc.insert_many(m)
    return proc.gap()
