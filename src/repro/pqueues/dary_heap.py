"""d-ary implicit min-heap (default d=4).

A wider fan-out trades a shallower tree (cheaper ``push``) against
scanning ``d`` children per level on ``pop``.  d=4 is the classic
cache-friendly sweet spot and is what several production MultiQueue
implementations use for the per-queue heaps.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError


class DaryHeap(PriorityQueue):
    """Implicit d-ary heap with stable FIFO tie-breaking."""

    __slots__ = ("_data", "_seq", "_d")

    def __init__(self, d: int = 4) -> None:
        if d < 2:
            raise ValueError(f"heap arity d must be >= 2, got {d}")
        self._d = d
        self._data: List[Tuple[Any, int, Any]] = []
        self._seq = 0

    @property
    def arity(self) -> int:
        """The branching factor ``d``."""
        return self._d

    def push(self, priority: Any, item: Any = None) -> None:
        if item is None:
            item = priority
        self._data.append((priority, self._seq, item))
        self._seq += 1
        self._sift_up(len(self._data) - 1)

    def pop(self) -> Entry:
        data = self._data
        if not data:
            raise QueueEmptyError("pop from empty DaryHeap")
        top = data[0]
        last = data.pop()
        if data:
            data[0] = last
            self._sift_down(0)
        return Entry(top[0], top[2])

    def peek(self) -> Entry:
        if not self._data:
            raise QueueEmptyError("peek on empty DaryHeap")
        top = self._data[0]
        return Entry(top[0], top[2])

    def __len__(self) -> int:
        return len(self._data)

    # -- internals -------------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        data = self._data
        d = self._d
        entry = data[pos]
        key = (entry[0], entry[1])
        while pos > 0:
            parent = (pos - 1) // d
            pentry = data[parent]
            if (pentry[0], pentry[1]) <= key:
                break
            data[pos] = pentry
            pos = parent
        data[pos] = entry

    def _sift_down(self, pos: int) -> None:
        data = self._data
        d = self._d
        size = len(data)
        entry = data[pos]
        key = (entry[0], entry[1])
        while True:
            first = d * pos + 1
            if first >= size:
                break
            best = first
            bentry = data[first]
            bkey = (bentry[0], bentry[1])
            for child in range(first + 1, min(first + d, size)):
                centry = data[child]
                ckey = (centry[0], centry[1])
                if ckey < bkey:
                    best, bentry, bkey = child, centry, ckey
            if key <= bkey:
                break
            data[pos] = bentry
            pos = best
        data[pos] = entry
