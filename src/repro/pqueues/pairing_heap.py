"""Pairing heap: O(1) push and meld, O(log n) amortized pop.

Pairing heaps are a standard choice for Dijkstra-style workloads where
pushes vastly outnumber pops, and they support :meth:`meld` which the
k-LSM-style baselines exploit to merge thread-local components cheaply.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError


class _Node:
    __slots__ = ("priority", "seq", "item", "children")

    def __init__(self, priority: Any, seq: int, item: Any) -> None:
        self.priority = priority
        self.seq = seq
        self.item = item
        self.children: List["_Node"] = []

    def key(self):
        return (self.priority, self.seq)


class PairingHeap(PriorityQueue):
    """Multi-way pairing heap with stable FIFO tie-breaking and meld."""

    __slots__ = ("_root", "_size", "_seq")

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self._seq = 0

    def push(self, priority: Any, item: Any = None) -> None:
        if item is None:
            item = priority
        node = _Node(priority, self._seq, item)
        self._seq += 1
        self._root = node if self._root is None else _link(self._root, node)
        self._size += 1

    def pop(self) -> Entry:
        root = self._root
        if root is None:
            raise QueueEmptyError("pop from empty PairingHeap")
        self._root = _merge_pairs(root.children)
        self._size -= 1
        return Entry(root.priority, root.item)

    def peek(self) -> Entry:
        if self._root is None:
            raise QueueEmptyError("peek on empty PairingHeap")
        return Entry(self._root.priority, self._root.item)

    def meld(self, other: "PairingHeap") -> None:
        """Destructively merge ``other`` into this heap in O(1).

        ``other`` is emptied.  Tie-breaking seq counters are offset so
        entries from ``other`` sort after same-priority entries already
        here (a deterministic, if arbitrary, stable order).
        """
        if other is self:
            raise ValueError("cannot meld a heap with itself")
        if other._root is None:
            return
        _reseq(other._root, self._seq)
        self._seq += other._seq
        self._root = other._root if self._root is None else _link(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0
        other._seq = 0

    def __len__(self) -> int:
        return self._size


def _link(a: _Node, b: _Node) -> _Node:
    """Make the larger-keyed node a child of the smaller-keyed node."""
    if b.key() < a.key():
        a, b = b, a
    a.children.append(b)
    return a


def _merge_pairs(children: List[_Node]) -> Optional[_Node]:
    """The two-pass pairing combine used after removing the root."""
    if not children:
        return None
    # First pass: link adjacent pairs left-to-right.
    paired: List[_Node] = []
    it = iter(children)
    for first in it:
        second = next(it, None)
        paired.append(first if second is None else _link(first, second))
    # Second pass: fold right-to-left.
    result = paired[-1]
    for node in reversed(paired[:-1]):
        result = _link(node, result)
    return result


def _reseq(node: _Node, offset: int) -> None:
    """Shift the tie-break counters of a whole subtree (iteratively)."""
    stack = [node]
    while stack:
        cur = stack.pop()
        cur.seq += offset
        stack.extend(cur.children)
