"""Sequential priority queues — the per-queue substrate of a MultiQueue.

The paper's MultiQueue composes ``n`` *sequential* priority queues (the
C++ implementation uses boost heaps).  This package provides several
interchangeable implementations behind one protocol so benches can vary
the substrate:

==================  =============================  =========================
Class               push / pop                      Notes
==================  =============================  =========================
BinaryHeap          O(log n) / O(log n)            array-based, the default
DaryHeap            O(log_d n) / O(d log_d n)      cache-friendlier for d=4
PairingHeap         O(1) / O(log n) amortized      supports meld
SkipListPQ          O(log n) expected              ordered iteration
SortedListPQ        O(n) / O(1)                    bisect reference impl
BucketQueue         O(1) / O(span) monotone        integer priorities
==================  =============================  =========================

All are **min**-queues over ``(priority, item)`` entries; ties broken by
insertion order (FIFO among equal priorities), making every
implementation a *stable* priority queue with identical observable
behaviour — property tests in ``tests/pqueues`` enforce cross-equality.
"""

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError
from repro.pqueues.binary_heap import BinaryHeap
from repro.pqueues.dary_heap import DaryHeap
from repro.pqueues.pairing_heap import PairingHeap
from repro.pqueues.skiplist import SkipListPQ
from repro.pqueues.sorted_list import SortedListPQ
from repro.pqueues.bucket_queue import BucketQueue
from repro.pqueues.radix_heap import RadixHeap

#: Mapping of short names to factories, used by CLI-ish bench parameters.
QUEUE_FACTORIES = {
    "binary": BinaryHeap,
    "dary": DaryHeap,
    "pairing": PairingHeap,
    "skiplist": SkipListPQ,
    "sorted": SortedListPQ,
    "bucket": BucketQueue,
    "radix": RadixHeap,
}

__all__ = [
    "Entry",
    "PriorityQueue",
    "QueueEmptyError",
    "BinaryHeap",
    "DaryHeap",
    "PairingHeap",
    "SkipListPQ",
    "SortedListPQ",
    "BucketQueue",
    "RadixHeap",
    "QUEUE_FACTORIES",
]
