"""Array-based binary min-heap with stable tie-breaking."""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError


class BinaryHeap(PriorityQueue):
    """Classic implicit binary heap over a Python list.

    Stability is obtained by storing ``(priority, seq, item)`` triples,
    where ``seq`` is a monotonically increasing insertion counter; heap
    order compares ``(priority, seq)`` so equal priorities pop FIFO.
    """

    __slots__ = ("_data", "_seq")

    def __init__(self) -> None:
        self._data: List[Tuple[Any, int, Any]] = []
        self._seq = 0

    def push(self, priority: Any, item: Any = None) -> None:
        if item is None:
            item = priority
        self._data.append((priority, self._seq, item))
        self._seq += 1
        self._sift_up(len(self._data) - 1)

    def pop(self) -> Entry:
        data = self._data
        if not data:
            raise QueueEmptyError("pop from empty BinaryHeap")
        top = data[0]
        last = data.pop()
        if data:
            data[0] = last
            self._sift_down(0)
        return Entry(top[0], top[2])

    def peek(self) -> Entry:
        if not self._data:
            raise QueueEmptyError("peek on empty BinaryHeap")
        top = self._data[0]
        return Entry(top[0], top[2])

    def __len__(self) -> int:
        return len(self._data)

    def entries(self) -> List[Entry]:
        """All stored entries in arbitrary (heap-array) order — for
        non-destructive inspection by invariant auditors."""
        return [Entry(priority, item) for priority, _seq, item in self._data]

    # -- internals -------------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        data = self._data
        entry = data[pos]
        key = (entry[0], entry[1])
        while pos > 0:
            parent = (pos - 1) >> 1
            pentry = data[parent]
            if (pentry[0], pentry[1]) <= key:
                break
            data[pos] = pentry
            pos = parent
        data[pos] = entry

    def _sift_down(self, pos: int) -> None:
        data = self._data
        size = len(data)
        entry = data[pos]
        key = (entry[0], entry[1])
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size:
                c, r = data[child], data[right]
                if (r[0], r[1]) < (c[0], c[1]):
                    child = right
            centry = data[child]
            if key <= (centry[0], centry[1]):
                break
            data[pos] = centry
            pos = child
        data[pos] = entry
