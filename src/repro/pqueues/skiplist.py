"""Skiplist-backed priority queue.

This is the sequential core of the Linden–Jonsson baseline: a sorted
probabilistic linked structure whose minimum sits at the head, so
``peek``/``pop`` are O(1) expected and ``push`` is O(log n) expected.
Unlike the heaps it supports ordered iteration, which the rank
post-processor uses in tests as a ground-truth ordering.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError
from repro.utils.rngtools import as_generator

_MAX_LEVEL = 32
_P = 0.5


class _SLNode:
    __slots__ = ("priority", "seq", "item", "forward")

    def __init__(self, priority: Any, seq: int, item: Any, level: int) -> None:
        self.priority = priority
        self.seq = seq
        self.item = item
        self.forward: List[Optional["_SLNode"]] = [None] * level

    def key(self):
        return (self.priority, self.seq)


class SkipListPQ(PriorityQueue):
    """Stable min-priority queue over a skiplist.

    Parameters
    ----------
    rng:
        Seed or generator for tower-height coin flips.  Fixing it makes
        the structure fully deterministic (useful in tests).
    """

    __slots__ = ("_head", "_level", "_size", "_seq", "_rng")

    def __init__(self, rng=None) -> None:
        self._head = _SLNode(None, -1, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._seq = 0
        self._rng = as_generator(rng)

    def push(self, priority: Any, item: Any = None) -> None:
        if item is None:
            item = priority
        key = (priority, self._seq)
        update: List[_SLNode] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key() < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        height = self._random_level()
        if height > self._level:
            for lvl in range(self._level, height):
                update[lvl] = self._head
            self._level = height
        new = _SLNode(priority, self._seq, item, height)
        self._seq += 1
        for lvl in range(height):
            new.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = new
        self._size += 1

    def pop(self) -> Entry:
        first = self._head.forward[0]
        if first is None:
            raise QueueEmptyError("pop from empty SkipListPQ")
        for lvl in range(len(first.forward)):
            self._head.forward[lvl] = first.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return Entry(first.priority, first.item)

    def peek(self) -> Entry:
        first = self._head.forward[0]
        if first is None:
            raise QueueEmptyError("peek on empty SkipListPQ")
        return Entry(first.priority, first.item)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Entry]:
        """Iterate entries in priority order without removing them."""
        node = self._head.forward[0]
        while node is not None:
            yield Entry(node.priority, node.item)
            node = node.forward[0]

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level
