"""Monotone radix heap for integer priorities.

The radix heap (Ahuja–Mehlhorn–Orlin–Tarjan) is the classic
O(m + n log C) Dijkstra structure: items are bucketed by the index of
the highest bit in which their priority differs from the last popped
priority, so each item is redistributed at most ``log C`` times over its
lifetime.  Like :class:`~repro.pqueues.BucketQueue` it requires the
monotone property (no push below the last pop), which Dijkstra
guarantees.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

import numpy as np

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError

#: Enough buckets for 63-bit priorities plus the equal bucket.
_N_BUCKETS = 65


class RadixHeap(PriorityQueue):
    """Stable monotone radix heap over non-negative integer priorities.

    Bucket ``0`` holds items equal to the last popped priority (kept as
    a seq-ordered heap so FIFO tie-breaking survives redistribution);
    bucket ``i`` holds items whose priority first differs from it at bit
    ``i-1``.
    """

    __slots__ = ("_buckets", "_bucket0", "_last", "_size", "_seq")

    def __init__(self) -> None:
        # _buckets[i] for i >= 1: unordered (priority, seq, item) lists.
        self._buckets: List[List[Tuple[int, int, Any]]] = [[] for _ in range(_N_BUCKETS)]
        # Bucket 0: items with priority == _last, heap-ordered by seq.
        self._bucket0: List[Tuple[int, Any]] = []
        self._last = 0
        self._size = 0
        self._seq = 0

    @property
    def last_popped(self) -> int:
        """The monotone floor: the most recently popped priority."""
        return self._last

    def push(self, priority: Any, item: Any = None) -> None:
        if not isinstance(priority, (int, np.integer)) or isinstance(priority, bool):
            raise TypeError(
                f"RadixHeap requires int priorities, got {type(priority).__name__}"
            )
        priority = int(priority)
        if priority < 0:
            raise ValueError(f"RadixHeap requires non-negative priorities, got {priority}")
        if priority < self._last:
            raise ValueError(
                f"monotone violation: push priority {priority} below "
                f"last popped priority {self._last}"
            )
        if item is None:
            item = priority
        idx = (priority ^ self._last).bit_length()
        if idx == 0:
            heapq.heappush(self._bucket0, (self._seq, item))
        else:
            self._buckets[idx].append((priority, self._seq, item))
        self._seq += 1
        self._size += 1

    def pop(self) -> Entry:
        if self._size == 0:
            raise QueueEmptyError("pop from empty RadixHeap")
        if not self._bucket0:
            self._redistribute()
        _seq, item = heapq.heappop(self._bucket0)
        self._size -= 1
        return Entry(self._last, item)

    def peek(self) -> Entry:
        if self._size == 0:
            raise QueueEmptyError("peek on empty RadixHeap")
        if not self._bucket0:
            self._redistribute()
        return Entry(self._last, self._bucket0[0][1])

    def __len__(self) -> int:
        return self._size

    # -- internals ---------------------------------------------------------

    def _redistribute(self) -> None:
        """Advance ``_last`` to the global minimum and re-bucket the
        minimum's bucket; every moved item lands in a strictly smaller
        bucket (the amortization argument)."""
        for idx in range(1, _N_BUCKETS):
            bucket = self._buckets[idx]
            if not bucket:
                continue
            new_last = min(bucket)[0]
            self._last = new_last
            self._buckets[idx] = []
            for priority, seq, item in bucket:
                new_idx = (priority ^ new_last).bit_length()
                if new_idx == 0:
                    heapq.heappush(self._bucket0, (seq, item))
                else:
                    self._buckets[new_idx].append((priority, seq, item))
            return
        raise AssertionError("size positive but all buckets empty")  # pragma: no cover
