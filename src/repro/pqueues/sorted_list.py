"""Sorted-list priority queue: the simple reference implementation.

O(n) insert, O(1) pop-min.  Slow at scale but trivially correct, so the
property tests use it as the oracle the fancier structures must match.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError


class SortedListPQ(PriorityQueue):
    """Keep entries in a descending-sorted list; the minimum is at the end.

    Storing descending makes ``pop`` a cheap ``list.pop()`` from the tail.
    Stability: tie-break on a *negated* insertion counter so that among
    equal priorities the earliest insertion sits closest to the tail.
    """

    __slots__ = ("_data", "_seq")

    def __init__(self) -> None:
        self._data: List[Tuple[Any, int, Any]] = []
        self._seq = 0

    def push(self, priority: Any, item: Any = None) -> None:
        if item is None:
            item = priority
        # Binary search on the descending (priority, seq) order.
        key = (priority, self._seq)
        lo, hi = 0, len(self._data)
        data = self._data
        while lo < hi:
            mid = (lo + hi) // 2
            if (data[mid][0], data[mid][1]) > key:
                lo = mid + 1
            else:
                hi = mid
        data.insert(lo, (priority, self._seq, item))
        self._seq += 1

    def pop(self) -> Entry:
        if not self._data:
            raise QueueEmptyError("pop from empty SortedListPQ")
        priority, _seq, item = self._data.pop()
        return Entry(priority, item)

    def peek(self) -> Entry:
        if not self._data:
            raise QueueEmptyError("peek on empty SortedListPQ")
        priority, _seq, item = self._data[-1]
        return Entry(priority, item)

    def __len__(self) -> int:
        return len(self._data)
