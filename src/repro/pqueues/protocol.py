"""The sequential priority-queue protocol shared by all implementations."""

from __future__ import annotations

import abc
from typing import Any, Iterator, NamedTuple, Optional


class QueueEmptyError(LookupError):
    """Raised when ``pop``/``peek`` is called on an empty priority queue."""


class Entry(NamedTuple):
    """A queue entry: a comparable priority plus an arbitrary payload."""

    priority: Any
    item: Any


class PriorityQueue(abc.ABC):
    """Abstract stable min-priority queue.

    Entries with equal priority are returned in insertion (FIFO) order,
    which makes behaviour identical across implementations and therefore
    testable by cross-comparison.

    Subclasses must implement :meth:`push`, :meth:`pop`, :meth:`peek`,
    and ``__len__``.
    """

    @abc.abstractmethod
    def push(self, priority: Any, item: Any = None) -> None:
        """Insert ``item`` with the given ``priority``.

        If ``item`` is ``None`` the priority doubles as the payload,
        which is the common case in the labelled process (labels are
        their own payloads).
        """

    @abc.abstractmethod
    def pop(self) -> Entry:
        """Remove and return the minimum entry.

        Raises
        ------
        QueueEmptyError
            If the queue is empty.
        """

    @abc.abstractmethod
    def peek(self) -> Entry:
        """Return the minimum entry without removing it.

        Raises
        ------
        QueueEmptyError
            If the queue is empty.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of entries currently stored."""

    # -- Conveniences shared by all implementations ---------------------

    def peek_priority(self) -> Any:
        """Return the minimum priority (``peek().priority``)."""
        return self.peek().priority

    def top_or_none(self) -> Optional[Entry]:
        """Return the minimum entry, or ``None`` if empty (no raise)."""
        return self.peek() if len(self) else None

    def is_empty(self) -> bool:
        """``True`` when no entries are stored."""
        return len(self) == 0

    def __bool__(self) -> bool:
        return len(self) > 0

    def drain(self) -> Iterator[Entry]:
        """Yield all entries in priority order, emptying the queue."""
        while len(self):
            yield self.pop()

    def __repr__(self) -> str:
        if len(self) == 0:
            return f"{type(self).__name__}(empty)"
        top = self.peek()
        return f"{type(self).__name__}(len={len(self)}, top={top.priority!r})"
