"""Monotone bucket queue for integer priorities.

The workhorse for Dijkstra on integer-weighted graphs: O(1) push, and
pops that sweep forward through a circular array of buckets.  Requires
the *monotone* property — priorities pushed are never smaller than the
last priority popped minus zero — which Dijkstra guarantees.  A plain
(non-monotone) mode is available via ``monotone=False`` at the cost of
rescanning from bucket zero.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict

import numpy as np

from repro.pqueues.protocol import Entry, PriorityQueue, QueueEmptyError


class BucketQueue(PriorityQueue):
    """Dictionary-of-deques bucket queue over integer priorities.

    Parameters
    ----------
    monotone:
        When ``True`` (default) the scan cursor never rewinds; pushing a
        priority below the cursor raises ``ValueError``.  When ``False``
        the cursor rewinds as needed (still correct, possibly slower).
    """

    __slots__ = ("_buckets", "_cursor", "_floor", "_size", "_monotone")

    def __init__(self, monotone: bool = True) -> None:
        self._buckets: Dict[int, Deque[Any]] = {}
        #: Scan position: no non-empty bucket exists below it.
        self._cursor = 0
        #: Largest priority popped so far; monotone mode forbids pushes
        #: below this (Dijkstra never does them).
        self._floor = 0
        self._size = 0
        self._monotone = monotone

    def push(self, priority: Any, item: Any = None) -> None:
        if not isinstance(priority, (int, np.integer)) or isinstance(priority, bool):
            raise TypeError(f"BucketQueue requires int priorities, got {type(priority).__name__}")
        priority = int(priority)
        if priority < 0:
            raise ValueError(f"BucketQueue requires non-negative priorities, got {priority}")
        if item is None:
            item = priority
        if priority < self._floor:
            if self._monotone:
                raise ValueError(
                    f"monotone violation: push priority {priority} below "
                    f"last popped priority {self._floor}"
                )
            self._floor = priority
        if priority < self._cursor or self._size == 0:
            self._cursor = priority
        self._buckets.setdefault(priority, deque()).append(item)
        self._size += 1

    def pop(self) -> Entry:
        self._advance()
        bucket = self._buckets[self._cursor]
        item = bucket.popleft()
        priority = self._cursor
        if not bucket:
            del self._buckets[priority]
        self._size -= 1
        self._floor = priority
        return Entry(priority, item)

    def peek(self) -> Entry:
        self._advance()
        return Entry(self._cursor, self._buckets[self._cursor][0])

    def __len__(self) -> int:
        return self._size

    def _advance(self) -> None:
        if self._size == 0:
            raise QueueEmptyError("pop/peek on empty BucketQueue")
        while self._cursor not in self._buckets:
            self._cursor += 1
