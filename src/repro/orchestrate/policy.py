"""Fault-tolerance policy for sweep orchestration.

Long sweeps fail in boring, recoverable ways — a transient allocator
hiccup in one cell, an OOM-killed worker, a cell that wedges on a
pathological parameter point — and in one unrecoverable way: a bug that
fails deterministically every time.  This module separates the two.

* :class:`RetryPolicy` — how many attempts each cell gets, how long to
  back off between them (exponential, with *deterministic* jitter seeded
  from the cell key so reruns are byte-identical), and which exception
  types are worth retrying at all.
* :class:`CellFailure` — the quarantine record for a cell that exhausted
  its attempts: exception type, message, traceback, per-attempt wall
  times.  Everything except the volatile fields
  (:data:`FAILURE_VOLATILE_KEYS`) is deterministic across serial,
  parallel, and resumed runs.
* :class:`SweepFaultPlan` / :class:`CellFault` — a deterministic fault
  injector for the *execution layer itself*, in the spirit of
  :mod:`repro.sim.faults`: a plan declares which cells misbehave on
  which attempts (raise a transient error, oversleep a timeout, or
  SIGKILL the worker mid-cell), so retries, pool restarts, and
  quarantine are testable without flakiness.

Faults address cells by ``(params subset, seed, attempt)`` — never by
wall clock or execution order — so the same plan produces the same
injected schedule whether the sweep runs serially, across N workers, or
resumed from a half-filled cache.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "CellTimeout",
    "DISTRIBUTED_FAULT_KINDS",
    "EXECUTION_FAULT_KINDS",
    "InjectedFault",
    "SweepDeadlineError",
    "PoolRestartBudgetError",
    "RetryPolicy",
    "CellFailure",
    "FAILURE_VOLATILE_KEYS",
    "CellFault",
    "SweepFaultPlan",
    "describe_exception",
]


class CellTimeout(Exception):
    """A cell attempt exceeded its soft per-cell timeout.

    Never raised inside the cell — the runner synthesizes it (parallel
    mode abandons the hung future; serial mode checks the wall time
    after the cell returns).  Retryable under the default policy:
    timeouts are how transient stalls present.
    """


class InjectedFault(RuntimeError):
    """Raised by a :class:`CellFault` of kind ``"raise"`` (and by kind
    ``"kill"`` when there is no worker process to kill)."""


class SweepDeadlineError(RuntimeError):
    """The whole-sweep deadline expired with cells still unfinished."""


class PoolRestartBudgetError(RuntimeError):
    """The worker pool broke more times than ``max_pool_restarts`` allows.

    Raised in both error modes: a pool that cannot stay up is an
    infrastructure failure, not a property of any one cell, so
    quarantining individual cells would misattribute it.
    """


def describe_exception(exc: BaseException) -> Dict:
    """Picklable failure info for one failed attempt.

    Captured at the raise site (inside the worker), because the
    exception object itself may not survive pickling — and even when it
    does, its traceback never does.  ``mro`` carries the class names the
    retry policy classifies against.
    """
    return {
        "exc_type": type(exc).__name__,
        "mro": [c.__name__ for c in type(exc).__mro__ if c is not object],
        "message": str(exc),
        "traceback": traceback.format_exc(),
        "wall": 0.0,
    }


def timeout_info(timeout_s: float, wall: float) -> Dict:
    """Failure info for a synthesized :class:`CellTimeout` (no raise site)."""
    return {
        "exc_type": CellTimeout.__name__,
        "mro": [c.__name__ for c in CellTimeout.__mro__ if c is not object],
        "message": f"cell exceeded cell_timeout={timeout_s:g}s",
        "traceback": "",
        "wall": wall,
    }


def _names_of(types_or_names: Sequence[Union[str, type]]) -> Tuple[str, ...]:
    return tuple(
        t if isinstance(t, str) else t.__name__ for t in types_or_names
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry budget, backoff schedule, and failure classification.

    ``fatal_on`` wins over ``retry_on``; both match against *any* class
    name in the exception's MRO, so ``retry_on=("OSError",)`` catches
    ``ConnectionError`` too.  The defaults retry everything except the
    deterministic programming errors — a ``TypeError`` will fail
    identically on every attempt, so retrying it only burns budget.

    Backoff for attempt ``k`` (1-based count of failures so far) is
    ``min(cap, base * factor**(k-1))`` scaled by a jitter factor drawn
    from an RNG seeded by ``(cell key, k)`` — deterministic per cell,
    decorrelated across cells, so a thundering herd of retries spreads
    out the same way on every rerun.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    jitter: float = 0.5
    retry_on: Tuple[str, ...] = ("Exception",)
    fatal_on: Tuple[str, ...] = (
        "TypeError",
        "ValueError",
        "AssertionError",
        "NotImplementedError",
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.backoff_cap_s < 0:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        object.__setattr__(self, "retry_on", _names_of(self.retry_on))
        object.__setattr__(self, "fatal_on", _names_of(self.fatal_on))

    def is_retryable(self, mro_names: Sequence[str]) -> bool:
        """Classify a failed attempt by its exception's MRO class names."""
        names = set(mro_names)
        if names & set(self.fatal_on):
            return False
        return bool(names & set(self.retry_on))

    def backoff_for(self, key: str, attempt: int) -> float:
        """Deterministic delay before retrying ``key`` after failure #``attempt``."""
        if self.backoff_s <= 0:
            return 0.0
        base = min(
            self.backoff_cap_s,
            self.backoff_s * self.backoff_factor ** (attempt - 1),
        )
        if not self.jitter:
            return base
        rng = random.Random(f"{key}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: Failure-record fields that legitimately differ between otherwise
#: identical runs: tracebacks embed worker-vs-parent frames and file
#: paths, wall times are measurement.  Strip these (via
#: :func:`repro.orchestrate.strip_volatile`) before comparing the
#: ``failures`` sections of two manifests.
FAILURE_VOLATILE_KEYS = frozenset({"traceback", "wall_s_per_attempt"})


@dataclass
class CellFailure:
    """One quarantined cell: what failed, how often, and how.

    ``attempts`` counts *completed* failing attempts — a cell abandoned
    by a pool breakage or a sweep deadline before it ever ran records 0.
    """

    params: Dict
    seed: int
    key: Optional[str]
    exc_type: str
    message: str
    attempts: int
    wall_s_per_attempt: List[float] = field(default_factory=list)
    traceback: str = ""

    @classmethod
    def from_infos(
        cls, params: Mapping, seed: int, key: Optional[str], infos: Sequence[Dict]
    ) -> "CellFailure":
        last = infos[-1]
        return cls(
            params=dict(params),
            seed=int(seed),
            key=key,
            exc_type=last["exc_type"],
            message=last["message"],
            attempts=len(infos),
            wall_s_per_attempt=[round(i.get("wall", 0.0), 6) for i in infos],
            traceback=last.get("traceback", ""),
        )

    def to_dict(self) -> Dict:
        return {
            "params": dict(self.params),
            "seed": self.seed,
            "key": self.key,
            "exc_type": self.exc_type,
            "message": self.message,
            "attempts": self.attempts,
            "wall_s_per_attempt": list(self.wall_s_per_attempt),
            "traceback": self.traceback,
        }

    def summary(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return (
            f"Cell({inner}, seed={self.seed}): {self.exc_type}: {self.message} "
            f"({self.attempts} attempt(s))"
        )


def _in_worker_process() -> bool:
    """True when running inside a multiprocessing child (a pool worker)."""
    return multiprocessing.parent_process() is not None


#: Fault kinds the in-process execution hook interprets (serial runner
#: and pool workers alike).
EXECUTION_FAULT_KINDS = ("raise", "sleep", "kill")

#: Fault kinds only the distributed queue worker interprets — they
#: manipulate the lease protocol, which does not exist in-process.  The
#: execution hook skips them, so one plan drives both paths.
DISTRIBUTED_FAULT_KINDS = ("zombie", "pause_heartbeat")


@dataclass(frozen=True)
class CellFault:
    """One injected fault: which cells it hits, on which attempts, and how.

    ``kind`` is one of:

    * ``"raise"`` — raise :class:`InjectedFault` (a retryable transient);
    * ``"sleep"`` — stall for ``sleep_s`` before running the cell, to
      trip a per-cell timeout;
    * ``"kill"`` — ``SIGKILL`` the worker process mid-cell (the
      ``BrokenProcessPoolError`` scenario).  With no worker to kill
      (serial mode), it degrades to a retryable :class:`InjectedFault`
      so serial and parallel runs of one plan survive the same schedule.
      A distributed queue worker dies mid-*lease* instead, leaving its
      lease to go stale (the crash-takeover scenario).
    * ``"zombie"`` — distributed queues only: after computing the cell,
      stall ``sleep_s`` past lease expiry before committing, so the
      commit replays a write whose fencing token has been superseded;
    * ``"pause_heartbeat"`` — distributed queues only: suppress lease
      heartbeats for ``sleep_s`` so the lease goes stale mid-compute.

    A fault fires when the cell's seed matches (``seed=None`` matches
    any), every ``params`` item matches the cell's params, and the
    1-based attempt number is in ``attempts``.  ``once_marker`` names a
    file created atomically on first firing; while it exists the fault
    is spent — this is how a kill stays one-shot across the pool restart
    that re-runs its victim at the same attempt number.  (On a
    distributed queue the attempt number is the cell's fencing token,
    which a takeover bumps, so ``attempts=(1,)`` faults are naturally
    one-shot there.)
    """

    kind: str
    seed: Optional[int] = None
    params: Optional[Mapping] = None
    attempts: Tuple[int, ...] = (1,)
    message: str = "injected transient fault"
    sleep_s: float = 0.0
    once_marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EXECUTION_FAULT_KINDS + DISTRIBUTED_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}: expected one of "
                f"{EXECUTION_FAULT_KINDS + DISTRIBUTED_FAULT_KINDS}"
            )
        object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))
        if self.params is not None:
            object.__setattr__(self, "params", dict(self.params))

    def matches(self, cell, attempt: int) -> bool:
        if attempt not in self.attempts:
            return False
        if self.seed is not None and cell.seed != self.seed:
            return False
        if self.params:
            for k, v in self.params.items():
                if cell.params.get(k) != v:
                    return False
        return True

    def claim_once(self) -> bool:
        """Atomically claim a one-shot fault; False if already spent."""
        if self.once_marker is None:
            return True
        try:
            fd = os.open(self.once_marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self, cell, attempt: int) -> None:
        if self.kind in DISTRIBUTED_FAULT_KINDS:
            # Interpreted by the queue worker at the lease layer, not by
            # the execution hook — a no-op here keeps one plan usable on
            # both the in-process and the distributed path.
            return
        if not self.claim_once():
            return
        if self.kind == "sleep":
            time.sleep(self.sleep_s)
        elif self.kind == "raise":
            raise InjectedFault(self.message)
        elif self.kind == "kill":
            if _in_worker_process():
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(f"simulated worker SIGKILL (serial mode): {self.message}")

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "attempts": list(self.attempts)}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.params:
            out["params"] = dict(self.params)
        if self.message != "injected transient fault":
            out["message"] = self.message
        if self.sleep_s:
            out["sleep_s"] = self.sleep_s
        if self.once_marker is not None:
            out["once_marker"] = self.once_marker
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellFault":
        known = {"kind", "seed", "params", "attempts", "message", "sleep_s", "once_marker"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CellFault field(s): {sorted(unknown)}")
        kwargs = dict(data)
        if "attempts" in kwargs:
            kwargs["attempts"] = tuple(kwargs["attempts"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepFaultPlan:
    """A picklable ``fault_hook(cell, attempt)``: ordered injected faults.

    Passed to :func:`repro.orchestrate.run_cells` as ``fault_hook``; the
    runner calls it inside the worker (or inline, serially) immediately
    before each cell attempt.  At most the first matching fault fires
    per attempt, so plans compose predictably.
    """

    faults: Tuple[CellFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __call__(self, cell, attempt: int) -> None:
        for fault in self.faults:
            if fault.kind in DISTRIBUTED_FAULT_KINDS:
                continue
            if fault.matches(cell, attempt):
                fault.fire(cell, attempt)
                return

    def first_matching(
        self, cell, attempt: int, kinds: Sequence[str]
    ) -> Optional[CellFault]:
        """The first fault of one of ``kinds`` matching ``(cell, attempt)``.

        The distributed queue worker uses this to interpret lease-layer
        faults (``kill`` at claim time, ``zombie``/``pause_heartbeat``)
        itself; the returned fault's ``claim_once()``/``sleep_s`` drive
        the injection at the right protocol point.
        """
        for fault in self.faults:
            if fault.kind in kinds and fault.matches(cell, attempt):
                return fault
        return None

    def to_dict(self) -> Dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepFaultPlan":
        return cls(faults=tuple(CellFault.from_dict(f) for f in data.get("faults", ())))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepFaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))
