"""The distributed sweep worker: claim, heartbeat, compute, commit.

One :class:`QueueWorker` drains cells from a :class:`~repro.orchestrate
.queue.JobQueue` until every cell is settled (committed or quarantined).
Run several — as processes on one host or across hosts sharing the queue
directory — and they divide the grid dynamically with no coordinator:
the lease protocol in :mod:`repro.orchestrate.queue` is the only
synchronisation.

Per claimed cell the worker:

1. probes the shared result cache (an orphaned entry from a worker that
   crashed *after* the cache write but *before* the done marker is
   committed as a hit, self-healing the half-commit);
2. starts a heartbeat thread renewing the lease every ``heartbeat_s``;
3. executes the cell through the same ``_execute_attempt`` the
   in-process runner uses (so fault plans, payload canonicalisation,
   and failure records are identical on both paths);
4. stops the heartbeat and commits — or, on failure, records the
   attempt under ``failed/`` and releases the lease for another worker.

The fencing-token-as-attempt-number convention: the cell's token is
passed to the fault hook as the attempt number, so one
:class:`~repro.orchestrate.policy.SweepFaultPlan` addresses distributed
attempts exactly like in-process retries — ``attempts=(1,)`` hits the
first claim, and a takeover (token 2) is naturally exempt.

Distributed fault kinds interpreted here (no-ops in-process):

* ``"kill"`` — die immediately after claiming, *before* the first
  heartbeat, leaving the lease to go stale: the crash-takeover
  scenario.  Real ``SIGKILL`` when ``allow_sigkill=True`` (the CLI
  default — each worker is its own process); otherwise an
  :class:`InjectedWorkerCrash` unwinds this worker's run loop, which is
  what thread-hosted test workers need.
* ``"zombie"`` — compute, stop heartbeating, oversleep the lease TTL,
  *then* try to commit: exercises write fencing end to end.
* ``"pause_heartbeat"`` — suppress heartbeats for ``sleep_s`` while the
  cell computes, so the lease goes stale under a live worker.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.orchestrate.cells import Cell
from repro.orchestrate.manifest import RunManifest, git_sha
from repro.orchestrate.policy import CellFailure, SweepFaultPlan
from repro.orchestrate.queue import Claim, JobQueue, LeaseLost
from repro.orchestrate.runner import _execute_attempt, _infer_fixed, _infer_grid

__all__ = ["InjectedWorkerCrash", "QueueWorker", "WorkerReport"]


class InjectedWorkerCrash(RuntimeError):
    """A ``"kill"`` fault fired with ``allow_sigkill=False``: the worker's
    run loop unwinds immediately, leaving its lease held and un-renewed —
    from the queue's point of view, indistinguishable from a SIGKILL."""


class _Heartbeat(threading.Thread):
    """Renews one lease every ``interval`` seconds until stopped.

    ``initial_pause_s`` (the ``pause_heartbeat`` fault) delays the
    *first* renewal, so a lease can be driven stale while its cell is
    mid-compute.  A renewal that finds the lease taken over sets
    ``lost`` and exits — the owner's eventual commit will be fenced.
    """

    def __init__(
        self,
        queue: JobQueue,
        claim: Claim,
        interval: float,
        initial_pause_s: float = 0.0,
    ) -> None:
        super().__init__(name=f"heartbeat-{claim.key[:8]}", daemon=True)
        self._queue = queue
        self._claim = claim
        self._interval = interval
        self._initial_pause_s = initial_pause_s
        self._stop_event = threading.Event()
        self.lost = threading.Event()

    def run(self) -> None:
        if self._initial_pause_s > 0:
            if self._stop_event.wait(self._initial_pause_s):
                return
        while not self._stop_event.wait(self._interval):
            try:
                self._queue.renew(self._claim)
            except LeaseLost:
                self.lost.set()
                return
            except OSError:
                continue  # transient shared-fs hiccup; try again next beat

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=self._interval + 5.0)


@dataclass
class WorkerReport:
    """What one worker did to the queue, plus its shard manifest."""

    worker_id: str
    cells_claimed: int = 0
    cells_committed: int = 0
    cache_hits: int = 0
    takeovers: int = 0
    zombie_writes_fenced: int = 0
    failures_recorded: int = 0
    cache_tmp_reaped: int = 0
    elapsed_s: float = 0.0
    quarantined: List[CellFailure] = field(default_factory=list)
    manifest: Optional[RunManifest] = None


class QueueWorker:
    """One worker process (or thread, in tests) draining a job queue."""

    def __init__(
        self,
        queue: JobQueue,
        fn: Callable[..., Dict],
        worker_id: Optional[str] = None,
        fault_plan: Optional[SweepFaultPlan] = None,
        poll_s: float = 0.1,
        allow_sigkill: bool = False,
        gc_tmp_age_s: float = 3600.0,
    ) -> None:
        self.queue = queue
        self.fn = fn
        self.worker_id = worker_id or (
            f"{socket.gethostname().split('.')[0]}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.fault_plan = fault_plan
        self.poll_s = poll_s
        self.allow_sigkill = allow_sigkill
        self.gc_tmp_age_s = gc_tmp_age_s
        self._own_failed: set = set()
        self._rows: List[Dict] = []
        self._report = WorkerReport(worker_id=self.worker_id)

    # -- the drain loop -----------------------------------------------------

    def run(self) -> WorkerReport:
        """Claim and process cells until the queue is fully settled.

        Never hangs on another worker's lease: a crashed owner's lease
        goes stale within ``lease_ttl_s`` and is taken over, and a
        poison cell is quarantined queue-wide once its failure budget is
        spent.  Cells this worker *itself* failed are deferred to other
        workers first (so a poison cell's attempts land on distinct
        workers when there are several) but retried by this one when
        nothing else is claimable — a lone worker still drains the
        queue.
        """
        started = RunManifest.now()
        t0 = time.perf_counter()
        self._report.cache_tmp_reaped = self.queue.cache.gc_stale_tmp(self.gc_tmp_age_s)
        idle_passes = 0
        while True:
            progressed = self._pass(skip_own_failed=True)
            if self.queue.drained():
                break
            if progressed:
                idle_passes = 0
                continue
            # Nothing fresh to claim.  Idle a few polls before falling
            # back to cells this worker already failed — the grace
            # window gives *other* workers first refusal, so a poison
            # cell's attempts land on distinct workers when any exist;
            # a lone worker still drains the queue after the grace.
            idle_passes += 1
            if idle_passes >= 3 and self._pass(skip_own_failed=False):
                idle_passes = 0
                continue
            time.sleep(self.poll_s)
        self._report.elapsed_s = time.perf_counter() - t0
        self._report.manifest = self._shard_manifest(started)
        self.queue.shard_manifest_path(self.worker_id).parent.mkdir(
            parents=True, exist_ok=True
        )
        self._report.manifest.write(self.queue.shard_manifest_path(self.worker_id))
        return self._report

    def _pass(self, skip_own_failed: bool) -> bool:
        """One sweep over the grid; True if any cell was claimed."""
        progressed = False
        for key in self.queue.keys:
            if self.queue.is_settled(key):
                continue
            if skip_own_failed and key in self._own_failed:
                continue
            claim = self.queue.try_claim(key, self.worker_id)
            if claim is None:
                continue
            progressed = True
            self._report.cells_claimed += 1
            if claim.takeover:
                self._report.takeovers += 1
            self._process(claim)
        return progressed

    # -- one cell -----------------------------------------------------------

    def _first_fault(self, cell: Cell, token: int, kinds) -> Optional[object]:
        if self.fault_plan is None:
            return None
        return self.fault_plan.first_matching(cell, token, kinds)

    def _crash(self, fault) -> None:
        if self.allow_sigkill:
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedWorkerCrash(fault.message)

    def _process(self, claim: Claim) -> None:
        cell = self.queue.by_key[claim.key]

        # Self-heal a half-commit: a predecessor that died between the
        # cache write and the done marker left a valid payload behind.
        payload, status = self.queue.cache.probe(claim.key)
        if payload is not None:
            if self.queue.commit(claim, cell, payload, wall_s=0.0, cached=True) == "committed":
                self._report.cells_committed += 1
                self._report.cache_hits += 1
                self._rows.append(self._row(cell, claim, cached=True, wall_s=0.0))
            else:
                self._report.zombie_writes_fenced += 1
            return

        # The crash-takeover fault: die holding the lease, before the
        # heartbeat thread exists, so the lease is never renewed.
        kill = self._first_fault(cell, claim.token, ("kill",))
        if kill is not None and kill.claim_once():
            self._crash(kill)

        pause = self._first_fault(cell, claim.token, ("pause_heartbeat",))
        initial_pause = (
            pause.sleep_s if pause is not None and pause.claim_once() else 0.0
        )
        heartbeat = _Heartbeat(
            self.queue, claim, self.queue.heartbeat_s, initial_pause_s=initial_pause
        )
        heartbeat.start()
        try:
            outcome = _execute_attempt(self.fn, cell, claim.token, self.fault_plan)
        finally:
            heartbeat.stop()

        # The zombie fault: heartbeats are already stopped, so sleeping
        # past the TTL guarantees a takeover; the commit below must then
        # be fenced, not applied.
        zombie = self._first_fault(cell, claim.token, ("zombie",))
        if zombie is not None and zombie.claim_once():
            time.sleep(zombie.sleep_s)

        if outcome[0] == "ok":
            _, payload, wall = outcome
            if self.queue.commit(claim, cell, payload, wall_s=wall) == "committed":
                self._report.cells_committed += 1
                self._rows.append(self._row(cell, claim, cached=False, wall_s=wall))
            else:
                self._report.zombie_writes_fenced += 1
        else:
            self.queue.record_failure(claim, outcome[1], self.worker_id)
            self._report.failures_recorded += 1
            failure = self.queue.maybe_quarantine(claim.key)
            if failure is not None:
                self._report.quarantined.append(failure)
            self.queue.release(claim)
            self._own_failed.add(claim.key)

    def _row(self, cell: Cell, claim: Claim, cached: bool, wall_s: float) -> Dict:
        return {
            "params": dict(cell.params),
            "seed": cell.seed,
            "key": claim.key,
            "cached": cached,
            "wall_s": round(wall_s, 6),
            "attempts": claim.token,
        }

    # -- the shard manifest -------------------------------------------------

    def _shard_manifest(self, started: str) -> RunManifest:
        """This worker's slice of the run, in the standard manifest shape.

        ``cells`` holds only the rows *this* worker committed;
        ``RunManifest.merge`` reassembles the full grid from all shards.
        ``retries`` counts failure records (each is one failed attempt),
        mirroring the in-process runner's accounting.
        """
        report = self._report
        return RunManifest(
            fn=self.queue.fn_name,
            grid=_infer_grid(self.queue.cells),
            seeds=sorted({c.seed for c in self.queue.cells}),
            fixed=_infer_fixed(self.queue.cells),
            workers=1,
            cache_dir=str(self.queue.cache.root),
            n_cells=len(self.queue.cells),
            cache_hits=report.cache_hits,
            cache_misses=report.cells_committed - report.cache_hits,
            elapsed_s=report.elapsed_s,
            cells=list(self._rows),
            retries=report.failures_recorded,
            takeovers=report.takeovers,
            zombie_writes_fenced=report.zombie_writes_fenced,
            cache_tmp_reaped=report.cache_tmp_reaped,
            failures=[f.to_dict() for f in report.quarantined],
            git_sha=git_sha(),
            started_at=started,
            extra={
                "worker_id": self.worker_id,
                "host": socket.gethostname().split(".")[0],
                "pid": os.getpid(),
                "cells_claimed": report.cells_claimed,
                "queue_dir": str(self.queue.root),
            },
        )
