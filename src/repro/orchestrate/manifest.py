"""Structured run manifests: what a sweep did, archived next to results.

A manifest is the audit record of one orchestrated run — the grid, the
seeds, cache hit/miss counts, per-cell wall time, worker count, and the
git SHA of the code that produced it — written as JSON so tooling and CI
can assert on it (e.g. "the second run must be 100% cache hits").
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.orchestrate.cache import jsonify


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The commit SHA of the *code under measurement*, or ``None``.

    Defaults to the checkout containing this package (not the caller's
    working directory — sweeps are routinely launched from scratch
    dirs); returns ``None`` for installed, non-git deployments.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class RunManifest:
    """Everything needed to audit (and re-run) one orchestrated sweep."""

    fn: str
    grid: Dict[str, List] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=list)
    fixed: Dict[str, Any] = field(default_factory=dict)
    workers: int = 0
    cache_dir: Optional[str] = None
    n_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    #: One record per cell, in grid order:
    #: ``{"params", "seed", "key", "cached", "wall_s", "attempts"}``.
    cells: List[Dict] = field(default_factory=list)
    #: Failure-triggered re-executions across the whole run (a cell that
    #: succeeded on its third attempt contributes 2).
    retries: int = 0
    #: Times the worker pool was rebuilt — after a crashed worker
    #: (``BrokenProcessPoolError``) or an abandoned hung cell.
    pool_restarts: int = 0
    #: Cache entries found corrupt/truncated at lookup (treated as misses).
    cache_corrupt: int = 0
    #: Corrupt entries overwritten by a subsequent successful compute.
    cache_repairs: int = 0
    #: Distributed queue only: leases this run claimed from a worker
    #: whose heartbeats had gone stale (crash takeover).
    takeovers: int = 0
    #: Distributed queue only: late writes discarded because the
    #: writer's fencing token had been superseded by a takeover.
    zombie_writes_fenced: int = 0
    #: Orphaned cache temp files (left by SIGKILLed writers) reaped by
    #: :meth:`repro.orchestrate.cache.ResultCache.gc_stale_tmp`.
    cache_tmp_reaped: int = 0
    #: Quarantined cells, in grid order: one
    #: :meth:`repro.orchestrate.policy.CellFailure.to_dict` record each.
    #: Non-empty only with ``on_error="quarantine"`` — these cells have
    #: no row in ``cells`` and must be reported alongside any results.
    failures: List[Dict] = field(default_factory=list)
    git_sha: Optional[str] = None
    started_at: Optional[str] = None
    python: str = field(default_factory=platform.python_version)
    extra: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def now() -> str:
        return datetime.datetime.now(datetime.timezone.utc).isoformat()

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.n_cells if self.n_cells else 0.0

    def to_dict(self) -> Dict:
        return jsonify(
            {
                "fn": self.fn,
                "grid": self.grid,
                "seeds": self.seeds,
                "fixed": self.fixed,
                "workers": self.workers,
                "cache_dir": self.cache_dir,
                "n_cells": self.n_cells,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_ratio": self.hit_ratio,
                "elapsed_s": self.elapsed_s,
                "cells": self.cells,
                "retries": self.retries,
                "pool_restarts": self.pool_restarts,
                "cache_corrupt": self.cache_corrupt,
                "cache_repairs": self.cache_repairs,
                "takeovers": self.takeovers,
                "zombie_writes_fenced": self.zombie_writes_fenced,
                "cache_tmp_reaped": self.cache_tmp_reaped,
                "failures": self.failures,
                "git_sha": self.git_sha,
                "started_at": self.started_at,
                "python": self.python,
                "extra": self.extra,
            }
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Archive the manifest as indented JSON at ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        data.pop("hit_ratio", None)
        return cls(**data)

    @classmethod
    def merge(
        cls,
        shards: Sequence["RunManifest"],
        cell_order: Optional[Sequence[str]] = None,
    ) -> "RunManifest":
        """Combine per-worker shard manifests into one queue-wide record.

        Each distributed worker archives a shard manifest covering only
        the cells *it* committed; ``merge`` reassembles the full sweep:
        cell rows deduplicated by cache key (the fencing protocol makes
        duplicates impossible in a healthy queue, but a torn shard must
        not double-count), counters summed, failures deduplicated, and
        ``extra["workers"]`` carrying per-worker provenance — cells
        claimed, leases taken over, zombie writes fenced, temp files
        reaped — so a takeover is attributable to the worker that
        performed it.  ``cell_order`` (the queue's key order) restores
        grid order; without it cells keep shard order.
        """
        if not shards:
            raise ValueError("need at least one shard manifest to merge")
        fns = sorted({s.fn for s in shards})
        if len(fns) > 1:
            raise ValueError(f"shard manifests disagree on the sweep function: {fns}")
        cells: Dict[str, Dict] = {}
        for shard in shards:
            for row in shard.cells:
                cells.setdefault(row.get("key") or id(row), row)
        if cell_order is not None:
            rank = {key: i for i, key in enumerate(cell_order)}
            ordered = sorted(cells.values(), key=lambda r: rank.get(r.get("key"), len(rank)))
        else:
            ordered = list(cells.values())
        failures: Dict[Any, Dict] = {}
        for shard in shards:
            for rec in shard.failures:
                failures.setdefault(rec.get("key") or id(rec), rec)
        provenance = []
        for shard in shards:
            prov = {
                "worker_id": shard.extra.get("worker_id"),
                "host": shard.extra.get("host"),
                "pid": shard.extra.get("pid"),
                "cells_claimed": shard.extra.get("cells_claimed", len(shard.cells)),
                "cells_committed": len(shard.cells),
                "cache_hits": shard.cache_hits,
                "takeovers": shard.takeovers,
                "zombie_writes_fenced": shard.zombie_writes_fenced,
                "cache_tmp_reaped": shard.cache_tmp_reaped,
                "failures_recorded": shard.retries,
                "elapsed_s": shard.elapsed_s,
            }
            provenance.append(prov)
        first = shards[0]
        return cls(
            fn=first.fn,
            grid=dict(first.grid),
            seeds=sorted({s for shard in shards for s in shard.seeds}),
            fixed=dict(first.fixed),
            workers=len(shards),
            cache_dir=first.cache_dir,
            n_cells=max(s.n_cells for s in shards),
            cache_hits=sum(s.cache_hits for s in shards),
            cache_misses=sum(s.cache_misses for s in shards),
            elapsed_s=max(s.elapsed_s for s in shards),
            cells=ordered,
            retries=sum(s.retries for s in shards),
            pool_restarts=sum(s.pool_restarts for s in shards),
            cache_corrupt=sum(s.cache_corrupt for s in shards),
            cache_repairs=sum(s.cache_repairs for s in shards),
            takeovers=sum(s.takeovers for s in shards),
            zombie_writes_fenced=sum(s.zombie_writes_fenced for s in shards),
            cache_tmp_reaped=sum(s.cache_tmp_reaped for s in shards),
            failures=list(failures.values()),
            git_sha=first.git_sha,
            started_at=min((s.started_at for s in shards if s.started_at), default=None),
            extra={"merged_from": len(shards), "workers": provenance},
        )

    def describe(self) -> str:
        """One-line human summary (what the CLI prints after a sweep)."""
        where = f", cache {self.cache_hits}/{self.n_cells} hits" if self.cache_dir else ""
        fault_parts = []
        if self.retries:
            fault_parts.append(f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}")
        if self.pool_restarts:
            fault_parts.append(f"{self.pool_restarts} pool restart(s)")
        if self.cache_repairs:
            fault_parts.append(f"{self.cache_repairs} cache repair(s)")
        if self.takeovers:
            fault_parts.append(f"{self.takeovers} lease takeover(s)")
        if self.zombie_writes_fenced:
            fault_parts.append(f"{self.zombie_writes_fenced} fenced zombie write(s)")
        if self.cache_tmp_reaped:
            fault_parts.append(f"{self.cache_tmp_reaped} tmp file(s) reaped")
        if self.failures:
            fault_parts.append(f"quarantined={len(self.failures)}")
        faults = f" [{', '.join(fault_parts)}]" if fault_parts else ""
        return (
            f"orchestrated {self.n_cells} cell(s) in {self.elapsed_s:.2f}s "
            f"with {self.workers or 1} worker(s){where}{faults}"
        )
