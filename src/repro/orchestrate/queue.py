"""Shared-filesystem job queue: leases, fencing tokens, crash takeover.

The multi-host half of the orchestrator.  A sweep grid is materialised
as a *queue directory* on a filesystem every worker can reach (NFS, a
shared scratch volume, or plain ``/tmp`` for same-host workers); any
number of ``repro worker`` processes attach to it and divide the cells
without a coordinator.  The only primitives required of the filesystem
are atomic ``O_CREAT|O_EXCL`` creation and atomic ``os.replace`` within
a directory — the same two the :class:`~repro.orchestrate.cache.ResultCache`
already relies on.

Layout of a queue directory::

    spec.json            what is being swept (guards against workers
                         attaching with mismatched grids)
    leases/<key>.json    one lease per cell: owner, nonce, fencing token
    done/<key>.json      commit marker: which token completed the cell
    failed/<key>/        one record per failed attempt, named by
                         (worker, token) so attempts never collide
    fenced/              audit records of discarded zombie writes
    quarantine/<key>.json  queue-wide poison-cell records
    manifests/<worker>.json  per-worker shard manifests
    results/             the shared content-addressed ResultCache

The protocol, cell by cell:

1. **Claim.**  A worker creates ``leases/<key>.json`` with
   ``O_CREAT|O_EXCL`` (fencing token 1).  If the lease exists, the cell
   is claimable only when its owner *released* it (a failed attempt) or
   let it go **stale** — no heartbeat within ``lease_ttl_s``.  Either
   way the claimant atomically replaces the lease with its own record
   carrying ``token + 1``; a stale-lease claim is a **takeover**.  Two
   racing claimants both ``os.replace``; the loser detects the loss by
   re-reading the lease and finding a foreign nonce.
2. **Heartbeat.**  The owner rewrites its lease every ``heartbeat_s``
   (default ``lease_ttl_s / 3``); staleness is judged from the lease
   file's mtime, i.e. by the shared filesystem's clock.
3. **Commit.**  The owner re-reads the lease (foreign nonce ⇒ its
   token was superseded ⇒ the write is **fenced**: recorded under
   ``fenced/`` and discarded), persists the payload to the shared
   cache, then creates the ``done/`` marker with ``O_CREAT|O_EXCL``.
   The marker is the linearisation point: exactly one token ever wins
   it, so a resurrected zombie worker's late commit is detected and
   counted rather than silently clobbering the takeover's result.
4. **Failure.**  A failed attempt is recorded under ``failed/<key>/``
   and the lease released (token preserved, so a later claim still
   bumps it).  A cell whose failure records reach ``max_attempts`` —
   with the distinct workers that failed it recorded — or whose last
   failure is classified fatal by the :class:`RetryPolicy` is
   quarantined queue-wide via an ``O_EXCL`` quarantine record.

What fencing guarantees: at most one commit per cell, takeovers ordered
by token, late writes detected.  What it does not: it cannot stop a
zombie from *computing* (only from committing), and staleness judged
via file mtimes inherits the shared filesystem's clock quality — set
``lease_ttl_s`` comfortably above both the heartbeat interval and any
expected clock skew (see docs/usage.md).
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.orchestrate.cache import (
    ResultCache,
    cache_key,
    canonical_json,
    jsonify,
    qualname_of,
)
from repro.orchestrate.cells import Cell
from repro.orchestrate.manifest import RunManifest
from repro.orchestrate.policy import CellFailure, RetryPolicy

__all__ = [
    "Claim",
    "JobQueue",
    "LeaseLost",
    "QueueSpecMismatch",
    "sanitize_worker_id",
]


class QueueSpecMismatch(RuntimeError):
    """A worker attached to a queue directory with a different sweep spec.

    Every worker recomputes the spec hash from its own arguments; a
    mismatch means two invocations disagree on the grid, the function,
    or the config — continuing would interleave cells of two different
    experiments in one results directory.
    """


class LeaseLost(RuntimeError):
    """A heartbeat found the lease owned by someone else (we were taken
    over after going stale).  The in-flight computation may finish, but
    its commit will be fenced."""


def sanitize_worker_id(worker_id: str) -> str:
    """Make a worker id safe to embed in file names."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in worker_id) or "worker"


@dataclass(frozen=True)
class Claim:
    """Proof of one successful lease acquisition.

    ``token`` is the cell's fencing token — a monotonic per-cell attempt
    counter bumped by every (re)claim, never reset — and ``nonce``
    uniquely identifies this acquisition so the owner can recognise its
    own lease after arbitrary interleavings.
    """

    key: str
    nonce: str
    token: int
    takeover: bool = False


def _write_json_atomic(path: Path, data: Mapping, nonce: str) -> None:
    """Atomically replace ``path`` with ``data`` (unique temp + rename)."""
    tmp = path.with_name(f"{path.name}.{nonce}.tmp")
    tmp.write_text(json.dumps(jsonify(data)) + "\n")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict]:
    """``path`` parsed as a JSON object, or ``None`` on absence/corruption."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class JobQueue:
    """One sweep grid shared by many workers through a queue directory.

    Constructing a queue creates (or validates) the on-disk spec and the
    directory skeleton; it holds no locks and may be constructed by any
    number of processes concurrently.  All mutating operations take a
    cell *key* (the cell's cache key) and, where ownership matters, a
    :class:`Claim`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        fn,
        cells: Sequence[Cell],
        config: Optional[Mapping] = None,
        lease_ttl_s: float = 30.0,
        heartbeat_s: Optional[float] = None,
        max_attempts: int = 3,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.fn_name = qualname_of(fn)
        self.cells = list(cells)
        self.config = dict(config or {})
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_s = (
            float(heartbeat_s) if heartbeat_s is not None else self.lease_ttl_s / 3.0
        )
        if not 0 < self.heartbeat_s < self.lease_ttl_s:
            raise ValueError(
                f"heartbeat_s must be in (0, lease_ttl_s): "
                f"{self.heartbeat_s} vs ttl {self.lease_ttl_s}"
            )
        self.max_attempts = int(max_attempts)
        self.policy = policy or RetryPolicy(max_attempts=self.max_attempts)
        self.keys: List[str] = [
            cache_key(self.fn_name, c.params, c.seed, self.config) for c in self.cells
        ]
        self.by_key: Dict[str, Cell] = dict(zip(self.keys, self.cells))
        for sub in ("leases", "done", "failed", "fenced", "quarantine", "manifests"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.root / "results")
        self._nonce_counter = itertools.count()
        self._host = socket.gethostname().split(".")[0] or "host"
        self._ensure_spec()

    # -- spec ---------------------------------------------------------------

    def spec_hash(self) -> str:
        """Hash of everything workers must agree on to share this queue."""
        import hashlib

        blob = canonical_json(
            {
                "fn": self.fn_name,
                "config": self.config,
                "cells": [{"params": dict(c.params), "seed": c.seed} for c in self.cells],
            }
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _ensure_spec(self) -> None:
        path = self.root / "spec.json"
        spec = {
            "fn": self.fn_name,
            "config": self.config,
            "n_cells": len(self.cells),
            "cells": [{"params": dict(c.params), "seed": c.seed} for c in self.cells],
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_s": self.heartbeat_s,
            "max_attempts": self.max_attempts,
            "spec_hash": self.spec_hash(),
            "created_at": RunManifest.now(),
        }
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = _read_json(path)
            if existing is None:
                raise QueueSpecMismatch(f"unreadable queue spec at {path}")
            if existing.get("spec_hash") != spec["spec_hash"]:
                raise QueueSpecMismatch(
                    f"queue at {self.root} was created for a different sweep: "
                    f"spec hash {existing.get('spec_hash')!r} on disk vs "
                    f"{spec['spec_hash']!r} from this invocation "
                    f"({existing.get('fn')!r}, {existing.get('n_cells')} cell(s) "
                    f"vs {self.fn_name!r}, {len(self.cells)} cell(s))"
                )
            return
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(jsonify(spec), fh, indent=2)

    # -- paths --------------------------------------------------------------

    def lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.json"

    def done_path(self, key: str) -> Path:
        return self.root / "done" / f"{key}.json"

    def failed_dir(self, key: str) -> Path:
        return self.root / "failed" / key

    def quarantine_path(self, key: str) -> Path:
        return self.root / "quarantine" / f"{key}.json"

    # -- cell state ---------------------------------------------------------

    def is_done(self, key: str) -> bool:
        return self.done_path(key).is_file()

    def is_quarantined(self, key: str) -> bool:
        return self.quarantine_path(key).is_file()

    def is_settled(self, key: str) -> bool:
        return self.is_done(key) or self.is_quarantined(key)

    def drained(self) -> bool:
        """True when every cell is either committed or quarantined."""
        return all(self.is_settled(key) for key in self.keys)

    def counts(self) -> Dict[str, int]:
        done = sum(1 for k in self.keys if self.is_done(k))
        quarantined = sum(1 for k in self.keys if self.is_quarantined(k))
        leased = sum(
            1
            for k in self.keys
            if not self.is_settled(k)
            and (lease := self.read_lease(k)) is not None
            and lease.get("state") == "held"
            and not self.lease_stale(k)
        )
        return {
            "cells": len(self.keys),
            "done": done,
            "quarantined": quarantined,
            "leased": leased,
            "open": len(self.keys) - done - quarantined,
        }

    # -- leases -------------------------------------------------------------

    def read_lease(self, key: str) -> Optional[Dict]:
        return _read_json(self.lease_path(key))

    def lease_stale(self, key: str) -> bool:
        """No heartbeat within ``lease_ttl_s`` (by the lease file's mtime)."""
        try:
            mtime = self.lease_path(key).stat().st_mtime
        except OSError:
            return False
        return time.time() - mtime > self.lease_ttl_s

    def _fresh_nonce(self, worker_id: str) -> str:
        return f"{self._host}:{os.getpid()}:{worker_id}:{next(self._nonce_counter)}"

    def try_claim(self, key: str, worker_id: str) -> Optional[Claim]:
        """Attempt to lease ``key``; ``None`` if it is not claimable.

        Returns a :class:`Claim` carrying the cell's new fencing token.
        ``takeover=True`` marks a claim that displaced a stale-but-held
        lease (its owner crashed or stopped heartbeating) as opposed to
        a cleanly released one.
        """
        if self.is_settled(key):
            return None
        path = self.lease_path(key)
        nonce = self._fresh_nonce(worker_id)
        now = time.time()
        record = {
            "key": key,
            "host": self._host,
            "pid": os.getpid(),
            "worker": worker_id,
            "nonce": nonce,
            "token": 1,
            "state": "held",
            "acquired_at": now,
            "renewed_at": now,
        }
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            return Claim(key=key, nonce=nonce, token=1)

        prev = self.read_lease(key)
        if prev is None:
            # Torn or unreadable lease: claimable only once its mtime is
            # stale, and with an unknown token assume the worst observed
            # shape (token 0 -> our claim is token 1, still monotonic
            # because a torn lease never committed).
            if not self.lease_stale(key):
                return None
            prev = {"token": 0, "state": "held"}
        held = prev.get("state") == "held"
        stale = held and self.lease_stale(key)
        if held and not stale:
            return None
        record["token"] = int(prev.get("token", 0)) + 1
        if stale:
            record["took_over_from"] = {
                "worker": prev.get("worker"),
                "host": prev.get("host"),
                "pid": prev.get("pid"),
                "token": prev.get("token"),
            }
        _write_json_atomic(path, record, nonce.replace(":", "_"))
        current = self.read_lease(key)
        if current is None or current.get("nonce") != nonce:
            return None  # lost the claim race to another worker
        return Claim(key=key, nonce=nonce, token=record["token"], takeover=stale)

    def renew(self, claim: Claim) -> None:
        """Heartbeat: refresh the lease's mtime, verifying ownership."""
        path = self.lease_path(claim.key)
        current = _read_json(path)
        if current is None or current.get("nonce") != claim.nonce:
            raise LeaseLost(
                f"lease for cell {claim.key[:12]} (token {claim.token}) is now "
                f"owned by {current.get('worker') if current else 'nobody'}"
            )
        current["renewed_at"] = time.time()
        _write_json_atomic(path, current, claim.nonce.replace(":", "_"))

    def release(self, claim: Claim) -> None:
        """Give the lease up (after a failed attempt), keeping the token."""
        path = self.lease_path(claim.key)
        current = _read_json(path)
        if current is None or current.get("nonce") != claim.nonce:
            return  # superseded: nothing of ours left to release
        current["state"] = "released"
        current["released_at"] = time.time()
        _write_json_atomic(path, current, claim.nonce.replace(":", "_"))

    # -- commits and fencing ------------------------------------------------

    def commit(
        self,
        claim: Claim,
        cell: Cell,
        payload: Mapping,
        wall_s: float = 0.0,
        cached: bool = False,
    ) -> str:
        """Publish a computed cell; returns ``"committed"`` or ``"fenced"``.

        The ``done`` marker's ``O_CREAT|O_EXCL`` creation is the
        linearisation point — exactly one token ever wins it.  The lease
        re-read in front of it is the fast path that usually catches a
        superseded token before touching the shared cache at all.
        """
        lease = self.read_lease(claim.key)
        if lease is None or lease.get("nonce") != claim.nonce:
            self._record_fenced(claim, stage="lease")
            return "fenced"
        self.cache.put(
            claim.key,
            payload,
            meta={
                "params": dict(cell.params),
                "seed": cell.seed,
                "fn": self.fn_name,
                "token": claim.token,
            },
        )
        marker = {
            "key": claim.key,
            "token": claim.token,
            "worker": lease.get("worker"),
            "host": lease.get("host"),
            "pid": lease.get("pid"),
            "wall_s": round(wall_s, 6),
            "cached": cached,
            "takeover": claim.takeover,
            "committed_at": RunManifest.now(),
        }
        try:
            fd = os.open(self.done_path(claim.key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            self._record_fenced(claim, stage="marker")
            return "fenced"
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(jsonify(marker), fh)
        self.release(claim)
        return "committed"

    def _record_fenced(self, claim: Claim, stage: str) -> None:
        """Audit record of a discarded late write (for manifests/tests)."""
        record = {
            "key": claim.key,
            "token": claim.token,
            "nonce": claim.nonce,
            "stage": stage,
            "fenced_at": RunManifest.now(),
        }
        path = self.root / "fenced" / f"{claim.key}.{claim.token}.json"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(record, fh)

    def read_done(self, key: str) -> Optional[Dict]:
        return _read_json(self.done_path(key))

    def fenced_records(self, key: Optional[str] = None) -> List[Dict]:
        pattern = f"{key}.*.json" if key else "*.json"
        records = []
        for path in sorted((self.root / "fenced").glob(pattern)):
            data = _read_json(path)
            if data is not None:
                records.append(data)
        return records

    # -- failures and queue-level quarantine --------------------------------

    def record_failure(self, claim: Claim, info: Mapping, worker_id: str) -> None:
        """Persist one failed attempt under ``failed/<key>/``.

        File names carry ``(worker, token)``: tokens are per-cell unique
        across the whole queue, so records from any number of workers
        never collide, and sorting by token reconstructs attempt order.
        """
        directory = self.failed_dir(claim.key)
        directory.mkdir(parents=True, exist_ok=True)
        record = dict(info)
        record.pop("exception", None)  # live objects never go to disk
        record.update(
            {
                "worker": worker_id,
                "host": self._host,
                "pid": os.getpid(),
                "token": claim.token,
            }
        )
        path = directory / f"{sanitize_worker_id(worker_id)}.{claim.token:06d}.json"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # replayed failure from a superseded token: keep the first
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(jsonify(record), fh)

    def failure_records(self, key: str) -> List[Dict]:
        """All failed attempts for ``key``, in token (attempt) order."""
        records = []
        for path in self.failed_dir(key).glob("*.json"):
            data = _read_json(path)
            if data is not None:
                records.append(data)
        return sorted(records, key=lambda r: r.get("token", 0))

    def maybe_quarantine(self, key: str) -> Optional[CellFailure]:
        """Quarantine ``key`` queue-wide if its failure budget is spent.

        Triggers when the cell's failure records reach ``max_attempts``
        (with multiple workers each attempt lands on a distinct worker —
        a worker defers cells it already failed — so a poison cell burns
        through ``max_attempts`` *distinct* workers before the verdict)
        or immediately when the latest failure is classified fatal by
        the retry policy.  Returns the failure record if *this* call won
        the ``O_EXCL`` race to write it, else ``None``.
        """
        if self.is_quarantined(key):
            return None
        infos = self.failure_records(key)
        if not infos:
            return None
        fatal = not self.policy.is_retryable(infos[-1].get("mro", ()))
        if not fatal and len(infos) < self.max_attempts:
            return None
        cell = self.by_key[key]
        failure = CellFailure.from_infos(cell.params, cell.seed, key, infos)
        record = failure.to_dict()
        record["workers"] = sorted({str(r.get("worker")) for r in infos})
        record["fatal"] = fatal
        try:
            fd = os.open(self.quarantine_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None  # another worker reached the same verdict first
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(jsonify(record), fh)
        return failure

    def quarantine_records(self) -> List[Dict]:
        """Quarantined cells in grid order (one dict per cell)."""
        records = []
        for key in self.keys:
            data = _read_json(self.quarantine_path(key))
            if data is not None:
                records.append(data)
        return records

    # -- results ------------------------------------------------------------

    def collect(self) -> Tuple[List[Dict], List[CellFailure]]:
        """Completed payloads in grid order, plus quarantined failures.

        Only cells with both a ``done`` marker *and* a cache entry count
        as completed.  :meth:`commit` writes the cache entry *before*
        the marker, so a marker implies a cache entry; a crash between
        the two leaves no marker, and the next claimant recomputes (or
        finds the orphaned cache entry and commits it as a hit).
        """
        rows: List[Dict] = []
        failures: List[CellFailure] = []
        for key in self.keys:
            if self.is_done(key):
                payload = self.cache.get(key)
                if payload is not None:
                    rows.append(payload)
                continue
            record = _read_json(self.quarantine_path(key))
            if record is not None:
                failures.append(
                    CellFailure(
                        params=dict(record.get("params", {})),
                        seed=int(record.get("seed", 0)),
                        key=record.get("key"),
                        exc_type=record.get("exc_type", "?"),
                        message=record.get("message", ""),
                        attempts=int(record.get("attempts", 0)),
                        wall_s_per_attempt=list(record.get("wall_s_per_attempt", [])),
                        traceback=record.get("traceback", ""),
                    )
                )
        return rows, failures

    def to_sweep_run(self):
        """The queue's settled state as a :class:`~repro.orchestrate.runner.SweepRun`.

        Meaningful once :meth:`drained` — committed cells become
        :class:`CellResult`\\ s in grid order (``attempts`` = the winning
        fencing token, ``wall_s`` from the done marker), quarantined
        cells become ``failures``, and the manifest is the merged shard
        manifest when any worker has archived one.  This is what lets
        the CLI print the same table for a distributed sweep as for a
        serial one.
        """
        from repro.orchestrate.runner import CellResult, SweepRun

        results = []
        for key in self.keys:
            marker = self.read_done(key)
            if marker is None:
                continue
            payload = self.cache.get(key)
            if payload is None:
                continue
            results.append(
                CellResult(
                    cell=self.by_key[key],
                    payload=payload,
                    wall_s=float(marker.get("wall_s", 0.0)),
                    cached=bool(marker.get("cached", False)),
                    key=key,
                    attempts=int(marker.get("token", 1)),
                )
            )
        _, failures = self.collect()
        return SweepRun(
            results=results, manifest=self.merged_manifest(), failures=failures
        )

    # -- shard manifests ----------------------------------------------------

    def shard_manifest_path(self, worker_id: str) -> Path:
        return self.root / "manifests" / f"{sanitize_worker_id(worker_id)}.json"

    def load_shard_manifests(self) -> List[RunManifest]:
        shards = []
        for path in sorted((self.root / "manifests").glob("*.json")):
            try:
                shards.append(RunManifest.read(path))
            except (OSError, ValueError, TypeError):
                continue  # a torn shard (worker died mid-write) is skipped
        return shards

    def merged_manifest(self) -> RunManifest:
        """All shard manifests merged, cells restored to grid order.

        Shard manifests alone under-report after a crash: a worker
        archives its shard only when its run loop finishes, so cells it
        committed *before* dying are in ``done/`` but in no shard.  The
        done markers are ground truth — rows for marker-only cells are
        reconstructed from them (each marker records worker, wall time,
        cached flag, and the winning token) and the recovery is surfaced
        in ``extra["rows_recovered_from_markers"]``.
        """
        shards = self.load_shard_manifests()
        if shards:
            merged = RunManifest.merge(shards, cell_order=self.keys)
        else:
            merged = RunManifest(fn=self.fn_name, n_cells=len(self.keys))
        have = {row.get("key") for row in merged.cells}
        recovered = []
        for key in self.keys:
            if key in have:
                continue
            marker = self.read_done(key)
            if marker is None:
                continue
            cell = self.by_key[key]
            recovered.append(
                {
                    "params": dict(cell.params),
                    "seed": cell.seed,
                    "key": key,
                    "cached": bool(marker.get("cached", False)),
                    "wall_s": float(marker.get("wall_s", 0.0)),
                    "attempts": int(marker.get("token", 1)),
                }
            )
        if recovered:
            rank = {key: i for i, key in enumerate(self.keys)}
            merged.cells = sorted(
                merged.cells + recovered,
                key=lambda r: rank.get(r.get("key"), len(rank)),
            )
            hits = sum(1 for r in recovered if r["cached"])
            merged.cache_hits += hits
            merged.cache_misses += len(recovered) - hits
            merged.extra["rows_recovered_from_markers"] = len(recovered)
        return merged

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"JobQueue({str(self.root)!r}, cells={c['cells']}, done={c['done']}, "
            f"quarantined={c['quarantined']}, leased={c['leased']})"
        )
