"""The sweep executor: fan cells out to workers, persist, resume, survive.

``run_cells`` is the single entry point every sweep in the repo routes
through.  Serial in-process execution is the default (and what tests
exercise); ``workers=N`` opts in to a ``ProcessPoolExecutor`` fan-out,
and ``cache`` opts in to the content-addressed result cache so a killed
run resumes from its completed cells.

Guarantees, in both modes:

* **Determinism** — each cell carries its own seed and the target
  function derives all randomness from it, so results do not depend on
  worker count or completion order.  Results are returned in grid
  order.
* **Canonical payloads** — every payload is passed through
  :func:`repro.orchestrate.cache.jsonify` whether or not it came from
  the cache, so cached and freshly-computed rows are byte-identical.
* **Crash safety** — completed cells are persisted (atomically) as they
  finish, not at the end of the run, so ``Ctrl-C`` or ``SIGKILL`` loses
  at most the in-flight cells.

Fault tolerance (see :mod:`repro.orchestrate.policy`):

* **Retries** — a :class:`~repro.orchestrate.policy.RetryPolicy` gives
  each cell a budget of attempts with exponential, deterministically
  jittered backoff; deterministic programming errors are classified
  fatal and fail fast.
* **Deadlines** — ``cell_timeout`` bounds one cell attempt (parallel
  mode abandons the hung future and respawns the pool; serial mode
  checks cooperatively after the cell returns), ``deadline`` bounds the
  whole sweep.
* **Worker-crash recovery** — a ``BrokenProcessPoolError`` (an
  OOM-killed or segfaulted worker) rebuilds the executor and resubmits
  only the unfinished cells, up to ``max_pool_restarts`` rebuilds.
  Abandoned in-flight cells keep their attempt count: the crash is the
  pool's fault, not theirs.
* **Quarantine** — with ``on_error="quarantine"`` a cell that exhausts
  its attempts is recorded in ``SweepRun.failures`` (and the manifest's
  ``failures`` section) and skipped, so long sweeps return partial
  results with explicit holes; the default ``on_error="raise"``
  preserves fail-fast behavior.
"""

from __future__ import annotations

import heapq
import time
import types
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.orchestrate.cache import ResultCache, cache_key, jsonify, qualname_of
from repro.orchestrate.cells import Cell
from repro.orchestrate.manifest import RunManifest, git_sha
from repro.orchestrate.policy import (
    CellFailure,
    PoolRestartBudgetError,
    RetryPolicy,
    SweepDeadlineError,
    describe_exception,
    timeout_info,
)


class CellError(RuntimeError):
    """A sweep cell failed; carries which cell, how, and the original
    traceback so sweeps fail debuggably even across process boundaries.

    Worker exceptions lose their traceback to pickling — only the
    formatted string captured at the raise site survives — so the
    traceback travels in the message, after the one-line summary.
    """

    def __init__(self, cell: Cell, failure) -> None:
        if isinstance(failure, BaseException):
            failure = CellFailure.from_infos(
                cell.params, cell.seed, None, [describe_exception(failure)]
            )
        message = (
            f"{cell.describe()} failed after {failure.attempts} attempt(s): "
            f"{failure.exc_type}: {failure.message}"
        )
        if failure.traceback:
            message += f"\n--- original traceback ---\n{failure.traceback.rstrip()}"
        super().__init__(message)
        self.cell = cell
        self.failure = failure


class _RemoteCause(RuntimeError):
    """Stand-in ``__cause__`` for an exception raised in a worker process:
    carries the worker-side traceback text where the chained-exception
    display expects a cause."""


@dataclass
class CellResult:
    """One completed cell: its payload plus execution provenance."""

    cell: Cell
    payload: Dict
    wall_s: float
    cached: bool
    key: Optional[str] = None
    #: Executions this cell took (0 for a cache hit, 1 for a clean run,
    #: more when retries were needed).
    attempts: int = 1


@dataclass
class SweepRun:
    """Results of one orchestrated sweep, in grid order, plus manifest.

    ``results`` holds only *completed* cells: with
    ``on_error="quarantine"`` the failed cells are absent from
    ``results`` and present in ``failures`` instead — partial results
    with explicit holes, never silent ones.
    """

    results: List[CellResult] = field(default_factory=list)
    manifest: Optional[RunManifest] = None
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def payloads(self) -> List[Dict]:
        return [r.payload for r in self.results]


def _execute_attempt(
    fn: Callable[..., Dict],
    cell: Cell,
    attempt: int,
    fault_hook: Optional[Callable[[Cell, int], None]],
    keep_exception: bool = False,
) -> Tuple:
    """Run one cell attempt; report failure as data, never by raising.

    Module-level so it pickles to workers.  Returns ``("ok", payload,
    wall_s)`` or ``("fail", info)`` where ``info`` is
    :func:`~repro.orchestrate.policy.describe_exception` output — the
    exception itself may not survive pickling, so it crosses the
    process boundary as plain data captured at the raise site.
    ``keep_exception`` (serial mode only) attaches the live exception
    object for ``raise ... from`` chaining.
    """
    start = time.perf_counter()
    try:
        if fault_hook is not None:
            fault_hook(cell, attempt)
        payload = fn(**cell.kwargs())
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"sweep function {qualname_of(fn)} returned "
                f"{type(payload).__name__}, expected a dict"
            )
        return ("ok", jsonify(payload), time.perf_counter() - start)
    except Exception as err:
        info = describe_exception(err)
        info["wall"] = time.perf_counter() - start
        if keep_exception:
            info["exception"] = err
        return ("fail", info)


def _check_parallelisable(fn: Callable, what: str = "") -> None:
    qualname = getattr(fn, "__qualname__", "")
    if isinstance(fn, (types.FunctionType, types.LambdaType)) and (
        "<locals>" in qualname or "<lambda>" in qualname
    ):
        raise ValueError(
            f"cannot run {what}{qualname_of(fn)!r} with workers > 1: lambdas and "
            "locally-defined functions do not pickle to worker processes; "
            "move the function to module level"
        )


@dataclass
class _CellState:
    """Parent-side attempt bookkeeping for one pending cell."""

    attempts: int = 0  # completed (failed or successful) executions
    infos: List[Dict] = field(default_factory=list)  # one per failed attempt


class _Sweep:
    """Shared state and failure handling for one ``run_cells`` invocation."""

    def __init__(
        self,
        fn: Callable[..., Dict],
        cells: Sequence[Cell],
        keys: Sequence[str],
        cache: Optional[ResultCache],
        corrupt: Set[int],
        policy: RetryPolicy,
        cell_timeout: Optional[float],
        deadline: Optional[float],
        on_error: str,
        fault_hook: Optional[Callable],
    ) -> None:
        self.fn = fn
        self.cells = list(cells)
        self.keys = list(keys)
        self.cache = cache
        self.corrupt = corrupt
        self.policy = policy
        self.cell_timeout = cell_timeout
        self.deadline = deadline
        self.on_error = on_error
        self.fault_hook = fault_hook
        self.t0 = time.monotonic()
        self.states: Dict[int, _CellState] = {}
        self.results: List[Optional[CellResult]] = [None] * len(self.cells)
        self.failures: Dict[int, CellFailure] = {}
        self.retries = 0
        self.pool_restarts = 0
        self.cache_repairs = 0

    def state(self, i: int) -> _CellState:
        return self.states.setdefault(i, _CellState())

    def deadline_expired(self) -> bool:
        return (
            self.deadline is not None
            and time.monotonic() - self.t0 > self.deadline
        )

    def clamp_to_deadline(self, delay: float) -> float:
        """Cap a sleep at the time remaining before the sweep deadline.

        A retry backoff must never park the sweep *past* its deadline:
        sleeping the full backoff and only then noticing the expiry
        would retry cells the deadline had already condemned (and hold
        the caller hostage for up to ``backoff_cap_s``).
        """
        if self.deadline is None:
            return delay
        return min(delay, max(0.0, self.deadline - (time.monotonic() - self.t0)))

    def finish(self, i: int, payload: Dict, wall: float) -> None:
        if self.cache is not None:
            self.cache.put(
                self.keys[i],
                payload,
                meta={
                    "params": dict(self.cells[i].params),
                    "seed": self.cells[i].seed,
                    "fn": qualname_of(self.fn),
                },
            )
            if i in self.corrupt:
                # Self-healed: the corrupt entry was just overwritten by a
                # fresh, complete one.
                self.corrupt.discard(i)
                self.cache_repairs += 1
        self.results[i] = CellResult(
            self.cells[i],
            payload,
            wall,
            cached=False,
            key=self.keys[i],
            attempts=self.state(i).attempts,
        )

    def record_failure(self, i: int, info: Dict) -> _CellState:
        state = self.state(i)
        state.attempts += 1
        state.infos.append(info)
        return state

    def should_retry(self, i: int) -> bool:
        state = self.state(i)
        return state.attempts < self.policy.max_attempts and self.policy.is_retryable(
            state.infos[-1]["mro"]
        )

    def give_up(self, i: int) -> None:
        """Exhausted or fatal: quarantine the cell, or raise chained."""
        state = self.state(i)
        failure = CellFailure.from_infos(
            self.cells[i].params, self.cells[i].seed, self.keys[i], state.infos
        )
        if self.on_error == "quarantine":
            self.failures[i] = failure
            return
        last = state.infos[-1]
        cause = last.get("exception")
        if cause is None and last.get("traceback"):
            cause = _RemoteCause(
                f"{failure.exc_type}: {failure.message}\n{failure.traceback.rstrip()}"
            )
        raise CellError(self.cells[i], failure) from cause

    def expire_sweep(self, unfinished: Sequence[int]) -> None:
        """The whole-sweep deadline passed with ``unfinished`` cells left."""
        if self.on_error == "quarantine":
            for i in sorted(unfinished):
                state = self.state(i)
                self.failures[i] = CellFailure(
                    params=dict(self.cells[i].params),
                    seed=self.cells[i].seed,
                    key=self.keys[i],
                    exc_type="SweepDeadlineExceeded",
                    message=f"sweep deadline {self.deadline:g}s expired before this cell finished",
                    attempts=state.attempts,
                    wall_s_per_attempt=[round(x.get("wall", 0.0), 6) for x in state.infos],
                )
            return
        raise SweepDeadlineError(
            f"sweep deadline {self.deadline:g}s expired with "
            f"{len(unfinished)} cell(s) unfinished"
        )


def _run_serial(sweep: _Sweep, pending: Sequence[int]) -> None:
    for n, i in enumerate(pending):
        while True:
            if sweep.deadline_expired():
                sweep.expire_sweep(list(pending[n:]))
                return
            outcome = _execute_attempt(
                sweep.fn,
                sweep.cells[i],
                sweep.state(i).attempts + 1,
                sweep.fault_hook,
                keep_exception=True,
            )
            if outcome[0] == "ok":
                _, payload, wall = outcome
                if sweep.cell_timeout is not None and wall > sweep.cell_timeout:
                    # Cooperative soft timeout: serial execution cannot
                    # interrupt a running cell, so the overrun is detected
                    # after the fact and the attempt is charged as failed —
                    # the same accounting parallel mode applies.
                    sweep.record_failure(i, timeout_info(sweep.cell_timeout, wall))
                else:
                    sweep.state(i).attempts += 1
                    sweep.finish(i, payload, wall)
                    break
            else:
                sweep.record_failure(i, outcome[1])
            if sweep.should_retry(i):
                sweep.retries += 1
                delay = sweep.clamp_to_deadline(
                    sweep.policy.backoff_for(sweep.keys[i], sweep.state(i).attempts)
                )
                if delay > 0:
                    time.sleep(delay)
                continue
            sweep.give_up(i)
            break


def _run_parallel(
    sweep: _Sweep, pending: Sequence[int], workers: int, max_pool_restarts: int
) -> None:
    max_workers = min(workers, len(pending))
    runnable: deque = deque(pending)
    delayed: List[Tuple[float, int]] = []  # (ready_monotonic, index) heap
    active: Dict = {}  # future -> (index, submit_monotonic)
    pool = ProcessPoolExecutor(max_workers=max_workers)

    def shutdown(p) -> None:
        """Abandon a pool without waiting: cancel what is queued and
        terminate worker processes best-effort so hung cells do not keep
        the machine busy after the run moved on."""
        procs = list((getattr(p, "_processes", None) or {}).values())
        p.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass

    def restart_pool() -> None:
        nonlocal pool
        sweep.pool_restarts += 1
        if sweep.pool_restarts > max_pool_restarts:
            shutdown(pool)
            unfinished = len(runnable) + len(delayed) + len(active)
            raise PoolRestartBudgetError(
                f"worker pool restarted {sweep.pool_restarts - 1} time(s) "
                f"(max_pool_restarts={max_pool_restarts}) and broke again with "
                f"{unfinished} cell(s) unfinished"
            )
        shutdown(pool)
        pool = ProcessPoolExecutor(max_workers=max_workers)

    def abandon_active() -> None:
        """Requeue in-flight cells after a pool failure, attempt counts
        untouched: the breakage is attributed to the pool, not the cells,
        so innocent bystanders never exhaust their retry budget."""
        for i, _ in active.values():
            runnable.appendleft(i)
        active.clear()

    def handle_failure(i: int, info: Dict) -> None:
        sweep.record_failure(i, info)
        if sweep.should_retry(i):
            sweep.retries += 1
            delay = sweep.policy.backoff_for(sweep.keys[i], sweep.state(i).attempts)
            if delay > 0:
                heapq.heappush(delayed, (time.monotonic() + delay, i))
            else:
                runnable.append(i)
        else:
            sweep.give_up(i)

    try:
        while runnable or delayed or active:
            now = time.monotonic()
            if sweep.deadline_expired():
                unfinished = (
                    list(runnable)
                    + [i for _, i in delayed]
                    + [i for i, _ in active.values()]
                )
                sweep.expire_sweep(unfinished)
                return
            while delayed and delayed[0][0] <= now:
                runnable.append(heapq.heappop(delayed)[1])
            while runnable and len(active) < max_workers:
                i = runnable.popleft()
                try:
                    fut = pool.submit(
                        _execute_attempt,
                        sweep.fn,
                        sweep.cells[i],
                        sweep.state(i).attempts + 1,
                        sweep.fault_hook,
                    )
                except BrokenProcessPool:
                    runnable.appendleft(i)
                    abandon_active()
                    restart_pool()
                    break
                active[fut] = (i, time.monotonic())

            if not active:
                if delayed:
                    time.sleep(
                        sweep.clamp_to_deadline(
                            max(0.0, delayed[0][0] - time.monotonic())
                        )
                    )
                continue

            # Wake at the earliest of: a completion, a cell-timeout
            # expiry, a backoff becoming ready, or the sweep deadline.
            timeout_candidates = []
            if sweep.cell_timeout is not None:
                earliest = min(t for _, t in active.values())
                timeout_candidates.append(earliest + sweep.cell_timeout - now)
            if delayed:
                timeout_candidates.append(delayed[0][0] - now)
            if sweep.deadline is not None:
                timeout_candidates.append(sweep.t0 + sweep.deadline - now)
            wait_timeout = (
                max(0.0, min(timeout_candidates)) if timeout_candidates else None
            )
            done, _ = wait(set(active), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            broken = False
            for fut in done:
                i, _submitted = active.pop(fut)
                try:
                    outcome = fut.result()
                except BrokenProcessPool:
                    runnable.appendleft(i)
                    broken = True
                    continue
                if outcome[0] == "ok":
                    _, payload, wall = outcome
                    sweep.state(i).attempts += 1
                    sweep.finish(i, payload, wall)
                else:
                    handle_failure(i, outcome[1])
            if broken:
                abandon_active()
                restart_pool()
                continue

            if sweep.cell_timeout is not None and active:
                now = time.monotonic()
                expired = [
                    (fut, i, t)
                    for fut, (i, t) in active.items()
                    if now - t > sweep.cell_timeout
                ]
                if expired:
                    # The hung workers cannot be reclaimed individually —
                    # abandon the futures, respawn the pool, and charge
                    # only the overdue cells with a failed attempt.
                    for fut, i, t in expired:
                        del active[fut]
                        handle_failure(i, timeout_info(sweep.cell_timeout, now - t))
                    abandon_active()
                    restart_pool()
    finally:
        shutdown(pool)


def run_cells(
    fn: Callable[..., Dict],
    cells: Sequence[Cell],
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    config: Optional[Mapping] = None,
    manifest_meta: Optional[Mapping] = None,
    policy: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    on_error: str = "raise",
    fault_hook: Optional[Callable[[Cell, int], None]] = None,
    max_pool_restarts: int = 3,
) -> SweepRun:
    """Execute ``fn`` over ``cells``, with optional fan-out and caching.

    ``workers <= 1`` runs serially in-process (the default); larger
    values fan the uncached cells out across that many worker processes.
    With a ``cache``, completed cells are looked up before execution and
    persisted the moment they finish.  ``config`` is folded into every
    cache key (code-version tags live here); ``manifest_meta`` is
    recorded verbatim in the manifest's ``extra`` field.

    Fault tolerance: ``policy`` grants each cell multiple attempts with
    deterministic backoff, ``cell_timeout``/``deadline`` bound cell and
    sweep durations, ``on_error="quarantine"`` records exhausted cells
    in the manifest instead of raising, and ``fault_hook(cell,
    attempt)`` — called in the worker immediately before each attempt —
    injects deterministic faults for testing (see
    :class:`repro.orchestrate.policy.SweepFaultPlan`).
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"on_error must be 'raise' or 'quarantine', got {on_error!r}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
    if deadline is not None and deadline < 0:
        raise ValueError(f"deadline must be non-negative, got {deadline}")
    if max_pool_restarts < 0:
        raise ValueError(f"max_pool_restarts must be >= 0, got {max_pool_restarts}")
    policy = policy or RetryPolicy()
    cells = list(cells)
    started = RunManifest.now()
    t0 = time.perf_counter()

    # Keys are computed unconditionally: they seed the deterministic
    # retry jitter and identify cells in the failures section even for
    # cache-less runs.
    keys: List[str] = [cache_key(fn, c.params, c.seed, config) for c in cells]

    pending: List[int] = []
    corrupt: Set[int] = set()
    cached_results: List[Optional[CellResult]] = [None] * len(cells)
    for i, cell in enumerate(cells):
        hit, status = cache.probe(keys[i]) if cache is not None else (None, "miss")
        if hit is not None:
            cached_results[i] = CellResult(
                cell, hit, 0.0, cached=True, key=keys[i], attempts=0
            )
        else:
            if status == "corrupt":
                corrupt.add(i)
            pending.append(i)

    sweep = _Sweep(
        fn, cells, keys, cache, corrupt, policy,
        cell_timeout, deadline, on_error, fault_hook,
    )
    n_corrupt = len(corrupt)
    for i, r in enumerate(cached_results):
        if r is not None:
            sweep.results[i] = r

    if workers > 1 and pending:
        _check_parallelisable(fn)
        if fault_hook is not None:
            _check_parallelisable(fault_hook, what="fault_hook ")
        _run_parallel(sweep, pending, workers, max_pool_restarts)
    elif pending:
        _run_serial(sweep, pending)

    done_results: List[CellResult] = [r for r in sweep.results if r is not None]
    failures: List[CellFailure] = [sweep.failures[i] for i in sorted(sweep.failures)]
    hits = sum(1 for r in done_results if r.cached)
    manifest = RunManifest(
        fn=qualname_of(fn),
        grid=_infer_grid(cells),
        seeds=sorted({c.seed for c in cells}),
        fixed=_infer_fixed(cells),
        workers=workers,
        cache_dir=str(cache.root) if cache is not None else None,
        n_cells=len(cells),
        cache_hits=hits,
        cache_misses=len(done_results) - hits,
        elapsed_s=time.perf_counter() - t0,
        cells=[
            {
                "params": dict(r.cell.params),
                "seed": r.cell.seed,
                "key": r.key,
                "cached": r.cached,
                "wall_s": round(r.wall_s, 6),
                "attempts": r.attempts,
            }
            for r in done_results
        ],
        git_sha=git_sha(),
        started_at=started,
        extra=dict(manifest_meta or {}),
        retries=sweep.retries,
        pool_restarts=sweep.pool_restarts,
        cache_corrupt=n_corrupt,
        cache_repairs=sweep.cache_repairs,
        failures=[f.to_dict() for f in failures],
    )
    return SweepRun(results=done_results, manifest=manifest, failures=failures)


def _infer_grid(cells: Sequence[Cell]) -> Dict[str, List]:
    """Params that vary across cells, with their distinct values in order."""
    varying: Dict[str, List] = {}
    for cell in cells:
        for name, value in cell.params.items():
            values = varying.setdefault(name, [])
            if value not in values:
                values.append(value)
    return {k: v for k, v in varying.items() if len(v) > 1}


def _infer_fixed(cells: Sequence[Cell]) -> Dict:
    """Params held constant across every cell."""
    if not cells:
        return {}
    fixed = dict(cells[0].params)
    for cell in cells[1:]:
        for name in list(fixed):
            if name not in cell.params or cell.params[name] != fixed[name]:
                del fixed[name]
    return fixed
