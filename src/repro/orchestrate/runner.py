"""The sweep executor: fan cells out to workers, persist, resume.

``run_cells`` is the single entry point every sweep in the repo routes
through.  Serial in-process execution is the default (and what tests
exercise); ``workers=N`` opts in to a ``ProcessPoolExecutor`` fan-out,
and ``cache`` opts in to the content-addressed result cache so a killed
run resumes from its completed cells.

Guarantees, in both modes:

* **Determinism** — each cell carries its own seed and the target
  function derives all randomness from it, so results do not depend on
  worker count or completion order.  Results are returned in grid
  order.
* **Canonical payloads** — every payload is passed through
  :func:`repro.orchestrate.cache.jsonify` whether or not it came from
  the cache, so cached and freshly-computed rows are byte-identical.
* **Crash safety** — completed cells are persisted (atomically) as they
  finish, not at the end of the run, so ``Ctrl-C`` or ``SIGKILL`` loses
  at most the in-flight cells.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.orchestrate.cache import ResultCache, cache_key, jsonify, qualname_of
from repro.orchestrate.cells import Cell
from repro.orchestrate.manifest import RunManifest, git_sha


class CellError(RuntimeError):
    """A sweep cell raised; carries which cell so sweeps fail debuggably."""

    def __init__(self, cell: Cell, cause: BaseException) -> None:
        super().__init__(f"{cell.describe()} failed: {type(cause).__name__}: {cause}")
        self.cell = cell


@dataclass
class CellResult:
    """One completed cell: its payload plus execution provenance."""

    cell: Cell
    payload: Dict
    wall_s: float
    cached: bool
    key: Optional[str] = None


@dataclass
class SweepRun:
    """Results of one orchestrated sweep, in grid order, plus manifest."""

    results: List[CellResult] = field(default_factory=list)
    manifest: Optional[RunManifest] = None

    def payloads(self) -> List[Dict]:
        return [r.payload for r in self.results]


def _execute_cell(fn: Callable[..., Dict], cell: Cell) -> Tuple[Dict, float]:
    """Run one cell and time it.  Module-level so it pickles to workers."""
    start = time.perf_counter()
    payload = fn(**cell.kwargs())
    wall = time.perf_counter() - start
    if not isinstance(payload, Mapping):
        raise TypeError(
            f"sweep function {qualname_of(fn)} returned "
            f"{type(payload).__name__}, expected a dict"
        )
    return jsonify(payload), wall


def _check_parallelisable(fn: Callable) -> None:
    qualname = getattr(fn, "__qualname__", "")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise ValueError(
            f"cannot run {qualname_of(fn)!r} with workers > 1: lambdas and "
            "locally-defined functions do not pickle to worker processes; "
            "move the sweep function to module level"
        )


def run_cells(
    fn: Callable[..., Dict],
    cells: Sequence[Cell],
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    config: Optional[Mapping] = None,
    manifest_meta: Optional[Mapping] = None,
) -> SweepRun:
    """Execute ``fn`` over ``cells``, with optional fan-out and caching.

    ``workers <= 1`` runs serially in-process (the default); larger
    values fan the uncached cells out across that many worker processes.
    With a ``cache``, completed cells are looked up before execution and
    persisted the moment they finish.  ``config`` is folded into every
    cache key (code-version tags live here); ``manifest_meta`` is
    recorded verbatim in the manifest's ``extra`` field.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    cells = list(cells)
    started = RunManifest.now()
    t0 = time.perf_counter()

    keys: List[Optional[str]] = [
        cache_key(fn, c.params, c.seed, config) if cache is not None else None
        for c in cells
    ]
    results: List[Optional[CellResult]] = [None] * len(cells)

    pending: List[int] = []
    for i, cell in enumerate(cells):
        hit = cache.get(keys[i]) if cache is not None else None
        if hit is not None:
            results[i] = CellResult(cell, hit, 0.0, cached=True, key=keys[i])
        else:
            pending.append(i)

    def finish(i: int, payload: Dict, wall: float) -> None:
        if cache is not None:
            cache.put(keys[i], payload, meta={"params": dict(cells[i].params),
                                              "seed": cells[i].seed,
                                              "fn": qualname_of(fn)})
        results[i] = CellResult(cells[i], payload, wall, cached=False, key=keys[i])

    if workers > 1 and pending:
        _check_parallelisable(fn)
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(_execute_cell, fn, cells[i]): i for i in pending}
            not_done = set(futures)
            try:
                # Persist each cell as it completes: a kill mid-run loses
                # only the in-flight cells, never the finished ones.
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in done:
                        i = futures[fut]
                        try:
                            payload, wall = fut.result()
                        except Exception as err:
                            raise CellError(cells[i], err) from err
                        finish(i, payload, wall)
            finally:
                for fut in not_done:
                    fut.cancel()
    else:
        for i in pending:
            try:
                payload, wall = _execute_cell(fn, cells[i])
            except CellError:
                raise
            except Exception as err:
                raise CellError(cells[i], err) from err
            finish(i, payload, wall)

    done_results: List[CellResult] = [r for r in results if r is not None]
    hits = sum(1 for r in done_results if r.cached)
    manifest = RunManifest(
        fn=qualname_of(fn),
        grid=_infer_grid(cells),
        seeds=sorted({c.seed for c in cells}),
        fixed=_infer_fixed(cells),
        workers=workers,
        cache_dir=str(cache.root) if cache is not None else None,
        n_cells=len(cells),
        cache_hits=hits,
        cache_misses=len(done_results) - hits,
        elapsed_s=time.perf_counter() - t0,
        cells=[
            {
                "params": dict(r.cell.params),
                "seed": r.cell.seed,
                "key": r.key,
                "cached": r.cached,
                "wall_s": round(r.wall_s, 6),
            }
            for r in done_results
        ],
        git_sha=git_sha(),
        started_at=started,
        extra=dict(manifest_meta or {}),
    )
    return SweepRun(results=done_results, manifest=manifest)


def _infer_grid(cells: Sequence[Cell]) -> Dict[str, List]:
    """Params that vary across cells, with their distinct values in order."""
    varying: Dict[str, List] = {}
    for cell in cells:
        for name, value in cell.params.items():
            values = varying.setdefault(name, [])
            if value not in values:
                values.append(value)
    return {k: v for k, v in varying.items() if len(v) > 1}


def _infer_fixed(cells: Sequence[Cell]) -> Dict:
    """Params held constant across every cell."""
    if not cells:
        return {}
    fixed = dict(cells[0].params)
    for cell in cells[1:]:
        for name in list(fixed):
            if name not in cell.params or cell.params[name] != fixed[name]:
                del fixed[name]
    return fixed
