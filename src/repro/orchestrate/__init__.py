"""Sweep orchestration: parallel fan-out, resumable result cache, manifests.

The execution layer between experiment functions and the sweep surfaces
(``repro.bench.harness.sweep``, the ``repro sweep`` CLI, and the
benchmark suite).  A sweep is expanded into :class:`Cell`\\ s — one
``(parameter value, seed)`` point each — and :func:`run_cells` executes
them serially (the default) or across worker processes, consulting a
content-addressed :class:`ResultCache` so interrupted runs resume from
the cells already completed.  Every run emits a :class:`RunManifest`
recording the grid, cache hits/misses, per-cell wall time, worker count,
and git SHA.

See ``docs/usage.md`` ("Resumable parallel sweeps") for recipes and
EXPERIMENTS.md for cache-key hygiene when code changes.
"""

from repro.orchestrate.cache import (
    VOLATILE_KEYS,
    ResultCache,
    cache_key,
    canonical_json,
    jsonify,
    qualname_of,
    strip_volatile,
)
from repro.orchestrate.cells import Cell, expand_grid
from repro.orchestrate.manifest import RunManifest, git_sha
from repro.orchestrate.runner import CellError, CellResult, SweepRun, run_cells

__all__ = [
    "Cell",
    "CellError",
    "CellResult",
    "ResultCache",
    "RunManifest",
    "SweepRun",
    "VOLATILE_KEYS",
    "cache_key",
    "strip_volatile",
    "canonical_json",
    "expand_grid",
    "git_sha",
    "jsonify",
    "qualname_of",
    "run_cells",
]
