"""Sweep orchestration: parallel fan-out, resumable result cache, manifests.

The execution layer between experiment functions and the sweep surfaces
(``repro.bench.harness.sweep``, the ``repro sweep`` CLI, and the
benchmark suite).  A sweep is expanded into :class:`Cell`\\ s — one
``(parameter value, seed)`` point each — and :func:`run_cells` executes
them serially (the default) or across worker processes, consulting a
content-addressed :class:`ResultCache` so interrupted runs resume from
the cells already completed.  Every run emits a :class:`RunManifest`
recording the grid, cache hits/misses, per-cell wall time, worker count,
and git SHA.

Fault tolerance lives in :mod:`repro.orchestrate.policy`: a
:class:`RetryPolicy` grants failing cells more attempts (exponential
backoff, deterministic jitter, retryable-vs-fatal classification),
``cell_timeout``/``deadline`` bound cell and sweep durations, crashed
worker pools are rebuilt and only unfinished cells resubmitted, and
``on_error="quarantine"`` records exhausted cells in the manifest's
``failures`` section instead of aborting the sweep.  A
:class:`SweepFaultPlan` injects deterministic faults (transient raise,
oversleep, worker SIGKILL) for chaos-testing the orchestration itself.

Multi-host sweeps live in :mod:`repro.orchestrate.queue` and
:mod:`repro.orchestrate.worker`: a :class:`JobQueue` materialises the
grid as a shared-filesystem queue directory, and any number of
:class:`QueueWorker`\\ s (the ``repro worker`` CLI) claim cells through
lease files carrying fencing tokens — crashed workers' leases are taken
over after ``lease_ttl_s`` without heartbeats, and a resurrected
zombie's late write is fenced rather than applied.  Per-worker shard
manifests merge into one queue-wide record via
:meth:`RunManifest.merge`.

See ``docs/usage.md`` ("Resumable parallel sweeps", "Surviving flaky
sweeps", and "Running a sweep across machines") for recipes and
EXPERIMENTS.md for cache-key hygiene when code changes.
"""

from repro.orchestrate.cache import (
    VOLATILE_KEYS,
    ResultCache,
    cache_key,
    canonical_json,
    jsonify,
    qualname_of,
    strip_volatile,
)
from repro.orchestrate.cells import Cell, expand_grid
from repro.orchestrate.manifest import RunManifest, git_sha
from repro.orchestrate.policy import (
    DISTRIBUTED_FAULT_KINDS,
    EXECUTION_FAULT_KINDS,
    FAILURE_VOLATILE_KEYS,
    CellFailure,
    CellFault,
    CellTimeout,
    InjectedFault,
    PoolRestartBudgetError,
    RetryPolicy,
    SweepDeadlineError,
    SweepFaultPlan,
)
from repro.orchestrate.queue import Claim, JobQueue, LeaseLost, QueueSpecMismatch
from repro.orchestrate.runner import CellError, CellResult, SweepRun, run_cells
from repro.orchestrate.worker import InjectedWorkerCrash, QueueWorker, WorkerReport

__all__ = [
    "Cell",
    "CellError",
    "CellFailure",
    "CellFault",
    "CellResult",
    "CellTimeout",
    "Claim",
    "DISTRIBUTED_FAULT_KINDS",
    "EXECUTION_FAULT_KINDS",
    "FAILURE_VOLATILE_KEYS",
    "InjectedFault",
    "InjectedWorkerCrash",
    "JobQueue",
    "LeaseLost",
    "PoolRestartBudgetError",
    "QueueSpecMismatch",
    "QueueWorker",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "SweepDeadlineError",
    "SweepFaultPlan",
    "SweepRun",
    "VOLATILE_KEYS",
    "WorkerReport",
    "cache_key",
    "strip_volatile",
    "canonical_json",
    "expand_grid",
    "git_sha",
    "jsonify",
    "qualname_of",
    "run_cells",
]
