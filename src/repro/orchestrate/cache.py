"""Content-addressed on-disk result cache for sweep cells.

Each completed cell is stored as one JSON file whose name is the SHA-256
of a canonical encoding of ``(function qualname, params, seed, config)``.
Re-running a sweep after a crash, an interrupt, or a grid extension
recomputes only the cells whose keys are not on disk.

Canonicalisation notes
----------------------
JSON text already distinguishes every case the cache cares about:
``true`` vs ``1`` vs ``1.0`` are three different encodings, so boolean
flags, ints, and floats never collide.  Dicts are serialised with sorted
keys, tuples collapse to lists (a tuple and a list of the same values
are the same experiment point), and NumPy scalars/arrays are converted
to their Python equivalents so a key does not depend on which numeric
backend produced a parameter.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a killed run never leaves a half-written entry — a torn file can only be
a leftover temp file, which is ignored.  Unreadable or corrupt entries
are treated as misses and recomputed.

Temp-file names embed ``(hostname, pid, counter)`` so any number of
workers — across processes *and* hosts sharing the cache directory over
NFS — can write concurrently without colliding, and
:meth:`ResultCache.gc_stale_tmp` reaps the orphans a SIGKILLed worker
leaves behind (reported in run manifests as ``cache_tmp_reaped``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Tuple, Union


def qualname_of(fn: Union[Callable, str]) -> str:
    """Stable dotted name of the sweep function, for cache keys.

    Accepts a callable (module + qualname) or an already-formatted
    string.  Lambdas and local closures produce names like
    ``module.<locals>.<lambda>`` that are *not* unique — they run fine
    serially, but see EXPERIMENTS.md on cache-key hygiene before caching
    them.
    """
    if isinstance(fn, str):
        return fn
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    return f"{module}.{qualname}"


def jsonify(value: Any) -> Any:
    """Coerce a payload to JSON-native types, preserving numeric identity.

    NumPy scalars become Python scalars, arrays become nested lists,
    tuples become lists.  Used both for cache keys and for cell payloads,
    so a cache *hit* returns byte-identical data to a fresh computation.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return jsonify(item())  # NumPy 0-d scalar
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return jsonify(tolist())  # NumPy array
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for the result cache; "
        "sweep functions must return JSON-representable dicts"
    )


#: Payload keys that vary run-to-run even for a deterministic simulation.
#: Timing is measurement, not simulation output — comparisons of
#: orchestrated vs serial rows strip these.
VOLATILE_KEYS = frozenset({"elapsed_s", "ops_per_sec", "speedup"})


def strip_volatile(value: Any, keys: Any = VOLATILE_KEYS) -> Any:
    """Recursively drop wall-clock-derived keys from a payload.

    Deterministic sweeps produce identical rows regardless of worker
    count or cache state *except* for timing fields; this is the
    canonical projection used to compare them.
    """
    keys = frozenset(keys)
    if isinstance(value, Mapping):
        return {k: strip_volatile(v, keys) for k, v in value.items() if k not in keys}
    if isinstance(value, (list, tuple)):
        return [strip_volatile(v, keys) for v in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


def cache_key(
    fn: Union[Callable, str],
    params: Mapping,
    seed: int,
    config: Optional[Mapping] = None,
) -> str:
    """SHA-256 key of one cell: function identity, params, seed, config.

    ``config`` carries code-relevant context that is not a sweep
    parameter — e.g. a code-version tag — so bumping it invalidates every
    entry produced by older code (see EXPERIMENTS.md).
    """
    blob = canonical_json(
        {
            "fn": qualname_of(fn),
            "params": dict(params),
            "seed": int(seed),
            "config": dict(config or {}),
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Short hostname component of temp-file names; "." would read as a
#: suffix separator, so only the first DNS label is kept.
_HOSTNAME = (socket.gethostname().split(".")[0] or "host").replace("/", "_")

#: Per-process counter completing the (hostname, pid, counter) triple
#: that makes every temp-file name unique across a shared filesystem.
_TMP_COUNTER = itertools.count()


class ResultCache:
    """Directory of completed-cell payloads, addressed by cell key."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Two-level fan-out keeps directory listings manageable."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or ``None`` on miss/corruption."""
        return self.probe(key)[0]

    def probe(self, key: str) -> Tuple[Optional[dict], str]:
        """Like :meth:`get`, but distinguishes *why* a lookup missed.

        Returns ``(payload, "hit")``, ``(None, "miss")`` for an absent
        entry, or ``(None, "corrupt")`` for a file that exists but does
        not parse to a well-formed entry (truncated write from a dying
        process, disk mangling).  Corrupt entries still behave as misses
        — the runner recomputes and the next :meth:`put` atomically
        replaces the bad file (self-healing, counted in the manifest's
        ``cache_repairs``).
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None, "miss"
        except (OSError, ValueError):
            return None, "corrupt"
        if not isinstance(entry, dict) or "payload" not in entry:
            return None, "corrupt"
        return entry["payload"], "hit"

    def _open_tmp(self, parent: Path, key: str) -> Tuple[int, str]:
        """Create a uniquely-named temp file next to ``parent``.

        The name carries ``(hostname, pid, counter)``: two writers on the
        same host differ in pid or counter, two hosts differ in hostname,
        so concurrent ``put`` calls against one shared cache directory
        never race on the temp file itself.  ``O_EXCL`` backstops the
        construction (e.g. a pid reused after a crash colliding with a
        dead writer's orphan): on collision the counter advances and the
        open retries.
        """
        while True:
            tmp = str(
                parent / f"{key[:12]}.{_HOSTNAME}-{os.getpid()}-{next(_TMP_COUNTER)}.tmp"
            )
            try:
                return os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644), tmp
            except FileExistsError:
                continue

    def put(self, key: str, payload: Any, meta: Optional[Mapping] = None) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "payload": jsonify(payload), "meta": jsonify(meta or {})}
        fd, tmp = self._open_tmp(path.parent, key)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                # Not sort_keys: the payload's own key order must survive
                # the round trip so cache hits are byte-identical to
                # freshly-computed rows.
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def gc_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Remove orphaned temp files and return how many were reaped.

        A SIGKILLed writer leaves its ``.tmp`` file behind forever —
        nothing ever renames or deletes it.  Only files older than
        ``max_age_s`` are touched so a *live* writer's in-flight temp
        file is never yanked out from under its ``os.replace``; pass
        ``0.0`` only once the cache has no concurrent writers (e.g.
        after a job queue has drained).  Concurrent reapers are safe:
        losing an unlink race just means the other reaper counted it.
        """
        reaped = 0
        cutoff = time.time() - max_age_s
        for tmp in self.root.glob("??/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    reaped += 1
            except OSError:
                continue
        return reaped

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
