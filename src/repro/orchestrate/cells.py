"""Sweep cells: the unit of work the orchestrator schedules and caches.

A *cell* is one ``(parameter assignment, seed)`` point of a sweep grid.
Cells are plain data — the function that runs them travels separately —
so they pickle cheaply to worker processes and hash canonically into
cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence


@dataclass(frozen=True)
class Cell:
    """One point of a sweep: fixed parameters plus a seed.

    ``params`` holds every keyword the target function receives except
    ``seed``, which is kept separate because it is the replication axis:
    two cells with equal params and different seeds are independent
    repetitions of the same experiment point.
    """

    params: Mapping = field(default_factory=dict)
    seed: int = 0

    def kwargs(self) -> Dict:
        """The keyword arguments the target function is called with."""
        return {**self.params, "seed": int(self.seed)}

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"Cell({inner}, seed={self.seed})"


def expand_grid(
    param_name: str,
    values: Iterable,
    seeds: Sequence[int],
    **fixed,
) -> List[Cell]:
    """Expand a one-parameter sweep into its ``value x seed`` cells.

    The returned order is row-major — all seeds of the first value, then
    all seeds of the second — which is the order serial execution runs
    them in and the order results are reported in, regardless of how
    many workers actually execute the cells.
    """
    values = list(values)
    if not values:
        raise ValueError("need at least one parameter value")
    if not seeds:
        raise ValueError("need at least one seed")
    cells = []
    for value in values:
        for seed in seeds:
            cells.append(Cell(params={param_name: value, **fixed}, seed=int(seed)))
    return cells
