"""repro — reproduction of *The Power of Choice in Priority Scheduling*.

(Alistarh, Kopinsky, Li, Nadiradze; PODC 2017, arXiv:1706.04178.)

The package is organized around the paper's layers:

``repro.core``
    The (1+beta) MultiQueue data structure and the exact sequential
    process it linearizes to, with rank-cost accounting; the exponential
    process, the Theorem 2 coupling, the Theorem 3 potential functions,
    the single-choice divergent baseline, and the round-robin reduction.
``repro.pqueues``
    Sequential priority queues (binary/d-ary/pairing heaps, skiplist,
    bucket queue) used as per-queue substrates.
``repro.ballsbins``
    Classical balls-into-bins processes (one/two/d-choice, (1+beta),
    weighted, graphical) connected to the analysis.
``repro.sim`` and ``repro.concurrent``
    A deterministic discrete-event concurrency simulator and models of
    the paper's contenders (MultiQueue, Lindén–Jonsson, k-LSM,
    SprayList) with linearization-point rank recording.
``repro.graphs``
    Graph generators, sequential and simulated-parallel Dijkstra, and
    the Section 6 graph choice process.
``repro.analysis`` / ``repro.bench``
    Statistics, theory-bound checks, and the experiment harness.

Quickstart
----------
>>> from repro import MultiQueue
>>> mq = MultiQueue(n_queues=8, beta=0.5, rng=42)
>>> for x in [5, 1, 9, 3]:
...     _ = mq.insert(x)
>>> entry = mq.delete_min()   # small-rank element, probably the min
"""

from repro.core import (
    ExponentialProcess,
    MultiQueue,
    RankTrace,
    SequentialProcess,
    SingleChoiceProcess,
)
__version__ = "1.0.0"

__all__ = [
    "MultiQueue",
    "SequentialProcess",
    "SingleChoiceProcess",
    "ExponentialProcess",
    "RankTrace",
    "__version__",
]
