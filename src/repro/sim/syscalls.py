"""Syscalls: the requests simulated threads yield to the engine.

A simulated thread is a Python generator.  It runs real Python code
(which executes atomically at a simulation instant) and yields syscall
objects whenever simulated time must pass or shared state must be
touched with cost/contention accounting.  The engine resumes the
generator with the syscall's result (e.g. the value read, or whether a
CAS/try-lock succeeded).

Example
-------
A lock-protected critical section inside a thread body::

    ok = yield TryAcquire(lock)
    if ok:
        ...mutate shared structure (atomic at this instant)...
        yield Delay(cost_model.pq_op_cost(size))
        yield Release(lock)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.primitives import SimCell, SimLock


@dataclass(frozen=True)
class Delay:
    """Advance this thread's clock by ``cycles`` (local computation)."""

    cycles: float


@dataclass(frozen=True)
class Yield:
    """Reschedule with zero delay (lets same-time events interleave)."""


@dataclass(frozen=True)
class Read:
    """Atomically read ``cell.value``; result is the value."""

    cell: "SimCell"


@dataclass(frozen=True)
class Write:
    """Atomically set ``cell.value``; result is ``None``."""

    cell: "SimCell"
    value: Any


@dataclass(frozen=True)
class CAS:
    """Compare-and-swap: if ``cell.value == expected`` install ``new``.

    Result is ``True`` on success, ``False`` otherwise.  Cost is paid
    either way; a cache transfer is charged when the cell was last
    touched by another thread.
    """

    cell: "SimCell"
    expected: Any
    new: Any


@dataclass(frozen=True)
class TryAcquire:
    """Non-blocking lock attempt; result is ``True`` iff acquired.

    This is the MultiQueue's locking primitive: on failure the caller
    re-picks a random queue rather than waiting.
    """

    lock: "SimLock"


@dataclass(frozen=True)
class Acquire:
    """Blocking acquire: the thread parks until the lock is handed over."""

    lock: "SimLock"


@dataclass(frozen=True)
class Release:
    """Release a held lock; wakes the head waiter, if any.

    Result is ``True`` for a normal release and ``False`` when the
    caller's hold had already been revoked by a lock lease (see
    :attr:`~repro.sim.primitives.SimLock.lease`) — in that case the
    release is a benign no-op that does not perturb the lock.
    """

    lock: "SimLock"


@dataclass(frozen=True)
class Holding:
    """Re-validation probe: result is whether *this thread* currently
    holds ``lock``.

    Only meaningful under lock leases, where a stalled holder can lose
    the lock mid-critical-section and must re-validate before touching
    state it believes it protects.  Charged like an atomic read of the
    lock word.
    """

    lock: "SimLock"


@dataclass(frozen=True)
class GuardedWrite:
    """Write ``cell.value`` only if this thread still holds ``lock``.

    The holdership check and the store happen atomically at the handling
    instant, closing the check-then-write race a separate
    :class:`Holding` + :class:`Write` pair would leave open.  Result is
    ``True`` iff the write happened.  Costs the same as :class:`Write`,
    so lease-oblivious code can use it unconditionally.
    """

    cell: "SimCell"
    value: Any
    lock: "SimLock"


@dataclass(frozen=True)
class BarrierWait:
    """Park until all parties of the barrier have arrived.

    The result is the arrival index within the generation (0-based);
    index ``parties - 1`` identifies the last arriver, which phase-
    structured algorithms use as the leader for serial phase work.
    """

    barrier: "object"
