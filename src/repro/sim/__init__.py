"""Discrete-event concurrency simulator.

The paper's evaluation ran C++ implementations on an 18-core Haswell
Xeon.  A Python reproduction cannot measure real multicore scalability
(the GIL serializes threads), so this package provides the substitute
documented in DESIGN.md: simulated threads are Python generators that
yield *syscalls* (delays, lock operations, atomic reads/writes/CAS) to
an event-driven engine with a cycle-accurate-ish cost model.

What the model captures — and what the paper's throughput figures
actually hinge on — is the *contention structure* of each algorithm:

* a MultiQueue spreads operations over ``c * P`` locks, so lock
  conflicts are rare and throughput scales with threads;
* a skiplist-based queue funnels every ``deleteMin`` through one hot
  cache line, so added threads mostly add CAS retries;
* cache-line transfer costs are charged whenever a thread touches a
  lock/cell last touched by another thread.

Determinism: given the same seeds, event processing order is a pure
function of the inputs, so simulated runs are exactly reproducible.
"""

from repro.sim.cost_model import CostModel
from repro.sim.syscalls import (
    CAS,
    Acquire,
    BarrierWait,
    Delay,
    GuardedWrite,
    Holding,
    Read,
    Release,
    TryAcquire,
    Write,
    Yield,
)
from repro.sim.primitives import SimBarrier, SimCell, SimLock
from repro.sim.engine import DeadlockError, Engine, LivelockError, ThreadStats
from repro.sim.faults import (
    CrashStop,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    LockHolderPreempt,
    LockHolderStall,
)
from repro.sim.workload import (
    AlternatingWorkload,
    ProducerConsumerWorkload,
    run_throughput_experiment,
)

__all__ = [
    "CostModel",
    "Delay",
    "Yield",
    "Read",
    "Write",
    "GuardedWrite",
    "CAS",
    "TryAcquire",
    "Acquire",
    "Release",
    "Holding",
    "BarrierWait",
    "SimCell",
    "SimLock",
    "SimBarrier",
    "Engine",
    "ThreadStats",
    "DeadlockError",
    "LivelockError",
    "CrashStop",
    "DelaySpike",
    "LockHolderPreempt",
    "LockHolderStall",
    "FaultPlan",
    "FaultInjector",
    "AlternatingWorkload",
    "ProducerConsumerWorkload",
    "run_throughput_experiment",
]
