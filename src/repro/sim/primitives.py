"""Shared-memory primitives tracked by the engine: cells and locks."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional


class SimCell:
    """An atomic shared memory word (register with CAS).

    The engine charges a cache-transfer penalty whenever the accessing
    thread differs from :attr:`last_owner` — the MESI-style ping-pong
    that makes centralized counters and list heads scale badly.
    """

    __slots__ = ("value", "last_owner", "name", "accesses", "transfers", "busy_until")

    def __init__(self, value: Any = None, name: str = "") -> None:
        self.value = value
        self.name = name
        #: Thread id of the last accessor (None = untouched).
        self.last_owner: Optional[int] = None
        #: Total accesses (reads + writes + CAS attempts), for metrics.
        self.accesses = 0
        #: Accesses that paid a cache transfer, for metrics.
        self.transfers = 0
        #: Simulated time until which the cache line is mid-transfer.
        #: Cross-thread accesses queue behind this — the serialization
        #: that makes hot lines a scalability ceiling.
        self.busy_until = 0.0

    def contention_ratio(self) -> float:
        """Fraction of accesses that crossed threads (0 = thread-private)."""
        return self.transfers / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"SimCell({label} value={self.value!r}, accesses={self.accesses})"


class SimBarrier:
    """A cyclic barrier for ``parties`` simulated threads.

    Threads issue :class:`~repro.sim.syscalls.BarrierWait`; the last
    arriver releases the whole generation (paying one handoff plus a
    transfer, like a real barrier's releasing store).
    """

    __slots__ = ("parties", "waiting", "generation", "name")

    def __init__(self, parties: int, name: str = "") -> None:
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self.parties = parties
        self.waiting: Deque[int] = deque()
        #: Completed generations (full release cycles).
        self.generation = 0
        self.name = name

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SimBarrier({label} parties={self.parties}, "
            f"waiting={len(self.waiting)}, generation={self.generation})"
        )


class SimLock:
    """A mutex with try-lock, blocking acquire, and FIFO handoff.

    Ownership transfer between different threads pays the cache-transfer
    penalty, like cells.  ``held_by`` is a thread id or ``None``.

    When ``lease`` is set, the lock runs in *lease mode*: a holder that
    keeps the lock longer than ``lease`` cycles can have it revoked by
    the engine the next time another thread requests it (graceful
    degradation under stalled/crashed holders).  Revoked holders learn
    of the loss from their next :class:`~repro.sim.syscalls.Release`
    (result ``False``) or :class:`~repro.sim.syscalls.Holding` probe,
    and must re-validate before publishing state.
    """

    __slots__ = (
        "held_by",
        "waiters",
        "last_owner",
        "name",
        "acquisitions",
        "failed_tries",
        "busy_until",
        "lease",
        "held_since",
        "revocations",
        "revoked",
    )

    def __init__(self, name: str = "", lease: Optional[float] = None) -> None:
        if lease is not None and lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        self.held_by: Optional[int] = None
        self.waiters: Deque[int] = deque()
        self.last_owner: Optional[int] = None
        self.name = name
        #: Successful acquisitions, for metrics.
        self.acquisitions = 0
        #: Failed try_lock attempts, for metrics.
        self.failed_tries = 0
        #: Simulated time until which the lock word's line is mid-transfer.
        self.busy_until = 0.0
        #: Cycles a holder may keep the lock before it becomes revocable
        #: (``None`` disables leases — classic mutex semantics).
        self.lease = lease
        #: Simulated time of the current holder's acquisition.
        self.held_since = 0.0
        #: Times a stale holder lost the lock to lease revocation.
        self.revocations = 0
        #: Thread ids whose hold was revoked and who have not yet
        #: observed the loss (via Release/Holding).
        self.revoked: set = set()

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self.held_by is not None

    def failure_ratio(self) -> float:
        """Failed tries / total attempts — the MultiQueue retry rate."""
        total = self.acquisitions + self.failed_tries
        return self.failed_tries / total if total else 0.0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SimLock({label} held_by={self.held_by}, "
            f"waiters={len(self.waiters)}, acq={self.acquisitions})"
        )
