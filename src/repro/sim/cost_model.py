"""Cycle-cost model for simulated operations.

Costs are in abstract "cycles".  Defaults are order-of-magnitude figures
for a Haswell-class x86 (the paper's testbed): an uncontended atomic is
a few tens of cycles, a cross-core cache-line transfer is on the order
of a hundred, and a heap operation costs a handful of cache misses'
worth of work scaled by ``log(size)``.  Absolute values matter less than
their *ratios* — contended vs. uncontended is what shapes the throughput
curves benches compare against the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class CostModel:
    """Costs (in cycles) charged by the engine for each syscall.

    Attributes
    ----------
    cas:
        Base cost of a compare-and-swap (success or failure).
    read / write:
        Base cost of an atomic read / write on a shared cell.
    cache_transfer:
        Extra cost when the touched cell/lock was last accessed by a
        different thread (models MESI ownership transfer) — the single
        most important parameter for contention behaviour.
    lock_acquire / lock_release:
        Base cost of an uncontended acquire / release.
    try_fail:
        Cost of a failed ``try_lock`` (read + failed CAS, typically).
    handoff:
        Extra latency for waking a blocked waiter on release.
    local_work:
        Cost of a unit of thread-local computation (bookkeeping between
        data-structure calls).
    rng_draw:
        Cost of drawing a random number (queue choices are on the
        MultiQueue fast path, so this is modelled explicitly).
    backoff_base:
        First-step pause of the exponential lock-retry backoff (the
        MultiQueue doubles it per consecutive failed try, capped at
        ``64x``); keeps failed-try storms from melting into livelock.
    pq_base / pq_per_level:
        Sequential priority-queue op cost: ``pq_base + pq_per_level *
        log2(size + 2)`` — the binary-heap cost shape.
    """

    cas: float = 30.0
    read: float = 4.0
    write: float = 8.0
    cache_transfer: float = 120.0
    lock_acquire: float = 40.0
    lock_release: float = 15.0
    try_fail: float = 50.0
    handoff: float = 60.0
    local_work: float = 20.0
    rng_draw: float = 15.0
    backoff_base: float = 25.0
    pq_base: float = 40.0
    pq_per_level: float = 25.0

    def pq_op_cost(self, size: int) -> float:
        """Cost of one push/pop on a sequential heap of ``size`` entries."""
        return self.pq_base + self.pq_per_level * math.log2(size + 2)

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every cost multiplied by ``factor`` (sensitivity
        analysis in the ablation benches)."""
        return CostModel(
            **{name: getattr(self, name) * factor for name in self.__dataclass_fields__}
        )

    def with_contention(self, cache_transfer: float) -> "CostModel":
        """A copy with a different cache-transfer cost (ablations)."""
        fields = {name: getattr(self, name) for name in self.__dataclass_fields__}
        fields["cache_transfer"] = cache_transfer
        return CostModel(**fields)
