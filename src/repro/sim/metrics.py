"""Contention metrics extracted from simulated runs.

The engine's primitives already count accesses, transfers, acquisitions
and failed tries; this module aggregates them into report rows so
benches and debugging sessions can see *where* an algorithm's time went
— e.g. the Lindén–Jonsson head cell's transfer ratio vs the MultiQueue's
spread-out locks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sim.primitives import SimCell, SimLock


def cell_report(cells: Iterable[SimCell]) -> List[Dict]:
    """One row per cell: accesses, transfers, contention ratio."""
    rows = []
    for cell in cells:
        rows.append(
            {
                "cell": cell.name or "<anon>",
                "accesses": cell.accesses,
                "transfers": cell.transfers,
                "contention": cell.contention_ratio(),
            }
        )
    return rows


def lock_report(locks: Iterable[SimLock]) -> List[Dict]:
    """One row per lock: acquisitions, failed tries, failure ratio."""
    rows = []
    for lock in locks:
        rows.append(
            {
                "lock": lock.name or "<anon>",
                "acquisitions": lock.acquisitions,
                "failed_tries": lock.failed_tries,
                "failure": lock.failure_ratio(),
            }
        )
    return rows


def hottest_cells(cells: Iterable[SimCell], top: int = 5) -> List[Dict]:
    """The ``top`` cells by transfer count — the scalability suspects."""
    if top <= 0:
        raise ValueError(f"top must be positive, got {top}")
    rows = cell_report(cells)
    rows.sort(key=lambda r: r["transfers"], reverse=True)
    return rows[:top]


def contention_summary(model) -> Dict[str, float]:
    """Aggregate contention stats for a concurrent model.

    Walks the model's public-by-convention ``_locks``/``_tops``/simple
    cell attributes and totals them.  Works for every model in
    :mod:`repro.concurrent`; unknown models yield zeros.
    """
    locks: List[SimLock] = list(getattr(model, "_locks", []) or [])
    shared_lock = getattr(model, "_shared_lock", None)
    if isinstance(shared_lock, SimLock):
        locks.append(shared_lock)
    cells: List[SimCell] = list(getattr(model, "_tops", []) or [])
    for attr in ("_head", "_shared_top"):
        cell = getattr(model, attr, None)
        if isinstance(cell, SimCell):
            cells.append(cell)
    cells.extend(getattr(model, "_regions", []) or [])

    acq = sum(l.acquisitions for l in locks)
    fail = sum(l.failed_tries for l in locks)
    accesses = sum(c.accesses for c in cells)
    transfers = sum(c.transfers for c in cells)
    return {
        "locks": len(locks),
        "acquisitions": acq,
        "failed_tries": fail,
        "lock_failure_ratio": fail / (acq + fail) if (acq + fail) else 0.0,
        "cells": len(cells),
        "cell_accesses": accesses,
        "cell_transfers": transfers,
        "cell_contention_ratio": transfers / accesses if accesses else 0.0,
    }
