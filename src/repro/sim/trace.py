"""Execution tracing for the simulation engine.

A :class:`Tracer` attached to an :class:`~repro.sim.engine.Engine`
records every syscall with its timestamp, thread, and target object,
enabling post-mortem queries ("who held this lock between t1 and t2?")
and ASCII timeline rendering.  Tracing is opt-in and adds no cost when
absent.

Example
-------
>>> from repro.sim import Engine
>>> from repro.sim.trace import Tracer
>>> eng = Engine()
>>> tracer = Tracer.attach(eng)
... # spawn threads, eng.run()
... # tracer.records, tracer.lock_timeline(lock), tracer.render_timeline()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.sim.primitives import SimLock
from repro.sim.syscalls import CAS, Acquire, Delay, Read, Release, TryAcquire, Write, Yield


@dataclass(frozen=True)
class TraceRecord:
    """One traced syscall issue."""

    time: float
    tid: int
    kind: str
    target: str


def _describe(syscall: Any) -> Tuple[str, str]:
    """Map a syscall to (kind, target-name)."""
    if isinstance(syscall, Delay):
        return "delay", f"{syscall.cycles:g}"
    if isinstance(syscall, Yield):
        return "yield", ""
    if isinstance(syscall, Read):
        return "read", syscall.cell.name or "cell"
    if isinstance(syscall, Write):
        return "write", syscall.cell.name or "cell"
    if isinstance(syscall, CAS):
        return "cas", syscall.cell.name or "cell"
    if isinstance(syscall, TryAcquire):
        return "trylock", syscall.lock.name or "lock"
    if isinstance(syscall, Acquire):
        return "lock", syscall.lock.name or "lock"
    if isinstance(syscall, Release):
        return "unlock", syscall.lock.name or "lock"
    return "unknown", repr(syscall)


class Tracer:
    """Records syscall issues from an engine it is attached to."""

    def __init__(self, max_records: int = 1_000_000) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    @classmethod
    def attach(cls, engine: Engine, max_records: int = 1_000_000) -> "Tracer":
        """Create a tracer and wrap ``engine``'s syscall handler."""
        tracer = cls(max_records=max_records)
        original_handle = engine._handle

        def traced_handle(tid: int, syscall: Any) -> None:
            tracer._record(engine.now, tid, syscall)
            original_handle(tid, syscall)

        engine._handle = traced_handle  # type: ignore[method-assign]
        return tracer

    def _record(self, time: float, tid: int, syscall: Any) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        kind, target = _describe(syscall)
        self.records.append(TraceRecord(time=time, tid=tid, kind=kind, target=target))

    # -- queries ----------------------------------------------------------

    def by_thread(self, tid: int) -> List[TraceRecord]:
        """All records issued by one thread, in order."""
        return [r for r in self.records if r.tid == tid]

    def by_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one syscall kind."""
        return [r for r in self.records if r.kind == kind]

    def lock_timeline(self, lock: SimLock) -> List[Tuple[float, int, str]]:
        """(time, tid, event) sequence for one named lock."""
        name = lock.name or "lock"
        return [
            (r.time, r.tid, r.kind)
            for r in self.records
            if r.target == name and r.kind in ("lock", "trylock", "unlock")
        ]

    def counts(self) -> Dict[str, int]:
        """Records per syscall kind."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def render_timeline(
        self, width: int = 72, kinds: Optional[List[str]] = None
    ) -> str:
        """Per-thread ASCII timeline: one lane per thread, one marker per
        traced syscall, positioned by time."""
        if not self.records:
            return "(empty trace)"
        markers = {
            "delay": ".",
            "yield": ",",
            "read": "r",
            "write": "w",
            "cas": "C",
            "trylock": "t",
            "lock": "L",
            "unlock": "u",
        }
        t_max = max(r.time for r in self.records) or 1.0
        tids = sorted({r.tid for r in self.records})
        lanes = {tid: [" "] * width for tid in tids}
        for r in self.records:
            if kinds is not None and r.kind not in kinds:
                continue
            col = min(int(r.time / t_max * (width - 1)), width - 1)
            lanes[r.tid][col] = markers.get(r.kind, "?")
        lines = [f"t={0:<8g}{'':{width - 18}}t={t_max:g}"]
        for tid in tids:
            lines.append(f"T{tid:<3}|{''.join(lanes[tid])}|")
        legend = "  ".join(f"{m}={k}" for k, m in markers.items())
        lines.append(legend)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Tracer(records={len(self.records)}, dropped={self.dropped})"
