"""Deterministic fault injection for the concurrency simulator.

The paper's Appendix C shows that lock-based MultiQueue strategies lose
distributional linearizability exactly when the scheduler misbehaves (a
preempted lock holder lets queue tops age without bound).  This module
turns that one counterexample into a systematic chaos layer: a
:class:`FaultPlan` declares *what* goes wrong and *when*, and a
:class:`FaultInjector` attached to an :class:`~repro.sim.engine.Engine`
makes it happen at thread resume boundaries — the simulated analogue of
the OS preempting a thread between two instructions.

Fault vocabulary
----------------
* :class:`CrashStop` — a thread dies at a given simulated time,
  optionally abandoning its held locks (fail-stop with lost locks);
* :class:`DelaySpike` — OS jitter: every resume of every thread is
  stalled with some probability (interrupts, SMIs, page faults);
* :class:`LockHolderPreempt` — the Appendix C generalization: resumes
  are stalled *only while the thread holds at least one lock*,
  subsuming the legacy ``preempt_prob``/``preempt_cycles`` knobs of
  :class:`~repro.concurrent.multiqueue.ConcurrentMultiQueue`;
* :class:`LockHolderStall` — the targeted adversary: at a given time,
  the thread holding the most locks (at least ``min_locks``) is
  descheduled for a long stretch — Appendix C's counterexample without
  cooperation from the model.

Determinism: all randomness comes from the plan's *dedicated fault
RNG*, never from model RNGs, so enabling or re-parameterizing faults
does not perturb queue choices — runs are comparable across fault
settings (A/B pairing).  Given the same seeds and plan, the faulted
execution is exactly reproducible.

Example
-------
>>> from repro.sim import Engine, FaultInjector, FaultPlan, LockHolderPreempt
>>> eng = Engine()
>>> plan = FaultPlan([LockHolderPreempt(prob=0.01, cycles=50_000)], rng=7)
>>> FaultInjector(plan).attach(eng)  # doctest: +ELLIPSIS
<repro.sim.faults.FaultInjector object at ...>
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.utils.rngtools import SeedLike, as_generator

__all__ = [
    "CrashStop",
    "DelaySpike",
    "LockHolderPreempt",
    "LockHolderStall",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class CrashStop:
    """Kill one thread at simulated time ``at`` (fail-stop).

    ``thread`` selects the victim by engine tid (int) or spawn name
    (str).  With ``release_locks`` the victim's locks are handed off as
    if released (graceful crash); without it they stay dead-held — the
    scenario lock leases and deadlock diagnostics exist for.
    """

    at: float
    thread: Union[int, str]
    release_locks: bool = False

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be non-negative, got {self.at}")


@dataclass(frozen=True)
class DelaySpike:
    """OS jitter: stall any resume with probability ``prob`` for
    ``cycles`` cycles, within the ``[start, stop)`` window."""

    prob: float
    cycles: float
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive, got {self.cycles}")
        if self.stop <= self.start:
            raise ValueError(f"empty fault window [{self.start}, {self.stop})")


@dataclass(frozen=True)
class LockHolderPreempt:
    """Appendix C generalized: stall a resume with probability ``prob``
    for ``cycles`` cycles — but only while the thread holds at least one
    lock, so every hit ages some queue's top."""

    prob: float
    cycles: float
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive, got {self.cycles}")
        if self.stop <= self.start:
            raise ValueError(f"empty fault window [{self.start}, {self.stop})")


@dataclass(frozen=True)
class LockHolderStall:
    """Targeted adversary: at time ``at``, deschedule the thread holding
    the most locks (at least ``min_locks``) for ``duration`` cycles.

    If no thread qualifies at ``at``, the trigger re-arms every
    ``retry_every`` cycles until one does (or the run ends).  With
    ``min_locks=2`` this pins a ``delete_locking="both"`` MultiQueue
    deleter mid-operation — the exact Appendix C counterexample, now
    produced by the scheduler instead of a cooperating adversary op.
    """

    at: float
    duration: float
    min_locks: int = 1
    retry_every: float = 500.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"stall time must be non-negative, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.min_locks < 1:
            raise ValueError(f"min_locks must be >= 1, got {self.min_locks}")
        if self.retry_every <= 0:
            raise ValueError(f"retry_every must be positive, got {self.retry_every}")


FaultSpec = Union[CrashStop, DelaySpike, LockHolderPreempt, LockHolderStall]

_SPEC_TYPES = (CrashStop, DelaySpike, LockHolderPreempt, LockHolderStall)


class FaultPlan:
    """A declarative schedule of fault events plus a dedicated fault RNG.

    The plan is immutable input; one plan can drive many runs (each
    :class:`FaultInjector` re-derives a fresh generator from ``rng`` so
    repeated runs with the same plan are identical).
    """

    def __init__(self, faults: Iterable[FaultSpec] = (), rng: SeedLike = 0) -> None:
        self.faults: List[FaultSpec] = list(faults)
        for fault in self.faults:
            if not isinstance(fault, _SPEC_TYPES):
                raise TypeError(f"unknown fault spec {fault!r}")
        self.rng = rng

    @property
    def stochastic(self) -> List[FaultSpec]:
        """The per-resume probabilistic faults (spikes and preemptions)."""
        return [f for f in self.faults if isinstance(f, (DelaySpike, LockHolderPreempt))]

    @property
    def triggers(self) -> List[FaultSpec]:
        """The time-triggered one-shot faults (crashes and stalls)."""
        return [f for f in self.faults if isinstance(f, (CrashStop, LockHolderStall))]

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.faults)} faults, rng={self.rng!r})"


class FaultInjector:
    """Executes a :class:`FaultPlan` against an engine.

    Attach before (or after) spawning threads, then run the engine as
    usual::

        injector = FaultInjector(plan).attach(engine)
        engine.run()
        injector.injected_stalls, injector.crashed_tids  # post-mortem

    Hook protocol (called by the engine):

    * one-shot triggers are registered as engine *control events* at
      their scheduled times, so they fire even if the victim never
      resumes on its own (e.g. it is parked);
    * ``before_resume(engine, tid)`` is consulted at every thread resume
      and returns extra stall cycles (0 for none); stalls compound like
      real preemptions — a thread can be hit again when it next runs.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = as_generator(plan.rng if plan.rng is not None else 0)
        self.engine = None
        #: Count of stochastic stalls injected, per fault-class name.
        self.injected_stalls: dict = {}
        #: Engine tids removed by CrashStop faults.
        self.crashed_tids: List[int] = []
        #: (time, tid, duration) for every fired LockHolderStall.
        self.fired_stalls: List[tuple] = []

    def attach(self, engine) -> "FaultInjector":
        """Install on ``engine`` and register one-shot triggers."""
        if self.engine is not None:
            raise RuntimeError("FaultInjector is already attached")
        self.engine = engine
        engine.faults = self
        for fault in self.plan.triggers:
            if isinstance(fault, CrashStop):
                engine.schedule_control(
                    fault.at, lambda eng, f=fault: self._fire_crash(eng, f)
                )
            else:
                engine.schedule_control(
                    fault.at, lambda eng, f=fault: self._fire_stall(eng, f)
                )
        return self

    # -- trigger execution -------------------------------------------------

    def _fire_crash(self, engine, fault: CrashStop) -> None:
        tid = (
            fault.thread
            if isinstance(fault.thread, int)
            else engine.thread_by_name(fault.thread)
        )
        if tid is None or tid not in engine._threads:
            return  # victim already finished — nothing to kill
        engine.kill(tid, release_locks=fault.release_locks)
        self.crashed_tids.append(tid)

    def _fire_stall(self, engine, fault: LockHolderStall) -> None:
        best_tid, best_count = None, 0
        for tid in sorted(engine._threads):
            count = len(engine.locks_held_by(tid))
            if count >= fault.min_locks and count > best_count:
                best_tid, best_count = tid, count
        if best_tid is None:
            # Nobody holds enough locks right now; try again shortly —
            # unless every live thread is parked (a deadlock the engine
            # must be allowed to diagnose, not an injector spin).
            if len(engine._parked) < len(engine._threads):
                engine.schedule_control(
                    engine.now + fault.retry_every,
                    lambda eng, f=fault: self._fire_stall(eng, f),
                )
            return
        engine.stall(best_tid, fault.duration)
        self.fired_stalls.append((engine.now, best_tid, fault.duration))

    # -- per-resume hook -----------------------------------------------------

    def before_resume(self, engine, tid: int) -> float:
        """Extra stall cycles for this resume (0 = run normally)."""
        now = engine.now
        total = 0.0
        for fault in self.plan.stochastic:
            if not fault.start <= now < fault.stop:
                continue
            if isinstance(fault, LockHolderPreempt) and not engine.locks_held_by(tid):
                continue
            if self._rng.random() < fault.prob:
                total += fault.cycles
                key = type(fault).__name__
                self.injected_stalls[key] = self.injected_stalls.get(key, 0) + 1
        return total
