"""Workload drivers for the concurrency simulator.

The paper's throughput methodology (Section 5): prefill 10M elements,
then run threads that alternate ``insert`` and ``deleteMin`` for a fixed
duration; throughput is completed operations per unit time.  Here the
run length is a fixed operation count per thread and time is simulated
cycles, so throughput is reported in operations per megacycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Protocol

import numpy as np

from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.syscalls import Delay
from repro.utils.rngtools import SeedLike, as_generator, spawn_seeds


class ConcurrentPQModel(Protocol):
    """What a concurrent priority-queue model must expose to workloads."""

    def prefill(self, priorities) -> None:
        """Bulk-load elements before the timed run (zero simulated cost)."""

    def insert_op(self, tid: int, priority: int) -> Generator:
        """Generator performing one insert as simulated thread ``tid``."""

    def delete_min_op(self, tid: int) -> Generator:
        """Generator performing one deleteMin as simulated thread ``tid``."""


@dataclass
class ThroughputResult:
    """Outcome of one simulated throughput run."""

    n_threads: int
    total_ops: int
    sim_time: float
    #: Completed operations per million simulated cycles.
    throughput: float
    #: Failed try-lock ratio aggregated over the model's locks (if any).
    lock_failure_ratio: float = 0.0

    def __repr__(self) -> str:
        return (
            f"ThroughputResult(threads={self.n_threads}, ops={self.total_ops}, "
            f"Mcycles={self.sim_time / 1e6:.2f}, tput={self.throughput:.1f} ops/Mcycle)"
        )


class AlternatingWorkload:
    """Each thread alternates insert(random priority) / deleteMin.

    Parameters
    ----------
    model:
        The concurrent PQ model under test.
    n_threads:
        Number of simulated threads.
    ops_per_thread:
        Number of insert+delete *pairs* each thread performs.
    priority_range:
        Inserted priorities are uniform over ``[0, priority_range)``.
    rng:
        Root seed; each thread gets an independent stream.
    """

    def __init__(
        self,
        model: ConcurrentPQModel,
        n_threads: int,
        ops_per_thread: int,
        priority_range: int = 2**40,
        rng: SeedLike = None,
    ) -> None:
        if n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        if ops_per_thread <= 0:
            raise ValueError(f"ops_per_thread must be positive, got {ops_per_thread}")
        self.model = model
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.priority_range = priority_range
        self._thread_rngs = spawn_seeds(rng, n_threads)

    def spawn_on(self, engine: Engine) -> List[int]:
        """Spawn all worker threads; returns their thread ids."""
        return [
            engine.spawn(self._worker(k, engine), name=f"worker-{k}")
            for k in range(self.n_threads)
        ]

    def _worker(self, k: int, engine: Engine) -> Generator:
        # ``k`` (the worker index) serves as the model-level thread id;
        # lock/cell ownership inside the engine is tracked by engine tids
        # independently, so the two never need to coincide.
        rng = self._thread_rngs[k]
        completed = 0
        for _ in range(self.ops_per_thread):
            # Thread-local work between operations (argument marshalling,
            # loop bookkeeping) — keeps zero-cost artifacts out of the
            # interleaving.
            yield Delay(engine.cost.local_work)
            priority = int(rng.integers(self.priority_range))
            yield from self.model.insert_op(k, priority)
            completed += 1
            yield from self.model.delete_min_op(k)
            completed += 1
        return completed


class ProducerConsumerWorkload:
    """Dedicated producer and consumer threads (the split workload of the
    Gruber et al. benchmark framework the paper builds on).

    ``n_producers`` threads only insert; ``n_consumers`` only delete.
    Deletions that find the structure empty retry after a backoff, so
    every consumer completes exactly ``ops_per_thread`` successful
    deletions (sized against total production by the caller).
    """

    def __init__(
        self,
        model: ConcurrentPQModel,
        n_producers: int,
        n_consumers: int,
        ops_per_thread: int,
        priority_range: int = 2**40,
        rng: SeedLike = None,
    ) -> None:
        if n_producers <= 0 or n_consumers <= 0:
            raise ValueError(
                f"need positive producer/consumer counts, got {n_producers}/{n_consumers}"
            )
        if ops_per_thread <= 0:
            raise ValueError(f"ops_per_thread must be positive, got {ops_per_thread}")
        if n_producers * ops_per_thread < n_consumers * ops_per_thread:
            raise ValueError("production must cover consumption")
        self.model = model
        self.n_producers = n_producers
        self.n_consumers = n_consumers
        self.ops_per_thread = ops_per_thread
        self.priority_range = priority_range
        self._rngs = spawn_seeds(rng, n_producers + n_consumers)

    def spawn_on(self, engine: Engine) -> List[int]:
        """Spawn producers then consumers; returns all thread ids."""
        tids = []
        for k in range(self.n_producers):
            tids.append(engine.spawn(self._producer(k, engine), name=f"producer-{k}"))
        for k in range(self.n_consumers):
            tids.append(
                engine.spawn(
                    self._consumer(self.n_producers + k, engine), name=f"consumer-{k}"
                )
            )
        return tids

    def _producer(self, k: int, engine: Engine) -> Generator:
        rng = self._rngs[k]
        for _ in range(self.ops_per_thread):
            yield Delay(engine.cost.local_work)
            priority = int(rng.integers(self.priority_range))
            yield from self.model.insert_op(k, priority)
        return self.ops_per_thread

    def _consumer(self, k: int, engine: Engine) -> Generator:
        done = 0
        while done < self.ops_per_thread:
            yield Delay(engine.cost.local_work)
            result = yield from self.model.delete_min_op(k)
            if result is None:
                yield Delay(8 * engine.cost.local_work)  # empty: back off
                continue
            done += 1
        return done


def run_throughput_experiment(
    make_model: Callable[[Engine, np.random.Generator], ConcurrentPQModel],
    n_threads: int,
    ops_per_thread: int,
    prefill: int,
    cost_model: Optional[CostModel] = None,
    seed: SeedLike = None,
    priority_range: int = 2**40,
) -> ThroughputResult:
    """Build engine + model + workload, run to completion, summarize.

    ``make_model`` receives the engine and a dedicated RNG and returns
    the model.  ``prefill`` random-priority elements are bulk-loaded
    before the clock starts.
    """
    root = as_generator(seed)
    model_rng, prefill_rng, workload_rng = spawn_seeds(root, 3)
    engine = Engine(cost_model)
    model = make_model(engine, model_rng)
    if prefill:
        model.prefill(prefill_rng.integers(priority_range, size=prefill))
    workload = AlternatingWorkload(
        model, n_threads, ops_per_thread, priority_range=priority_range, rng=workload_rng
    )
    workload.spawn_on(engine)
    engine.run()
    total_ops = 2 * n_threads * ops_per_thread
    sim_time = max(engine.now, 1.0)
    failure = getattr(model, "lock_failure_ratio", None)
    return ThroughputResult(
        n_threads=n_threads,
        total_ops=total_ops,
        sim_time=sim_time,
        throughput=total_ops / (sim_time / 1e6),
        lock_failure_ratio=failure() if callable(failure) else 0.0,
    )
