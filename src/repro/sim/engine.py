"""The event-driven simulation engine.

Threads are generators yielding :mod:`~repro.sim.syscalls`; the engine
keeps a time-ordered event heap, resumes threads with syscall results,
charges costs from the :class:`~repro.sim.cost_model.CostModel`, and
maintains lock wait queues.  Everything is deterministic given the
spawned generators (ties broken by a monotonically increasing event
sequence number).

Robustness hooks (used by :mod:`~repro.sim.faults` and chaos tests):

* **crash-stop** — :meth:`Engine.kill` removes a thread mid-flight,
  optionally abandoning its held locks (the fault the paper's Appendix C
  counterexample abstracts);
* **progress watchdog** — a ``progress_budget`` aborts with
  :class:`LivelockError` diagnostics when no thread completes an
  operation (lock grant, CAS success, barrier release, thread finish)
  within the budget;
* **deadlock diagnostics** — :class:`DeadlockError` reports which
  threads hold and wait on which locks, including the wait cycle;
* **lock leases** — a :class:`~repro.sim.primitives.SimLock` with a
  ``lease`` lets the engine revoke a stalled holder when another thread
  requests the lock; revoked holders observe the loss via ``Release``
  (result ``False``), ``Holding``, or ``GuardedWrite``.

Observability hook (used by :mod:`repro.sanitizer`): an attached
:attr:`Engine.monitor` receives a typed event for every shared-memory
access, lock transition, fork, and finish, in linearization order —
see :meth:`Engine._notify` for the event vocabulary.  Lock history is
*complete*: every grant is eventually paired with exactly one
``release`` (normal release, or :meth:`Engine.kill` with
``release_locks=True``) or ``revoke`` (lease revocation) event, so
detectors can replay who held what, when, without gaps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.sim.cost_model import CostModel
from repro.sim.primitives import SimBarrier, SimCell, SimLock
from repro.sim.syscalls import (
    CAS,
    Acquire,
    BarrierWait,
    Delay,
    GuardedWrite,
    Holding,
    Read,
    Release,
    TryAcquire,
    Write,
    Yield,
)

#: Pseudo thread id for engine-internal control events (fault triggers).
CONTROL_TID = -1


@dataclass
class ThreadStats:
    """Lifecycle record for one simulated thread."""

    tid: int
    name: str
    spawned_at: float
    finished_at: Optional[float] = None
    result: Any = None
    resumes: int = 0
    #: True when the thread was removed by :meth:`Engine.kill` rather
    #: than returning normally.
    crashed: bool = False

    @property
    def finished(self) -> bool:
        """Whether the thread's generator has returned (or crashed)."""
        return self.finished_at is not None


class DeadlockError(RuntimeError):
    """Raised when no events remain but threads are parked on locks.

    Carries structured diagnostics: ``waits`` maps each parked thread's
    name to the resource it waits on, ``holds`` maps thread names to the
    lock names they hold, and ``cycle`` lists the thread names forming a
    wait cycle (empty if the stall is not cyclic, e.g. waiting on a
    crashed holder).
    """

    def __init__(
        self,
        message: str,
        waits: Optional[Dict[str, str]] = None,
        holds: Optional[Dict[str, List[str]]] = None,
        cycle: Optional[List[str]] = None,
    ) -> None:
        super().__init__(message)
        self.waits = waits or {}
        self.holds = holds or {}
        self.cycle = cycle or []


class LivelockError(RuntimeError):
    """Raised by the progress watchdog: simulated time advanced past the
    configured budget without any thread completing an operation."""


class Engine:
    """Deterministic discrete-event executor for simulated threads.

    Parameters
    ----------
    cost_model:
        Cycle costs charged per syscall (default :class:`CostModel`).
    progress_budget:
        Optional livelock watchdog: if no progress marker (thread
        finish, lock grant, CAS success, barrier release) occurs within
        this many cycles, :meth:`run` raises :class:`LivelockError`
        with diagnostics instead of spinning forever.

    Example
    -------
    >>> from repro.sim import Engine, Delay
    >>> def body():
    ...     yield Delay(100)
    ...     return "done"
    >>> eng = Engine()
    >>> tid = eng.spawn(body())
    >>> eng.run()
    >>> eng.stats[tid].result
    'done'
    >>> eng.now
    100.0
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        progress_budget: Optional[float] = None,
    ) -> None:
        if progress_budget is not None and progress_budget <= 0:
            raise ValueError(f"progress_budget must be positive, got {progress_budget}")
        self.cost = cost_model or CostModel()
        #: Current simulated time (cycles).
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._threads: Dict[int, Generator] = {}
        #: Per-thread lifecycle stats, indexed by tid.
        self.stats: Dict[int, ThreadStats] = {}
        self._next_tid = 0
        #: Threads parked on a lock's wait queue (tid -> lock).
        self._parked: Dict[int, SimLock] = {}
        #: Locks currently held, per thread (tid -> [locks]).
        self._holding: Dict[int, List[SimLock]] = {}
        #: Threads removed by :meth:`kill`; their queued events are dropped.
        self._dead: Set[int] = set()
        #: Deferred resumes from injected stalls (tid -> earliest resume).
        self._stalled_until: Dict[int, float] = {}
        self.events_processed = 0
        self.progress_budget = progress_budget
        self._last_progress = 0.0
        #: Optional fault injector (see :mod:`repro.sim.faults`).
        self.faults = None
        #: Optional event monitor (see :mod:`repro.sanitizer`): an object
        #: with ``record(kind, tid, time, obj, site, info)``, called for
        #: every memory access, lock transition, fork, and finish.
        self.monitor = None
        #: Thread currently being resumed (parent attribution for forks).
        self._current_tid: Optional[int] = None

    # -- thread management ------------------------------------------------

    def spawn(self, gen: Generator, name: str = "", start_time: Optional[float] = None) -> int:
        """Register a thread generator; it first runs at ``start_time``
        (default: current time).  Returns the thread id."""
        tid = self._next_tid
        self._next_tid += 1
        self._threads[tid] = gen
        self.stats[tid] = ThreadStats(
            tid=tid, name=name or f"thread-{tid}", spawned_at=self.now
        )
        self._schedule(self.now if start_time is None else start_time, tid, None)
        if self.monitor is not None:
            self._notify("fork", tid, None, parent=self._current_tid)
        return tid

    @property
    def live_threads(self) -> int:
        """Number of threads that have not finished."""
        return sum(1 for s in self.stats.values() if not s.finished)

    def thread_by_name(self, name: str) -> Optional[int]:
        """Look up a live thread id by its spawn name (``None`` if absent)."""
        for tid, stats in self.stats.items():
            if stats.name == name and not stats.finished:
                return tid
        return None

    def locks_held_by(self, tid: int) -> List[SimLock]:
        """The locks ``tid`` currently holds (empty for unknown threads)."""
        return list(self._holding.get(tid, ()))

    def kill(self, tid: int, release_locks: bool = False) -> None:
        """Crash-stop thread ``tid`` at the current instant.

        The generator is closed, pending events are discarded, and the
        thread is marked ``crashed`` in :attr:`stats`.  Held locks are
        handed off (as if released) when ``release_locks`` is true;
        otherwise they stay dead-held — the Appendix C failure mode,
        recoverable only through lock leases or reported by
        :class:`DeadlockError` diagnostics.
        """
        if tid not in self._threads:
            return
        gen = self._threads.pop(tid)
        gen.close()
        stats = self.stats[tid]
        stats.finished_at = self.now
        stats.crashed = True
        self._dead.add(tid)
        resource = self._parked.pop(tid, None)
        if resource is not None:
            queue = resource.waiters if isinstance(resource, SimLock) else resource.waiting
            try:
                queue.remove(tid)
            except ValueError:
                pass
        if release_locks:
            for lock in list(self._holding.get(tid, ())):
                lock.revoked.discard(tid)
                self._ungrant(lock, tid)
                if lock.held_by == tid:
                    self._pass_on_release(lock)
            self._holding.pop(tid, None)
        else:
            # Dead-held locks stay attributed to the crashed thread so
            # deadlock reports and auditors can name the culprit; lease
            # revocation (if enabled) reclaims them on demand.
            for lock in self._holding.get(tid, []):
                lock.revoked.discard(tid)
        if self.monitor is not None:
            self._notify("finish", tid, None, crashed=True)

    # -- main loop -----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap drains (or limits are hit).

        ``until`` stops once simulated time would exceed it (the pending
        event stays queued, so ``run`` can be called again).
        ``max_events`` bounds the number of thread resumes.

        Raises
        ------
        DeadlockError
            If no runnable events remain while threads are parked on
            locks (a genuine deadlock in the modelled algorithm).  The
            error reports who holds and waits on what, and the cycle.
        LivelockError
            If a ``progress_budget`` is configured and exceeded.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return
            time, _seq, tid, value = self._heap[0]
            if until is not None and time > until:
                return
            heapq.heappop(self._heap)
            if tid in self._dead:
                continue
            if tid == CONTROL_TID:
                self.now = max(self.now, time)
                if self._threads:
                    value(self)
                continue
            stall = self._stalled_until.get(tid)
            if stall is not None and time < stall:
                # An injected stall postponed this thread; its event
                # re-fires once the stall window closes.
                self._schedule(stall, tid, value)
                continue
            self.now = time
            if (
                self.progress_budget is not None
                and self.now - self._last_progress > self.progress_budget
            ):
                raise LivelockError(self._livelock_report())
            if self.faults is not None:
                delay = self.faults.before_resume(self, tid)
                if tid in self._dead:
                    continue
                if delay:
                    self._schedule(time + delay, tid, value)
                    continue
            self._resume(tid, value)
            processed += 1
            self.events_processed += 1
        if self._parked:
            waits, holds, cycle, message = self._deadlock_report()
            raise DeadlockError(message, waits=waits, holds=holds, cycle=cycle)

    # -- diagnostics ------------------------------------------------------------

    def _thread_label(self, tid: int) -> str:
        stats = self.stats.get(tid)
        if stats is None:
            return f"thread-{tid}"
        return f"{stats.name} [crashed]" if stats.crashed else stats.name

    def _deadlock_report(self) -> Tuple[Dict[str, str], Dict[str, List[str]], List[str], str]:
        """Build the structured who-holds/who-waits deadlock diagnosis."""
        waits: Dict[str, str] = {}
        holds: Dict[str, List[str]] = {}
        for tid, locks in self._holding.items():
            if locks:
                holds[self._thread_label(tid)] = [l.name or "<unnamed>" for l in locks]
        lines = []
        for tid in sorted(self._parked):
            name = self._thread_label(tid)
            resource = self._parked[tid]
            if isinstance(resource, SimLock):
                target = resource.name or "<unnamed>"
                holder = (
                    self._thread_label(resource.held_by)
                    if resource.held_by is not None
                    else "nobody"
                )
                waits[name] = target
                held = holds.get(self._thread_label(tid), [])
                suffix = f" while holding [{', '.join(held)}]" if held else ""
                lines.append(f"  {name} waits on {target!r} held by {holder}{suffix}")
            else:  # barrier
                target = f"barrier {resource.name or '<unnamed>'}"
                waits[name] = target
                lines.append(
                    f"  {name} waits on {target} "
                    f"({len(resource.waiting)}/{resource.parties} arrived)"
                )
        cycle = self._find_wait_cycle()
        message = "all events drained but threads parked:\n" + "\n".join(lines)
        if cycle:
            message += "\n  cycle: " + " -> ".join(cycle)
        return waits, holds, cycle, message

    def _find_wait_cycle(self) -> List[str]:
        """Follow parked-thread -> lock-holder edges to find a wait cycle."""
        for start in sorted(self._parked):
            chain, seen, tid = [], set(), start
            while tid is not None and tid not in seen:
                seen.add(tid)
                chain.append(tid)
                resource = self._parked.get(tid)
                tid = resource.held_by if isinstance(resource, SimLock) else None
            if tid is not None and tid in seen:
                cycle = chain[chain.index(tid):] + [tid]
                return [self._thread_label(t) for t in cycle]
        return []

    def _livelock_report(self) -> str:
        held = [
            f"{lock.name or '<unnamed>'} held by {self._thread_label(tid)}"
            for tid, locks in sorted(self._holding.items())
            for lock in locks
        ]
        return (
            f"no operation completed in {self.progress_budget:.0f} cycles "
            f"(last progress at {self._last_progress:.0f}, now {self.now:.0f}); "
            f"{self.live_threads} live threads, {len(self._parked)} parked"
            + (f"; locks: {', '.join(held)}" if held else "")
        )

    # -- internals -------------------------------------------------------------

    def _schedule(self, time: float, tid: int, value: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, tid, value))
        self._seq += 1

    def schedule_control(self, time: float, action: Callable[["Engine"], None]) -> None:
        """Run ``action(engine)`` at simulated ``time`` (fault triggers).

        Control events are dropped once no live threads remain, so a
        pending trigger never keeps a finished simulation running.
        """
        self._schedule(time, CONTROL_TID, action)

    def stall(self, tid: int, duration: float) -> None:
        """Defer thread ``tid``'s next resume by ``duration`` cycles
        (models an OS preemption of the thread, locks kept)."""
        if duration <= 0 or tid not in self._threads:
            return
        target = self.now + duration
        if target > self._stalled_until.get(tid, 0.0):
            self._stalled_until[tid] = target

    def _note_progress(self) -> None:
        self._last_progress = self.now

    # -- observability -----------------------------------------------------

    def _notify(self, kind: str, tid: int, obj: Any, **info: Any) -> None:
        """Report one event to the attached :attr:`monitor`.

        Event kinds: ``fork`` (info: ``parent``), ``finish`` (info:
        ``crashed``), ``read``, ``write``, ``cas`` (info: ``ok``),
        ``guarded_write`` (info: ``ok``, ``lock``), ``acquire``,
        ``release``, ``revoke`` (lease revocation — the holder-side end
        of the grant, emitted with the *stale holder's* tid),
        ``release_lost`` (a revoked holder's no-op ``Release``),
        ``barrier_arrive`` and ``barrier_release`` (info: ``waiters``).
        """
        mon = self.monitor
        if mon is not None:
            mon.record(kind, tid, self.now, obj, self._site(tid), info)

    def _site(self, tid: int) -> Optional[str]:
        """Source location (``file.py:line (func)``) of ``tid``'s current
        suspension point, following delegated ``yield from`` chains."""
        gen = self._threads.get(tid)
        while gen is not None:
            sub = getattr(gen, "gi_yieldfrom", None)
            if sub is None or not hasattr(sub, "gi_frame"):
                break
            gen = sub
        frame = getattr(gen, "gi_frame", None) if gen is not None else None
        if frame is None:
            return None
        code = frame.f_code
        base = code.co_filename.replace("\\", "/").rsplit("/", 1)[-1]
        return f"{base}:{frame.f_lineno} ({code.co_name})"

    def _resume(self, tid: int, value: Any) -> None:
        gen = self._threads[tid]
        stats = self.stats[tid]
        stats.resumes += 1
        self._current_tid = tid
        try:
            syscall = gen.send(value)
        except StopIteration as stop:
            stats.finished_at = self.now
            stats.result = stop.value
            del self._threads[tid]
            self._note_progress()
            if self.monitor is not None:
                self._notify("finish", tid, None, crashed=False)
            return
        finally:
            self._current_tid = None
        self._handle(tid, syscall)

    def _line_access(self, obj, tid: int, base_cost: float) -> float:
        """Account one access to ``obj``'s cache line; returns finish time.

        Cross-thread accesses pay the transfer penalty *and* queue behind
        any in-flight transfer (``busy_until``): a contended line admits
        roughly one ownership change per ``cache_transfer`` cycles, which
        is the serialization that caps hot-spot scalability.  Same-owner
        accesses are cheap and do not occupy the line.
        """
        cost = base_cost
        start = self.now
        foreign = obj.last_owner is not None and obj.last_owner != tid
        if foreign:
            start = max(start, obj.busy_until)
            cost += self.cost.cache_transfer
            obj.busy_until = start + self.cost.cache_transfer
        obj.last_owner = tid
        if isinstance(obj, SimCell):
            obj.accesses += 1
            if foreign:
                obj.transfers += 1
        return start + cost

    # -- lock bookkeeping --------------------------------------------------

    def _grant(self, lock: SimLock, tid: int) -> None:
        """Record that ``tid`` now holds ``lock``."""
        lock.held_by = tid
        lock.held_since = self.now
        lock.acquisitions += 1
        self._holding.setdefault(tid, []).append(lock)
        self._note_progress()
        if self.monitor is not None:
            self._notify("acquire", tid, lock)

    def _ungrant(self, lock: SimLock, tid: int, kind: str = "release") -> None:
        """Drop ``lock`` from ``tid``'s held set, reporting how the grant
        ended (``release`` for normal/kill releases, ``revoke`` for lease
        revocation) so every grant is paired with exactly one end event."""
        held = self._holding.get(tid)
        if held is not None:
            try:
                held.remove(lock)
            except ValueError:
                pass
        if self.monitor is not None:
            self._notify(kind, tid, lock)

    def _lease_expired(self, lock: SimLock) -> bool:
        return (
            lock.lease is not None
            and lock.held_by is not None
            and self.now - lock.held_since >= lock.lease
        )

    def _revoke(self, lock: SimLock) -> None:
        """Take the lock away from a lease-expired holder.

        The stale holder is remembered in ``lock.revoked`` so its
        eventual ``Release`` is treated as a benign no-op, and any
        ``Holding``/``GuardedWrite`` re-validation fails.  If waiters
        are queued, the head waiter is woken exactly as on release.
        """
        stale = lock.held_by
        lock.revoked.add(stale)
        lock.revocations += 1
        self._ungrant(lock, stale, kind="revoke")
        lock.held_by = None
        if lock.waiters:
            waiter = lock.waiters.popleft()
            del self._parked[waiter]
            self._grant(lock, waiter)
            finish = self._line_access(lock, waiter, self.cost.handoff)
            self._schedule(finish, waiter, None)

    def _pass_on_release(self, lock: SimLock) -> None:
        """Hand the lock to the head waiter, or mark it free."""
        if lock.waiters:
            waiter = lock.waiters.popleft()
            del self._parked[waiter]
            self._grant(lock, waiter)
            finish = self._line_access(lock, waiter, self.cost.handoff)
            self._schedule(finish, waiter, None)
        else:
            lock.held_by = None

    def _handle(self, tid: int, syscall: Any) -> None:
        cost = self.cost
        now = self.now
        if isinstance(syscall, Delay):
            if syscall.cycles < 0:
                raise ValueError(f"negative delay {syscall.cycles}")
            self._schedule(now + syscall.cycles, tid, None)
        elif isinstance(syscall, Yield):
            self._schedule(now, tid, None)
        elif isinstance(syscall, Read):
            cell = syscall.cell
            if self.monitor is not None:
                self._notify("read", tid, cell)
            finish = self._line_access(cell, tid, cost.read)
            self._schedule(finish, tid, cell.value)
        elif isinstance(syscall, Write):
            cell = syscall.cell
            if self.monitor is not None:
                self._notify("write", tid, cell)
            finish = self._line_access(cell, tid, cost.write)
            cell.value = syscall.value
            self._schedule(finish, tid, None)
        elif isinstance(syscall, GuardedWrite):
            cell = syscall.cell
            finish = self._line_access(cell, tid, cost.write)
            held = syscall.lock.held_by == tid
            if self.monitor is not None:
                self._notify("guarded_write", tid, cell, ok=held, lock=syscall.lock)
            if held:
                cell.value = syscall.value
            self._schedule(finish, tid, held)
        elif isinstance(syscall, CAS):
            cell = syscall.cell
            finish = self._line_access(cell, tid, cost.cas)
            success = cell.value == syscall.expected
            if self.monitor is not None:
                self._notify("cas", tid, cell, ok=success)
            if success:
                cell.value = syscall.new
                self._note_progress()
            self._schedule(finish, tid, success)
        elif isinstance(syscall, TryAcquire):
            lock = syscall.lock
            if self._lease_expired(lock):
                self._revoke(lock)
            if lock.held_by is None:
                finish = self._line_access(lock, tid, cost.lock_acquire)
                self._grant(lock, tid)
                self._schedule(finish, tid, True)
            else:
                # A failed try reads the (foreign, busy) lock word.
                lock.failed_tries += 1
                start = max(now, lock.busy_until)
                self._schedule(start + cost.try_fail, tid, False)
        elif isinstance(syscall, Acquire):
            lock = syscall.lock
            if self._lease_expired(lock):
                self._revoke(lock)
            if lock.held_by is None:
                finish = self._line_access(lock, tid, cost.lock_acquire)
                self._grant(lock, tid)
                self._schedule(finish, tid, None)
            else:
                lock.waiters.append(tid)
                self._parked[tid] = lock
        elif isinstance(syscall, Holding):
            lock = syscall.lock
            finish = self._line_access(lock, tid, cost.read)
            self._schedule(finish, tid, lock.held_by == tid)
        elif isinstance(syscall, BarrierWait):
            barrier = syscall.barrier
            if not isinstance(barrier, SimBarrier):
                raise TypeError(f"BarrierWait target is not a SimBarrier: {barrier!r}")
            barrier.waiting.append(tid)
            self._parked[tid] = barrier
            if self.monitor is not None:
                self._notify("barrier_arrive", tid, barrier)
            if len(barrier.waiting) == barrier.parties:
                # Last arriver releases the generation; everyone pays the
                # releasing store's transfer, the releaser a bit less.
                release_time = now + cost.handoff + cost.cache_transfer
                if self.monitor is not None:
                    self._notify(
                        "barrier_release", tid, barrier, waiters=list(barrier.waiting)
                    )
                for index, waiter in enumerate(barrier.waiting):
                    del self._parked[waiter]
                    self._schedule(release_time, waiter, index)
                barrier.waiting.clear()
                barrier.generation += 1
                self._note_progress()
        elif isinstance(syscall, Release):
            lock = syscall.lock
            if tid in lock.revoked:
                # The lease already took this lock away; releasing is a
                # benign no-op and reports the loss to the caller.
                lock.revoked.discard(tid)
                if self.monitor is not None:
                    self._notify("release_lost", tid, lock)
                self._schedule(now + cost.lock_release, tid, False)
            elif lock.held_by != tid:
                raise RuntimeError(
                    f"thread {tid} released lock {lock.name!r} held by {lock.held_by}"
                )
            else:
                self._ungrant(lock, tid)
                self._pass_on_release(lock)
                self._schedule(now + cost.lock_release, tid, True)
        else:
            raise TypeError(f"unknown syscall {syscall!r} from thread {tid}")

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now:.0f}, pending={len(self._heap)}, "
            f"threads={self.live_threads})"
        )
