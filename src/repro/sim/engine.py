"""The event-driven simulation engine.

Threads are generators yielding :mod:`~repro.sim.syscalls`; the engine
keeps a time-ordered event heap, resumes threads with syscall results,
charges costs from the :class:`~repro.sim.cost_model.CostModel`, and
maintains lock wait queues.  Everything is deterministic given the
spawned generators (ties broken by a monotonically increasing event
sequence number).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.cost_model import CostModel
from repro.sim.primitives import SimBarrier, SimCell, SimLock
from repro.sim.syscalls import (
    CAS,
    Acquire,
    BarrierWait,
    Delay,
    Read,
    Release,
    TryAcquire,
    Write,
    Yield,
)


@dataclass
class ThreadStats:
    """Lifecycle record for one simulated thread."""

    tid: int
    name: str
    spawned_at: float
    finished_at: Optional[float] = None
    result: Any = None
    resumes: int = 0

    @property
    def finished(self) -> bool:
        """Whether the thread's generator has returned."""
        return self.finished_at is not None


class DeadlockError(RuntimeError):
    """Raised when no events remain but threads are parked on locks."""


class Engine:
    """Deterministic discrete-event executor for simulated threads.

    Example
    -------
    >>> from repro.sim import Engine, Delay
    >>> def body():
    ...     yield Delay(100)
    ...     return "done"
    >>> eng = Engine()
    >>> tid = eng.spawn(body())
    >>> eng.run()
    >>> eng.stats[tid].result
    'done'
    >>> eng.now
    100.0
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost = cost_model or CostModel()
        #: Current simulated time (cycles).
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._threads: Dict[int, Generator] = {}
        #: Per-thread lifecycle stats, indexed by tid.
        self.stats: Dict[int, ThreadStats] = {}
        self._next_tid = 0
        #: Threads parked on a lock's wait queue (tid -> lock).
        self._parked: Dict[int, SimLock] = {}
        self.events_processed = 0

    # -- thread management ------------------------------------------------

    def spawn(self, gen: Generator, name: str = "", start_time: Optional[float] = None) -> int:
        """Register a thread generator; it first runs at ``start_time``
        (default: current time).  Returns the thread id."""
        tid = self._next_tid
        self._next_tid += 1
        self._threads[tid] = gen
        self.stats[tid] = ThreadStats(
            tid=tid, name=name or f"thread-{tid}", spawned_at=self.now
        )
        self._schedule(self.now if start_time is None else start_time, tid, None)
        return tid

    @property
    def live_threads(self) -> int:
        """Number of threads that have not finished."""
        return sum(1 for s in self.stats.values() if not s.finished)

    # -- main loop -----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap drains (or limits are hit).

        ``until`` stops once simulated time would exceed it (the pending
        event stays queued, so ``run`` can be called again).
        ``max_events`` bounds the number of thread resumes.

        Raises
        ------
        DeadlockError
            If no runnable events remain while threads are parked on
            locks (a genuine deadlock in the modelled algorithm).
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return
            time, _seq, tid, value = self._heap[0]
            if until is not None and time > until:
                return
            heapq.heappop(self._heap)
            self.now = time
            self._resume(tid, value)
            processed += 1
            self.events_processed += 1
        if self._parked:
            parked = ", ".join(self.stats[t].name for t in sorted(self._parked))
            raise DeadlockError(f"all events drained but threads parked: {parked}")

    # -- internals -------------------------------------------------------------

    def _schedule(self, time: float, tid: int, value: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, tid, value))
        self._seq += 1

    def _resume(self, tid: int, value: Any) -> None:
        gen = self._threads[tid]
        stats = self.stats[tid]
        stats.resumes += 1
        try:
            syscall = gen.send(value)
        except StopIteration as stop:
            stats.finished_at = self.now
            stats.result = stop.value
            del self._threads[tid]
            return
        self._handle(tid, syscall)

    def _line_access(self, obj, tid: int, base_cost: float) -> float:
        """Account one access to ``obj``'s cache line; returns finish time.

        Cross-thread accesses pay the transfer penalty *and* queue behind
        any in-flight transfer (``busy_until``): a contended line admits
        roughly one ownership change per ``cache_transfer`` cycles, which
        is the serialization that caps hot-spot scalability.  Same-owner
        accesses are cheap and do not occupy the line.
        """
        cost = base_cost
        start = self.now
        foreign = obj.last_owner is not None and obj.last_owner != tid
        if foreign:
            start = max(start, obj.busy_until)
            cost += self.cost.cache_transfer
            obj.busy_until = start + self.cost.cache_transfer
        obj.last_owner = tid
        if isinstance(obj, SimCell):
            obj.accesses += 1
            if foreign:
                obj.transfers += 1
        return start + cost

    def _handle(self, tid: int, syscall: Any) -> None:
        cost = self.cost
        now = self.now
        if isinstance(syscall, Delay):
            if syscall.cycles < 0:
                raise ValueError(f"negative delay {syscall.cycles}")
            self._schedule(now + syscall.cycles, tid, None)
        elif isinstance(syscall, Yield):
            self._schedule(now, tid, None)
        elif isinstance(syscall, Read):
            cell = syscall.cell
            finish = self._line_access(cell, tid, cost.read)
            self._schedule(finish, tid, cell.value)
        elif isinstance(syscall, Write):
            cell = syscall.cell
            finish = self._line_access(cell, tid, cost.write)
            cell.value = syscall.value
            self._schedule(finish, tid, None)
        elif isinstance(syscall, CAS):
            cell = syscall.cell
            finish = self._line_access(cell, tid, cost.cas)
            success = cell.value == syscall.expected
            if success:
                cell.value = syscall.new
            self._schedule(finish, tid, success)
        elif isinstance(syscall, TryAcquire):
            lock = syscall.lock
            if lock.held_by is None:
                finish = self._line_access(lock, tid, cost.lock_acquire)
                lock.held_by = tid
                lock.acquisitions += 1
                self._schedule(finish, tid, True)
            else:
                # A failed try reads the (foreign, busy) lock word.
                lock.failed_tries += 1
                start = max(now, lock.busy_until)
                self._schedule(start + cost.try_fail, tid, False)
        elif isinstance(syscall, Acquire):
            lock = syscall.lock
            if lock.held_by is None:
                finish = self._line_access(lock, tid, cost.lock_acquire)
                lock.held_by = tid
                lock.acquisitions += 1
                self._schedule(finish, tid, None)
            else:
                lock.waiters.append(tid)
                self._parked[tid] = lock
        elif isinstance(syscall, BarrierWait):
            barrier = syscall.barrier
            if not isinstance(barrier, SimBarrier):
                raise TypeError(f"BarrierWait target is not a SimBarrier: {barrier!r}")
            barrier.waiting.append(tid)
            self._parked[tid] = barrier
            if len(barrier.waiting) == barrier.parties:
                # Last arriver releases the generation; everyone pays the
                # releasing store's transfer, the releaser a bit less.
                release_time = now + cost.handoff + cost.cache_transfer
                for index, waiter in enumerate(barrier.waiting):
                    del self._parked[waiter]
                    self._schedule(release_time, waiter, index)
                barrier.waiting.clear()
                barrier.generation += 1
        elif isinstance(syscall, Release):
            lock = syscall.lock
            if lock.held_by != tid:
                raise RuntimeError(
                    f"thread {tid} released lock {lock.name!r} held by {lock.held_by}"
                )
            if lock.waiters:
                waiter = lock.waiters.popleft()
                del self._parked[waiter]
                lock.held_by = waiter
                lock.acquisitions += 1
                finish = self._line_access(lock, waiter, cost.handoff)
                self._schedule(finish, waiter, None)
            else:
                lock.held_by = None
            self._schedule(now + cost.lock_release, tid, None)
        else:
            raise TypeError(f"unknown syscall {syscall!r} from thread {tid}")

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now:.0f}, pending={len(self._heap)}, "
            f"threads={self.live_threads})"
        )
