"""The paper's primary contribution: the (1+beta) MultiQueue process.

Contents
--------
:class:`~repro.core.multiqueue.MultiQueue`
    The user-facing relaxed priority queue (sequential semantics).
:class:`~repro.core.process.SequentialProcess`
    The labelled random process of Section 3, instrumented with exact
    rank-cost accounting.
:class:`~repro.core.exponential.ExponentialProcess`
    The continuous-label analysis device of Section 4, plus the
    rank-equivalence coupling of Theorem 2.
:mod:`~repro.core.potential`
    The Gamma = Phi + Psi potential of Theorem 3 and drift estimation.
:class:`~repro.core.single_choice.SingleChoiceProcess`
    The divergent one-choice baseline of Theorem 6.
:class:`~repro.core.round_robin.RoundRobinProcess`
    The round-robin-insertion variant whose removals reduce exactly to
    classic two-choice balls-into-bins (Appendix A).
"""

from repro.core.records import RankTrace, RemovalRecord
from repro.core.policies import (
    biased_insert_probs,
    effective_gamma,
    removal_rank_probabilities,
    uniform_insert_probs,
)
from repro.core.rank import RankOracle
from repro.core.multiqueue import MultiQueue
from repro.core.process import SequentialProcess
from repro.core.exponential import ExponentialProcess, coupled_removal_costs
from repro.core.potential import (
    PotentialTracker,
    gamma_potential,
    phi_potential,
    psi_potential,
    recommended_alpha,
    tail_bin_counts,
    tail_decay_estimate,
)
from repro.core.dchoice import DChoiceProcess
from repro.core.general import GeneralPriorityProcess, priority_sequence
from repro.core.exact import (
    exact_mean_rank,
    exact_removal_rank_distribution,
    total_variation,
)
from repro.core.single_choice import SingleChoiceProcess
from repro.core.round_robin import RoundRobinProcess

__all__ = [
    "RankTrace",
    "RemovalRecord",
    "uniform_insert_probs",
    "biased_insert_probs",
    "effective_gamma",
    "removal_rank_probabilities",
    "RankOracle",
    "MultiQueue",
    "SequentialProcess",
    "ExponentialProcess",
    "coupled_removal_costs",
    "PotentialTracker",
    "phi_potential",
    "psi_potential",
    "gamma_potential",
    "recommended_alpha",
    "tail_bin_counts",
    "tail_decay_estimate",
    "SingleChoiceProcess",
    "RoundRobinProcess",
    "DChoiceProcess",
    "GeneralPriorityProcess",
    "priority_sequence",
    "exact_removal_rank_distribution",
    "exact_mean_rank",
    "total_variation",
]
