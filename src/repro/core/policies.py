"""Insertion distributions and removal-choice policies (Section 3).

The process is parameterized by

* an insertion distribution ``pi`` over the ``n`` queues, with bounded
  bias: there is ``gamma in (0, 1)`` such that for every queue ``i``,
  ``1 - gamma <= 1 / (n * pi_i) <= 1 + gamma``;
* a two-choice probability ``beta``: each removal flips a beta-coin and
  inspects two uniformly random queues (with replacement — this matches
  the paper's ``p_i`` formula) on heads, one on tails.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rngtools import SeedLike, as_generator


def uniform_insert_probs(n: int) -> np.ndarray:
    """The unbiased insertion distribution: ``pi_i = 1/n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return np.full(n, 1.0 / n)


def biased_insert_probs(
    n: int,
    gamma: float,
    pattern: str = "two-point",
    rng: SeedLike = None,
) -> np.ndarray:
    """An insertion distribution with bias exactly bounded by ``gamma``.

    Patterns
    --------
    ``"two-point"``
        Half the queues are maximally *cold* (``n*pi = 1/(1+gamma)``), the
        other half compensatingly *hot*.  This is the adversarial shape
        used in the robustness benches: it maximizes the imbalance the
        bound permits.
    ``"linear"``
        ``n*pi`` ramps linearly from ``1/(1+gamma)`` up, then the vector
        is normalized (the realized bias is re-checked to stay within
        ``gamma``).
    ``"random"``
        ``n*pi`` drawn uniformly from ``[1/(1+gamma), 1/(1-gamma)]`` and
        normalized, rejection-sampled until the realized bias is within
        ``gamma``.

    Returns a probability vector summing to 1 and satisfying
    ``1 - gamma <= 1/(n*pi_i) <= 1 + gamma`` for all ``i``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= gamma < 1:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    if gamma == 0:
        return uniform_insert_probs(n)

    if pattern == "two-point":
        cold = 1.0 / (n * (1.0 + gamma))
        k = n // 2
        # The remaining n-k queues share the leftover mass equally.
        hot = (1.0 - k * cold) / (n - k)
        pi = np.empty(n)
        pi[:k] = cold
        pi[k:] = hot
    elif pattern == "linear":
        lo = 1.0 / (1.0 + gamma)
        hi = 1.0 / (1.0 - gamma)
        ramp = np.linspace(lo, hi, n)
        pi = ramp / ramp.sum()
        # Normalization can push the realized bias past gamma (the ramp
        # mean is below 1); blend toward uniform until it fits.
        uniform = np.full(n, 1.0 / n)
        for _ in range(64):
            realized = effective_gamma(pi)
            if realized <= gamma + 1e-12:
                break
            pi = uniform + (pi - uniform) * min(0.95, gamma / realized)
    elif pattern == "random":
        gen = as_generator(rng)
        lo = 1.0 / (1.0 + gamma)
        hi = 1.0 / (1.0 - gamma)
        for _ in range(1000):
            raw = gen.uniform(lo, hi, size=n)
            pi = raw / raw.sum()
            if effective_gamma(pi) <= gamma + 1e-12:
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("failed to sample a distribution within gamma")
    else:
        raise ValueError(f"unknown bias pattern {pattern!r}")

    realized = effective_gamma(pi)
    if realized > gamma + 1e-9:
        raise AssertionError(
            f"internal error: realized bias {realized:.4f} exceeds gamma={gamma}"
        )
    return pi


def effective_gamma(pi: np.ndarray) -> float:
    """The smallest ``gamma`` for which ``pi`` satisfies the bias bound.

    Computed as ``max_i |deviation|`` where the paper's constraint is
    ``1 - gamma <= 1/(n*pi_i) <= 1 + gamma``.
    """
    pi = np.asarray(pi, dtype=float)
    n = len(pi)
    if n == 0:
        raise ValueError("empty distribution")
    if not np.isclose(pi.sum(), 1.0):
        raise ValueError(f"probabilities must sum to 1, got {pi.sum()}")
    if np.any(pi <= 0):
        raise ValueError("all probabilities must be positive")
    inv = 1.0 / (n * pi)
    return float(max(inv.max() - 1.0, 1.0 - inv.min()))


def removal_rank_probabilities(n: int, beta: float) -> np.ndarray:
    """The probability ``p_i`` that the rank-``i`` queue is removed from.

    With queues sorted by increasing top label, the paper derives (Sec. 4.2)

        p_i = (1-beta)/n + beta * [ (2/n)(1 - (i-1)/n) - 1/n^2 ]

    which corresponds to sampling two queues uniformly *with replacement*
    and taking the better one.  Exposed for tests and for the potential
    analysis; sums to 1 exactly.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= beta <= 1:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    i = np.arange(1, n + 1, dtype=float)
    two_choice = (2.0 / n) * (1.0 - (i - 1.0) / n) - 1.0 / n**2
    return (1.0 - beta) / n + beta * two_choice


class RemovalChooser:
    """Draws the queue choices for each removal of a (1+beta) process.

    Centralizing the draws keeps the *coupling* between the original and
    exponential processes exact: both are driven by the same chooser
    stream, so they see identical beta-coins and queue indices
    (Section 4's coupling argument, operationalized).
    """

    def __init__(self, n: int, beta: float, rng: SeedLike = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.n = n
        self.beta = beta
        self._rng = as_generator(rng)

    def draw(self):
        """Return ``(two_choice, i, j)``; ``j`` is ``None`` on a tails coin.

        The two indices are sampled independently (with replacement),
        matching the ``p_i`` formula of the paper.
        """
        rng = self._rng
        two = self.beta >= 1.0 or (self.beta > 0.0 and rng.random() < self.beta)
        i = int(rng.integers(self.n))
        if not two:
            return False, i, None
        j = int(rng.integers(self.n))
        return True, i, j

    def choose_insert_queue(self, pi: Optional[np.ndarray]) -> int:
        """Sample a queue index from the insertion distribution ``pi``.

        ``pi=None`` means uniform (avoids the cost of a weighted draw).
        """
        if pi is None:
            return int(self._rng.integers(self.n))
        return int(self._rng.choice(self.n, p=pi))
