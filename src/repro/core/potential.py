"""The potential functions of Theorem 3 and empirical drift verification.

With ``x_i = w_i / n`` the normalized top weight of bin ``i``,
``mu = mean(x)`` and ``y_i = x_i - mu``, the paper defines

    Phi(t)   = sum_i exp(+alpha * y_i)
    Psi(t)   = sum_i exp(-alpha * y_i)
    Gamma(t) = Phi(t) + Psi(t)

and proves (Lemma 2 / Lemma 3) that ``Gamma`` behaves like a
supermartingale above an ``O(n)`` threshold, hence ``E[Gamma(t)] <= C n``
for all ``t``.  This module evaluates the potentials, chooses ``alpha``
per the paper's parameter inequalities (1)-(2), and estimates the drift
``E[Delta Gamma | Gamma]`` empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.exponential import ExponentialTopProcess


def _normalized_deviation(weights: np.ndarray) -> np.ndarray:
    """Return ``y = w/n - mean(w/n)`` for a vector of top weights."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or len(w) == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    x = w / len(w)
    return x - x.mean()


def phi_potential(weights: np.ndarray, alpha: float) -> float:
    """``Phi = sum exp(alpha * y_i)`` — penalizes bins far *above* the mean."""
    y = _normalized_deviation(weights)
    return float(np.exp(alpha * y).sum())


def psi_potential(weights: np.ndarray, alpha: float) -> float:
    """``Psi = sum exp(-alpha * y_i)`` — penalizes bins far *below* the mean."""
    y = _normalized_deviation(weights)
    return float(np.exp(-alpha * y).sum())


def gamma_potential(weights: np.ndarray, alpha: float) -> float:
    """``Gamma = Phi + Psi``, the paper's global potential."""
    y = _normalized_deviation(weights)
    e = np.exp(alpha * y)
    return float((e + 1.0 / e).sum())


def recommended_alpha(beta: float, gamma: float = 0.0, c: float = 2.0) -> float:
    """The largest ``alpha`` satisfying the paper's inequality (2).

    The analysis requires ``delta <= epsilon = beta/16`` where (eq. 1)

        1 + delta = (1 + gamma + c*alpha*(1+gamma)^2)
                    / (1 - gamma - c*alpha*(1+gamma)^2).

    Solving ``delta = epsilon`` for ``alpha`` gives

        alpha = (epsilon - gamma*(2 + epsilon)) / (c * (2 + epsilon) * (1+gamma)^2),

    positive exactly when ``beta = Omega(gamma)`` holds quantitatively
    (``epsilon > 2*gamma / (1 - gamma...)``); otherwise a ``ValueError``
    explains that the bias is too large for this ``beta``.
    """
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    if not 0 <= gamma < 1:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    eps = beta / 16.0
    numerator = eps - gamma * (2.0 + eps)
    if numerator <= 0:
        raise ValueError(
            f"insertion bias gamma={gamma} too large for beta={beta}: the "
            f"analysis needs beta = Omega(gamma) (epsilon={eps:.4f} <= "
            f"gamma*(2+epsilon)={gamma * (2 + eps):.4f})"
        )
    return numerator / (c * (2.0 + eps) * (1.0 + gamma) ** 2)


def tail_bin_counts(weights: np.ndarray, s: float) -> "tuple[int, int]":
    """The Lemma 5 striping quantities ``(b_{>s}, b_{<-s})``.

    ``b_{>s}`` counts bins whose normalized top weight exceeds the mean
    by more than ``s``; ``b_{<-s}`` counts bins more than ``s`` below.
    Lemma 5 bounds both expectations by ``n * C * exp(-alpha * s)``; the
    tail bench estimates the decay rate empirically.
    """
    y = _normalized_deviation(weights)
    return int((y > s).sum()), int((y < -s).sum())


def tail_decay_estimate(
    process: ExponentialTopProcess,
    steps: int,
    s_values: "Sequence[float]",
    sample_every: int = 50,
) -> "np.ndarray":
    """Mean ``b_{>s} + b_{<-s}`` at each ``s`` along a run.

    Lemma 5 predicts geometric decay in ``s`` (rate ``alpha``); the
    returned averages let callers fit the decay.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    s_values = list(s_values)
    totals = np.zeros(len(s_values))
    samples = 0
    for step in range(1, steps + 1):
        process.step()
        if step % sample_every == 0:
            w = process.top_weights
            y = _normalized_deviation(w)
            for k, s in enumerate(s_values):
                totals[k] += int((y > s).sum()) + int((y < -s).sum())
            samples += 1
    if samples == 0:
        raise ValueError("steps too small for any sample")
    return totals / samples


@dataclass
class PotentialSeries:
    """Time series of the potentials along one run."""

    steps: np.ndarray
    phi: np.ndarray
    psi: np.ndarray

    @property
    def gamma(self) -> np.ndarray:
        """``Gamma(t) = Phi(t) + Psi(t)`` at each sample."""
        return self.phi + self.psi

    def gamma_over_n(self, n: int) -> np.ndarray:
        """``Gamma(t)/n`` — Theorem 3 says its mean is O(1)."""
        return self.gamma / n

    def summary(self) -> dict:
        """Headline statistics for table printing."""
        g = self.gamma
        return {
            "samples": len(self.steps),
            "mean_gamma": float(g.mean()),
            "max_gamma": float(g.max()),
            "final_gamma": float(g[-1]),
        }


@dataclass
class DriftEstimate:
    """Empirical conditional drift of Gamma around a threshold."""

    threshold: float
    mean_drift_above: float
    mean_drift_below: float
    samples_above: int
    samples_below: int


class PotentialTracker:
    """Tracks ``Phi/Psi/Gamma`` along an :class:`ExponentialTopProcess` run.

    Parameters
    ----------
    process:
        The infinite-supply exponential process to advance.
    alpha:
        Potential parameter; default follows :func:`recommended_alpha`
        for the process's ``beta`` (with ``gamma=0``).
    """

    def __init__(
        self, process: ExponentialTopProcess, alpha: Optional[float] = None
    ) -> None:
        self.process = process
        if alpha is None:
            alpha = recommended_alpha(process.beta if process.beta > 0 else 1.0)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def run(self, steps: int, sample_every: int = 1) -> PotentialSeries:
        """Advance ``steps`` removals, sampling potentials periodically."""
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        ts, phis, psis = [], [], []
        for step in range(1, steps + 1):
            self.process.step()
            if step % sample_every == 0:
                w = self.process.top_weights
                y = _normalized_deviation(w)
                e = np.exp(self.alpha * y)
                ts.append(self.process.steps)
                phis.append(float(e.sum()))
                psis.append(float((1.0 / e).sum()))
        return PotentialSeries(
            steps=np.asarray(ts, dtype=np.int64),
            phi=np.asarray(phis, dtype=float),
            psi=np.asarray(psis, dtype=float),
        )

    def binned_drift(
        self, steps: int, n_bins: int = 8
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The drift *curve*: ``E[Delta Gamma | Gamma]`` binned by Gamma.

        Lemma 2's qualitative content is that the curve crosses zero:
        positive (or flat) drift at small Gamma, negative drift once
        Gamma exceeds the O(n) threshold.  Returns
        ``(bin_centers, mean_drifts, counts)``; empty bins carry NaN.
        """
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        gammas = np.empty(steps)
        deltas = np.empty(steps)
        prev = gamma_potential(self.process.top_weights, self.alpha)
        for k in range(steps):
            self.process.step()
            cur = gamma_potential(self.process.top_weights, self.alpha)
            gammas[k] = prev
            deltas[k] = cur - prev
            prev = cur
        edges = np.quantile(gammas, np.linspace(0.0, 1.0, n_bins + 1))
        edges[-1] += 1e-9
        centers = np.full(n_bins, np.nan)
        means = np.full(n_bins, np.nan)
        counts = np.zeros(n_bins, dtype=np.int64)
        for b in range(n_bins):
            mask = (gammas >= edges[b]) & (gammas < edges[b + 1])
            counts[b] = int(mask.sum())
            if counts[b]:
                centers[b] = float(gammas[mask].mean())
                means[b] = float(deltas[mask].mean())
        return centers, means, counts

    def drift_estimate(self, steps: int, threshold: Optional[float] = None) -> DriftEstimate:
        """Estimate ``E[Delta Gamma | Gamma above/below threshold]``.

        Lemma 2 predicts negative conditional drift once ``Gamma``
        exceeds an ``O(n)`` threshold.  Default threshold: ``4n`` (the
        supermartingale region comfortably above ``Gamma >= 2n``, the
        AM-GM floor of the potential).
        """
        n = self.process.n_queues
        if threshold is None:
            threshold = 4.0 * n
        above_sum = below_sum = 0.0
        above_cnt = below_cnt = 0
        prev = gamma_potential(self.process.top_weights, self.alpha)
        for _ in range(steps):
            self.process.step()
            cur = gamma_potential(self.process.top_weights, self.alpha)
            delta = cur - prev
            if prev > threshold:
                above_sum += delta
                above_cnt += 1
            else:
                below_sum += delta
                below_cnt += 1
            prev = cur
        return DriftEstimate(
            threshold=threshold,
            mean_drift_above=above_sum / above_cnt if above_cnt else float("nan"),
            mean_drift_below=below_sum / below_cnt if below_cnt else float("nan"),
            samples_above=above_cnt,
            samples_below=below_cnt,
        )
