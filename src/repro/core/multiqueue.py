"""The MultiQueue: a relaxed concurrent-style priority queue (sequential).

This is the user-facing data structure distilled from Rihani, Sanders
and Dementiev's MultiQueue and the paper's (1+beta) refinement:

* ``insert`` pushes into one of ``n`` underlying sequential priority
  queues chosen at random (optionally with a biased distribution);
* ``delete_min`` flips a beta-coin — on heads it inspects **two**
  uniformly random queues and pops the better top element, on tails it
  pops from a single random queue.

The semantics are *relaxed*: ``delete_min`` returns an element whose
rank among all present elements is small in expectation (``O(n/beta^2)``
by Theorem 1) but not necessarily 1.  Concurrency is modelled separately
in :mod:`repro.concurrent`; this class provides the exact sequential
semantics those models linearize to.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.pqueues import BinaryHeap, Entry, PriorityQueue, QueueEmptyError
from repro.utils.rngtools import SeedLike, as_generator

#: After this many failed random probes, delete_min falls back to a
#: linear scan for a non-empty queue (guarantees progress when the
#: structure is nearly empty).
_MAX_PROBES = 64


class MultiQueue:
    """Relaxed priority queue built from ``n`` sequential priority queues.

    Parameters
    ----------
    n_queues:
        Number of underlying queues.  Practical deployments use
        ``c * threads`` for a small constant ``c`` (the paper uses 2).
    beta:
        Probability that a removal uses two choices; ``beta=1`` is the
        original MultiQueue, ``beta=0`` the divergent single-choice
        strategy.
    queue_factory:
        Zero-argument callable producing an empty
        :class:`~repro.pqueues.protocol.PriorityQueue`.
    insert_probs:
        Optional biased insertion distribution over queues (length
        ``n_queues``, sums to 1).  ``None`` means uniform.
    rng:
        Seed or generator for all random choices.

    Example
    -------
    >>> mq = MultiQueue(4, beta=1.0, rng=7)
    >>> for x in [5, 3, 9, 1]:
    ...     mq.insert(x)
    >>> entry = mq.delete_min()
    >>> entry.priority in (1, 3, 5, 9)
    True
    """

    def __init__(
        self,
        n_queues: int,
        beta: float = 1.0,
        queue_factory: Callable[[], PriorityQueue] = BinaryHeap,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self._queues: List[PriorityQueue] = [queue_factory() for _ in range(n_queues)]
        self._beta = beta
        self._rng = as_generator(rng)
        self._size = 0
        if insert_probs is not None:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            if not np.isclose(probs.sum(), 1.0):
                raise ValueError(f"insert_probs must sum to 1, got {probs.sum()}")
            self._cum_probs: Optional[np.ndarray] = np.cumsum(probs)
        else:
            self._cum_probs = None

    # -- properties ------------------------------------------------------

    @property
    def n_queues(self) -> int:
        """Number of underlying sequential queues."""
        return len(self._queues)

    @property
    def beta(self) -> float:
        """The two-choice probability."""
        return self._beta

    @property
    def queues(self) -> List[PriorityQueue]:
        """The underlying queues (read-only by convention)."""
        return self._queues

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def queue_sizes(self) -> List[int]:
        """Sizes of each underlying queue."""
        return [len(q) for q in self._queues]

    def top_entries(self) -> List[Optional[Entry]]:
        """Top entry of each queue (``None`` for empty queues)."""
        return [q.top_or_none() for q in self._queues]

    # -- operations -------------------------------------------------------

    def insert(self, priority: Any, item: Any = None) -> int:
        """Insert ``(priority, item)`` into a randomly chosen queue.

        Returns the index of the queue inserted into.
        """
        idx = self._choose_insert_queue()
        self._queues[idx].push(priority, item)
        self._size += 1
        return idx

    def delete_min(self) -> Entry:
        """Remove a small-rank element per the (1+beta) two-choice rule.

        Raises
        ------
        QueueEmptyError
            If the whole MultiQueue is empty.
        """
        entry, _queue = self.delete_min_traced()
        return entry

    def delete_min_traced(self) -> "tuple[Entry, int]":
        """Like :meth:`delete_min` but also returns the queue index used."""
        if self._size == 0:
            raise QueueEmptyError("delete_min on empty MultiQueue")
        rng = self._rng
        n = len(self._queues)
        two = self._beta >= 1.0 or (self._beta > 0.0 and rng.random() < self._beta)
        for _ in range(_MAX_PROBES):
            i = int(rng.integers(n))
            if two:
                j = int(rng.integers(n))
                idx = self._better_of(i, j)
            else:
                idx = i if len(self._queues[i]) else None
            if idx is not None:
                self._size -= 1
                return self._queues[idx].pop(), idx
        # Nearly empty structure: scan deterministically for progress.
        for idx, q in enumerate(self._queues):
            if len(q):
                self._size -= 1
                return q.pop(), idx
        raise QueueEmptyError("delete_min on empty MultiQueue")  # pragma: no cover

    def insert_many(self, priorities) -> None:
        """Insert a batch of priorities (payloads default to priorities)."""
        for priority in priorities:
            self.insert(priority)

    def delete_min_many(self, count: int) -> "List[Entry]":
        """Perform ``count`` relaxed deletions; returns the entries.

        Stops early (shorter list) if the structure empties.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        out: List[Entry] = []
        for _ in range(count):
            if self._size == 0:
                break
            out.append(self.delete_min())
        return out

    def peek_best(self) -> Entry:
        """Exact minimum across all queues (a full scan; for inspection).

        Not part of the relaxed fast path — it exists so callers and
        tests can measure the rank error of :meth:`delete_min`.
        """
        best: Optional[Entry] = None
        for q in self._queues:
            top = q.top_or_none()
            if top is not None and (best is None or top.priority < best.priority):
                best = top
        if best is None:
            raise QueueEmptyError("peek_best on empty MultiQueue")
        return best

    # -- internals ---------------------------------------------------------

    def _choose_insert_queue(self) -> int:
        if self._cum_probs is None:
            return int(self._rng.integers(len(self._queues)))
        return int(np.searchsorted(self._cum_probs, self._rng.random(), side="right"))

    def _better_of(self, i: int, j: int) -> Optional[int]:
        """Index (of ``i``/``j``) with the smaller top; ``None`` if both empty."""
        qi, qj = self._queues[i], self._queues[j]
        ti = qi.top_or_none()
        tj = qj.top_or_none()
        if ti is None and tj is None:
            return None
        if ti is None:
            return j
        if tj is None:
            return i
        return i if ti.priority <= tj.priority else j

    def __repr__(self) -> str:
        return (
            f"MultiQueue(n_queues={self.n_queues}, beta={self._beta}, "
            f"size={self._size})"
        )
