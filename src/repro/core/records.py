"""Removal records and rank traces produced by process runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class RemovalRecord:
    """One removal step of a process.

    Attributes
    ----------
    step:
        0-based removal index within the run.
    label:
        The label (or global rank, for the exponential process) removed.
    rank:
        Rank of the removed element among elements present *at the moment
        of removal* (1-based; 1 means the optimal choice).
    queue:
        Index of the queue removed from.
    two_choice:
        Whether this step used two choices (``True``) or one (``False``)
        — the beta coin of the (1+beta) process.
    """

    step: int
    label: int
    rank: int
    queue: int
    two_choice: bool


@dataclass
class SampledRun:
    """A steady-state run with periodic snapshots of the top-rank profile.

    Attributes
    ----------
    trace:
        Per-removal rank costs (as in :class:`RankTrace`).
    sample_steps:
        Removal-step indices at which the queue tops were snapshotted.
    max_top_ranks:
        ``max_i rank(top_i)`` at each sample — the Corollary 1 quantity.
    mean_top_ranks:
        Average top rank across queues at each sample.
    """

    trace: "RankTrace"
    sample_steps: "np.ndarray"
    max_top_ranks: "np.ndarray"
    mean_top_ranks: "np.ndarray"


class RankTrace:
    """An append-only trace of removal ranks with summary statistics.

    The trace stores the rank paid at each removal step.  Summary
    accessors are vectorized over an internal numpy array; appends are
    O(1) amortized.
    """

    def __init__(self, ranks: Optional[Iterable[int]] = None) -> None:
        self._ranks: List[int] = list(ranks) if ranks is not None else []
        self._frozen: Optional[np.ndarray] = None

    def append(self, rank: int) -> None:
        """Record the rank paid by one removal."""
        self._ranks.append(rank)
        self._frozen = None

    def extend(self, ranks: Iterable[int]) -> None:
        """Record several removal ranks at once."""
        self._ranks.extend(ranks)
        self._frozen = None

    @property
    def ranks(self) -> np.ndarray:
        """All recorded ranks as an immutable-by-convention numpy array."""
        if self._frozen is None:
            self._frozen = np.asarray(self._ranks, dtype=np.int64)
        return self._frozen

    def __len__(self) -> int:
        return len(self._ranks)

    def __getitem__(self, idx):
        return self._ranks[idx]

    # -- summary statistics ---------------------------------------------

    def mean_rank(self) -> float:
        """Average rank over the whole trace (the paper's 'average cost')."""
        if not self._ranks:
            raise ValueError("empty trace has no mean rank")
        return float(self.ranks.mean())

    def max_rank(self) -> int:
        """Worst rank paid anywhere in the trace."""
        if not self._ranks:
            raise ValueError("empty trace has no max rank")
        return int(self.ranks.max())

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of ranks (e.g. ``q=0.99`` for tail cost)."""
        if not self._ranks:
            raise ValueError("empty trace has no quantiles")
        return float(np.quantile(self.ranks, q))

    def windowed_means(self, window: int) -> np.ndarray:
        """Non-overlapping window means — rank cost as a function of time.

        Used to verify the *time-uniformity* of Theorem 1: for the
        two-choice process these should stay flat; for the single-choice
        process they grow like ``sqrt(t)``.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        r = self.ranks
        usable = (len(r) // window) * window
        if usable == 0:
            return np.empty(0, dtype=float)
        return r[:usable].reshape(-1, window).mean(axis=1)

    def windowed_maxes(self, window: int) -> np.ndarray:
        """Non-overlapping window maxima of the rank series."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        r = self.ranks
        usable = (len(r) // window) * window
        if usable == 0:
            return np.empty(0, dtype=float)
        return r[:usable].reshape(-1, window).max(axis=1)

    def summary(self) -> dict:
        """A dict of the headline statistics, for table printing."""
        from repro.analysis.stats import rank_summary

        if not self._ranks:
            raise ValueError("empty trace has no summary")
        return rank_summary(self.ranks)

    @staticmethod
    def merge(traces: Sequence["RankTrace"]) -> "RankTrace":
        """Concatenate several traces (e.g. across seeds) into one."""
        merged = RankTrace()
        for t in traces:
            merged.extend(t._ranks)
        return merged

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` artifact."""
        np.savez_compressed(path, ranks=self.ranks)

    @staticmethod
    def load(path) -> "RankTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return RankTrace(data["ranks"].tolist())

    def __repr__(self) -> str:
        if not self._ranks:
            return "RankTrace(empty)"
        return (
            f"RankTrace(n={len(self)}, mean={self.mean_rank():.2f}, "
            f"max={self.max_rank()})"
        )
