"""The divergent single-choice process (Theorem 6).

If every step inserts into a uniformly random queue *and* removes from a
uniformly random queue (no second choice), the expected max rank grows
as ``Omega(sqrt(t * n * log n))`` — the process has no stationary rank
guarantee.  This module is the empirical counterpart: it is exactly
:class:`~repro.core.process.SequentialProcess` with ``beta = 0``, plus a
helper that records the max-top-rank growth curve for the divergence
bench to fit a ``sqrt(t)`` law against.
"""

from __future__ import annotations

from repro.core.process import SequentialProcess
from repro.core.records import SampledRun
from repro.utils.rngtools import SeedLike


class SingleChoiceProcess(SequentialProcess):
    """Long-lived uniform-insert / uniform-remove process.

    Example
    -------
    >>> proc = SingleChoiceProcess(8, capacity=10_000, rng=1)
    >>> run = proc.run_steady_state_sampled(1_000, 4_000, sample_every=500)
    >>> len(run.max_top_ranks)
    8
    """

    def __init__(self, n_queues: int, capacity: int, rng: SeedLike = None) -> None:
        super().__init__(n_queues, capacity, beta=0.0, insert_probs=None, rng=rng)

    def divergence_curve(
        self, prefill: int, steps: int, sample_every: int = 1000
    ) -> SampledRun:
        """Run steady-state and return the sampled max-top-rank curve.

        Theorem 6 predicts ``max_top_ranks`` grows like
        ``sqrt(t * n * log n)``; the bench fits the growth exponent of
        this curve (about 0.5 on a log-log scale) and contrasts it with
        the flat curve of the two-choice process.
        """
        return self.run_steady_state_sampled(prefill, steps, sample_every)
