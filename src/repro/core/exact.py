"""Exact (enumerated) distributions for tiny instances of the process.

For small numbers of queues and labels the (1+beta) process's randomness
can be enumerated exhaustively: each removal samples an ordered pair of
queues (probability ``1/n^2`` each) with probability ``beta``, or a
single queue (``1/n``) otherwise.  This module computes *exact* removal
rank distributions by dynamic programming over system states, giving the
test suite a ground truth that Monte-Carlo implementations (the process,
the MultiQueue, the coupled exponential process) must match — a much
sharper check than comparing two samplers to each other.

State spaces explode quickly; intended for ``n <= 3`` and ``<= 10``
labels, where enumeration is instant.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np


def exact_removal_rank_distribution(
    layout: Sequence[Sequence[int]],
    removals: int,
    beta: float = 1.0,
) -> List[Dict[int, float]]:
    """Exact per-step rank distributions for a fixed initial layout.

    Parameters
    ----------
    layout:
        Per-queue lists of labels in queue (FIFO) order; all labels
        distinct.  This fixes the insertion outcome, isolating the
        removal process (whose randomness is enumerated exactly).
    removals:
        Number of removal steps to analyze.
    beta:
        Two-choice probability.

    Returns
    -------
    A list of ``removals`` dicts; entry ``t`` maps rank -> probability
    that the removal at step ``t`` pays that rank.  Steps where the
    system might already be empty contribute mass to rank ``0``
    (no-op), which callers can treat as "process exhausted".
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    n = len(layout)
    if n == 0:
        raise ValueError("layout must have at least one queue")
    all_labels = [lab for queue in layout for lab in queue]
    if len(set(all_labels)) != len(all_labels):
        raise ValueError("labels must be distinct")
    total = len(all_labels)
    if removals > total:
        raise ValueError(f"cannot analyze {removals} removals of {total} labels")
    initial = tuple(tuple(q) for q in layout)

    # Transition: from a state, each (coin, choice) outcome removes one
    # label (or none if every inspected queue is empty — the redraw in
    # the implementation; here we follow the *prefixed* convention and
    # condition on hitting a non-empty queue by renormalizing).
    def outcomes(state) -> List[Tuple[float, int, Tuple]]:
        """(probability, removed label, next state) triples."""
        result: List[Tuple[float, int, Tuple]] = []
        # Two-choice component.
        if beta > 0.0:
            pair_prob = beta / (n * n)
            for i in range(n):
                for j in range(n):
                    qi, qj = state[i], state[j]
                    if qi and qj:
                        target = i if qi[0] <= qj[0] else j
                    elif qi:
                        target = i
                    elif qj:
                        target = j
                    else:
                        continue  # both empty: redraw (renormalized below)
                    result.append((pair_prob, state[target][0], _pop(state, target)))
        if beta < 1.0:
            single_prob = (1.0 - beta) / n
            for i in range(n):
                if state[i]:
                    result.append((single_prob, state[i][0], _pop(state, i)))
        mass = sum(p for p, _lab, _s in result)
        if mass > 0:
            result = [(p / mass, lab, s) for p, lab, s in result]
        return result

    # Forward DP over state distribution.
    distribution: Dict[Tuple, float] = {initial: 1.0}
    step_rank_dists: List[Dict[int, float]] = []
    for _step in range(removals):
        rank_dist: Dict[int, float] = {}
        next_distribution: Dict[Tuple, float] = {}
        for state, prob in distribution.items():
            outs = outcomes(state)
            if not outs:  # fully empty system
                rank_dist[0] = rank_dist.get(0, 0.0) + prob
                next_distribution[state] = next_distribution.get(state, 0.0) + prob
                continue
            present = sorted(lab for q in state for lab in q)
            for p, label, nxt in outs:
                rank = present.index(label) + 1
                rank_dist[rank] = rank_dist.get(rank, 0.0) + prob * p
                next_distribution[nxt] = next_distribution.get(nxt, 0.0) + prob * p
        step_rank_dists.append(rank_dist)
        distribution = next_distribution
    return step_rank_dists


def _pop(state: Tuple, index: int) -> Tuple:
    queues = list(state)
    queues[index] = queues[index][1:]
    return tuple(queues)


def exact_mean_rank(
    layout: Sequence[Sequence[int]], removals: int, beta: float = 1.0
) -> float:
    """Expected average rank over ``removals`` steps (exact)."""
    dists = exact_removal_rank_distribution(layout, removals, beta)
    means = []
    for dist in dists:
        live = {r: p for r, p in dist.items() if r > 0}
        mass = sum(live.values())
        if mass == 0:
            continue
        means.append(sum(r * p for r, p in live.items()) / mass)
    if not means:
        raise ValueError("no live removal steps")
    return float(np.mean(means))


def empirical_rank_distribution(samples: Sequence[int]) -> Dict[int, float]:
    """Normalize a sample of ranks into an empirical distribution."""
    if len(samples) == 0:
        raise ValueError("no samples")
    counts: Dict[int, float] = {}
    for r in samples:
        counts[int(r)] = counts.get(int(r), 0.0) + 1.0
    total = float(len(samples))
    return {r: c / total for r, c in counts.items()}


def total_variation(p: Dict[int, float], q: Dict[int, float]) -> float:
    """Total-variation distance between two rank distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)
