"""Round-robin insertion and the Appendix A reduction.

When labels are inserted round-robin (label ``t`` goes to queue
``t mod n``), the queue with the smaller top label is exactly the queue
that has been removed from *fewer* times (ties broken by queue index).
Removals therefore simulate the classic two-choice balls-into-bins
process on "virtual bins" that count removals — Appendix A's reduction.

:func:`coupled_virtual_loads` operationalizes the reduction: it drives a
round-robin process and a two-choice balls-into-bins allocation with the
*same* choice stream and returns both load vectors, which must be
identical entry for entry (a test asserts this).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.process import SequentialProcess
from repro.utils.rngtools import SeedLike, as_generator


class RoundRobinProcess(SequentialProcess):
    """The sequential process with deterministic round-robin insertion.

    Removals still follow the (1+beta) rule (default pure two-choice,
    ``beta=1``, as in Appendix A).
    """

    def __init__(
        self, n_queues: int, capacity: int, beta: float = 1.0, rng: SeedLike = None
    ) -> None:
        super().__init__(n_queues, capacity, beta=beta, insert_probs=None, rng=rng)
        self._removal_counts = np.zeros(n_queues, dtype=np.int64)

    def _choose_insert_queue(self, label: int) -> int:
        return label % self.n_queues

    def remove(self):
        record = super().remove()
        self._removal_counts[record.queue] += 1
        return record

    def removal_counts(self) -> np.ndarray:
        """Removals per queue so far — the 'virtual bin' loads of App. A."""
        return self._removal_counts.copy()

    def virtual_gap(self) -> float:
        """Max virtual load minus average — the two-choice gap statistic.

        Classic heavily-loaded two-choice theory predicts this stays
        ``O(log log n)``-ish, independent of the number of steps.
        """
        counts = self._removal_counts
        return float(counts.max() - counts.mean())


def coupled_virtual_loads(
    n_queues: int,
    prefill: int,
    removals: int,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drive the App. A reduction with a shared choice stream.

    Returns ``(round_robin_removal_counts, two_choice_loads)``.  The two
    arrays are equal entry-for-entry when the reduction is implemented
    correctly: removing from the lower-top queue *is* inserting into the
    less-loaded virtual bin, with ties broken toward the smaller index.
    """
    if removals > prefill:
        raise ValueError(f"cannot remove {removals} of {prefill} labels")
    root = as_generator(seed)
    choice_seed = int(root.integers(2**63))

    proc = RoundRobinProcess(n_queues, prefill, beta=1.0, rng=choice_seed)
    proc.prefill(prefill)
    for _ in range(removals):
        proc.remove()

    # Replay the identical choice stream against plain two-choice
    # balls-into-bins with (load, index) tie-breaking.
    rng = as_generator(choice_seed)
    loads = np.zeros(n_queues, dtype=np.int64)
    for _ in range(removals):
        i = int(rng.integers(n_queues))
        j = int(rng.integers(n_queues))
        if (loads[i], i) <= (loads[j], j):
            loads[i] += 1
        else:
            loads[j] += 1
    return proc.removal_counts(), loads


def virtual_load_history(
    n_queues: int, prefill: int, removals: int, seed: SeedLike = None, sample_every: int = 100
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Gap trajectory of the round-robin process's virtual bins.

    Returns ``(sample_steps, gaps, load_snapshots)`` where ``gaps[k]``
    is ``max load - mean load`` at ``sample_steps[k]``.
    """
    proc = RoundRobinProcess(n_queues, prefill, beta=1.0, rng=seed)
    proc.prefill(prefill)
    steps, gaps, snaps = [], [], []
    for step in range(1, removals + 1):
        proc.remove()
        if step % sample_every == 0:
            steps.append(step)
            gaps.append(proc.virtual_gap())
            snaps.append(proc.removal_counts())
    return np.asarray(steps), np.asarray(gaps), snaps
