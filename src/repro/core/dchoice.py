"""d-choice generalization of the removal rule.

The paper analyzes d = 2 (and its (1+beta) mixture).  The classic
balls-into-bins literature says most of the benefit of sampling d bins
arrives at d = 2 — going to d = 3, 4, ... only improves constants
(gap ``log log n / log d``).  This module generalizes the sequential
process to best-of-d removals so the ablation bench can measure that
diminishing return directly on rank cost.
"""

from __future__ import annotations

from repro.core.process import SequentialProcess
from repro.core.records import RemovalRecord
from repro.utils.rngtools import SeedLike


class DChoiceProcess(SequentialProcess):
    """Sequential process removing the best of ``d`` uniform choices.

    ``d = 1`` recovers the divergent single-choice process; ``d = 2`` is
    the paper's two-choice rule (``beta = 1``).  Choices are sampled with
    replacement, consistent with the paper's ``p_i`` derivation.
    """

    def __init__(
        self, n_queues: int, capacity: int, d: int = 2, rng: SeedLike = None
    ) -> None:
        if d <= 0:
            raise ValueError(f"d must be positive, got {d}")
        # beta=1.0 so the base-class chooser would always use two
        # choices; remove() below overrides the choice logic entirely.
        super().__init__(n_queues, capacity, beta=1.0, insert_probs=None, rng=rng)
        self.d = d

    def remove(self) -> RemovalRecord:
        """Remove the best top among ``d`` uniformly random queues."""
        if self._oracle.present_count == 0:
            raise LookupError("remove from empty process")
        queues = self._queues
        rng = self._rng
        n = self.n_queues
        while True:
            best = None
            best_label = None
            for _ in range(self.d):
                i = int(rng.integers(n))
                q = queues[i]
                if q and (best_label is None or q[0] < best_label):
                    best, best_label = i, q[0]
            if best is None:
                self.empty_redraws += 1
                continue
            break
        label = queues[best].popleft()
        rank = self._oracle.remove(label)
        record = RemovalRecord(
            step=self._removal_step,
            label=label,
            rank=rank,
            queue=best,
            two_choice=self.d >= 2,
        )
        self._removal_step += 1
        return record

    def __repr__(self) -> str:
        return (
            f"DChoiceProcess(n={self.n_queues}, d={self.d}, "
            f"present={self.present_count})"
        )
