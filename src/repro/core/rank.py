"""Exact rank bookkeeping for the labelled process.

At every removal the process pays the *rank* of the removed label among
labels still present anywhere in the system (1-based; the global minimum
has rank 1).  :class:`RankOracle` maintains the present-label multiset
over a fixed integer label universe and answers rank queries in
``O(log M)`` via a Fenwick tree.
"""

from __future__ import annotations

from repro.utils.fenwick import FenwickTree


class RankOracle:
    """Tracks which labels of ``[0, capacity)`` are present and ranks them.

    Labels are assumed distinct (each label inserted at most once while
    present) — exactly the setting of the paper, where labels are
    consecutive integers.

    Example
    -------
    >>> oracle = RankOracle(10)
    >>> for label in (2, 5, 7):
    ...     oracle.insert(label)
    >>> oracle.rank(5)
    2
    >>> oracle.remove(5)
    2
    >>> oracle.rank(7)
    2
    """

    __slots__ = ("_tree", "_present")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._tree = FenwickTree(capacity)
        self._present = bytearray(capacity)

    @property
    def capacity(self) -> int:
        """Size of the label universe."""
        return self._tree.size

    @property
    def present_count(self) -> int:
        """Number of labels currently present."""
        return self._tree.total

    def __contains__(self, label: int) -> bool:
        return bool(self._present[label])

    def insert(self, label: int) -> None:
        """Mark ``label`` present.

        Raises :class:`ValueError` when ``label`` falls outside the
        ``[0, capacity)`` universe — most commonly because a process
        inserted more labels than it was sized for.
        """
        if not 0 <= label < self.capacity:
            raise ValueError(
                f"label {label} outside label universe [0, {self.capacity}); "
                "size the oracle's capacity to the total number of inserts"
            )
        if self._present[label]:
            raise ValueError(f"label {label} already present")
        self._present[label] = 1
        self._tree.add(label, 1)

    def rank(self, label: int) -> int:
        """Rank of ``label`` among present labels (1-based, inclusive).

        ``label`` itself must be present.
        """
        if not self._present[label]:
            raise KeyError(f"label {label} not present")
        return self._tree.prefix_sum(label)

    def rank_of_value(self, label: int) -> int:
        """Count of present labels ``<= label`` (label need not be present)."""
        return self._tree.prefix_sum(label)

    def remove(self, label: int) -> int:
        """Remove ``label`` and return the rank it had when removed."""
        r = self.rank(label)
        self._present[label] = 0
        self._tree.add(label, -1)
        return r

    def kth_smallest(self, k: int) -> int:
        """Return the ``k``-th smallest present label (1-based)."""
        return self._tree.find_kth(k)

    def min_label(self) -> int:
        """The smallest present label."""
        if self.present_count == 0:
            raise LookupError("no labels present")
        return self.kth_smallest(1)

    def __repr__(self) -> str:
        return f"RankOracle(capacity={self.capacity}, present={self.present_count})"
