"""The labelled (1+beta) sequential process of Section 3, instrumented.

This module drives the *exact* random process the paper analyzes:
consecutive integer labels are inserted into ``n`` queues according to an
insertion distribution ``pi``; removals flip a beta-coin and take the
better of two (or a single) random queue tops; every removal pays the
rank of the removed label among labels still present.

Because labels are inserted in strictly increasing order, each queue's
contents are already sorted — a deque per queue suffices, which keeps
simulation fast.  Exact rank accounting is delegated to
:class:`~repro.core.rank.RankOracle`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.core.policies import RemovalChooser, uniform_insert_probs
from repro.core.rank import RankOracle
from repro.core.records import RankTrace, RemovalRecord, SampledRun
from repro.utils.rngtools import SeedLike, as_generator


class SequentialProcess:
    """The (1+beta)-sequential process with exact rank-cost accounting.

    Parameters
    ----------
    n_queues:
        Number of queues ``n``.
    capacity:
        Upper bound on the total number of labels this run will insert
        (sizes the rank oracle).
    beta:
        Two-choice probability (``1.0`` = original MultiQueue rule).
    insert_probs:
        Insertion distribution ``pi`` (length ``n_queues``); ``None``
        means uniform.  Use :func:`repro.core.policies.biased_insert_probs`
        for gamma-bounded bias.
    rng:
        Seed or generator.  One generator drives the insert choices,
        beta-coins, and queue choices (in draw order), so runs are fully
        reproducible.

    Notes
    -----
    Removals that would inspect only empty queues are *redrawn* (and
    counted in :attr:`empty_redraws`); the paper's "prefixed execution"
    assumption says these events are negligible when the system holds a
    large buffer of elements, and benches prefill accordingly.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n_queues = n_queues
        self.beta = beta
        gen = as_generator(rng)
        self._chooser = RemovalChooser(n_queues, beta, gen)
        self._rng = gen
        if insert_probs is not None:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            self._cum_probs: Optional[np.ndarray] = np.cumsum(probs)
            self.insert_probs = probs
        else:
            self._cum_probs = None
            self.insert_probs = uniform_insert_probs(n_queues)
        self._queues: List[Deque[int]] = [deque() for _ in range(n_queues)]
        self._oracle = RankOracle(capacity)
        self._next_label = 0
        self._removal_step = 0
        #: Number of removal redraws forced by empty chosen queues.
        self.empty_redraws = 0

    # -- state inspection --------------------------------------------------

    @property
    def present_count(self) -> int:
        """Number of labels currently in the system."""
        return self._oracle.present_count

    @property
    def labels_inserted(self) -> int:
        """Total labels inserted so far."""
        return self._next_label

    @property
    def removal_steps(self) -> int:
        """Total removals performed so far."""
        return self._removal_step

    def queue_sizes(self) -> List[int]:
        """Current size of each queue."""
        return [len(q) for q in self._queues]

    def top_labels(self) -> List[Optional[int]]:
        """Label on top of each queue (``None`` for empty queues)."""
        return [q[0] if q else None for q in self._queues]

    def top_ranks(self) -> List[int]:
        """Rank of each non-empty queue's top label among present labels.

        This is the quantity bounded by Corollary 1: its maximum is
        ``O((n/beta)(log n + log 1/beta))`` in expectation, at any time.
        """
        oracle = self._oracle
        return [oracle.rank(q[0]) for q in self._queues if q]

    def max_top_rank(self) -> int:
        """Worst rank among queue tops (``max(top_ranks())``)."""
        ranks = self.top_ranks()
        if not ranks:
            raise LookupError("all queues are empty")
        return max(ranks)

    # -- operations ----------------------------------------------------------

    def insert(self) -> int:
        """Insert the next consecutive label; returns the queue index."""
        label = self._next_label
        if label >= self._oracle.capacity:
            raise RuntimeError(
                f"capacity {self._oracle.capacity} exhausted; size the process larger"
            )
        idx = self._choose_insert_queue(label)
        self._queues[idx].append(label)
        self._oracle.insert(label)
        self._next_label += 1
        return idx

    def _choose_insert_queue(self, label: int) -> int:
        """Random pi-distributed choice; subclasses may override (e.g.
        round-robin uses ``label % n``)."""
        if self._cum_probs is None:
            return int(self._rng.integers(self.n_queues))
        return int(np.searchsorted(self._cum_probs, self._rng.random(), side="right"))

    def prefill(self, m: int) -> None:
        """Insert ``m`` consecutive labels (the paper's initial buffer)."""
        for _ in range(m):
            self.insert()

    def remove(self) -> RemovalRecord:
        """Perform one (1+beta) removal and return its record.

        Raises
        ------
        LookupError
            If the whole system is empty.
        """
        if self._oracle.present_count == 0:
            raise LookupError("remove from empty process")
        queues = self._queues
        while True:
            two, i, j = self._chooser.draw()
            if two:
                qi, qj = queues[i], queues[j]
                if qi and qj:
                    idx = i if qi[0] <= qj[0] else j
                elif qi:
                    idx = i
                elif qj:
                    idx = j
                else:
                    self.empty_redraws += 1
                    continue
            else:
                if queues[i]:
                    idx = i
                else:
                    self.empty_redraws += 1
                    continue
            break
        label = queues[idx].popleft()
        rank = self._oracle.remove(label)
        record = RemovalRecord(
            step=self._removal_step, label=label, rank=rank, queue=idx, two_choice=two
        )
        self._removal_step += 1
        return record

    # -- run modes -------------------------------------------------------------

    def run_prefill_drain(self, prefill: int, removals: Optional[int] = None) -> RankTrace:
        """Insert ``prefill`` labels, then remove ``removals`` (default: half).

        Removing at most half the buffer keeps the execution prefixed
        (queues essentially never run empty), matching Section 3.
        """
        if removals is None:
            removals = prefill // 2
        if removals > prefill:
            raise ValueError(f"cannot remove {removals} of {prefill} inserted labels")
        self.prefill(prefill)
        trace = RankTrace()
        for _ in range(removals):
            trace.append(self.remove().rank)
        return trace

    def run_steady_state(self, prefill: int, steps: int) -> RankTrace:
        """Prefill, then alternate insert+remove for ``steps`` rounds.

        Keeps the population constant at ``prefill``; since inserted
        labels are strictly increasing, no priority inversions are
        visible and the execution stays prefixed.  This is the mode used
        for time-uniformity plots (rank cost vs ``t``).
        """
        self.prefill(prefill)
        trace = RankTrace()
        for _ in range(steps):
            self.insert()
            trace.append(self.remove().rank)
        return trace

    def run_steady_state_sampled(
        self, prefill: int, steps: int, sample_every: int = 1000
    ) -> SampledRun:
        """Steady-state run that also snapshots the top-rank profile.

        Every ``sample_every`` removals the ranks of all queue tops are
        recorded; their maximum is the Corollary 1 quantity
        (``E[max rank] = O((n/beta) log(n/beta))``) and their mean tracks
        the first-order behaviour behind Corollary 2.
        """
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.prefill(prefill)
        trace = RankTrace()
        sample_steps: List[int] = []
        max_ranks: List[int] = []
        mean_ranks: List[float] = []
        for step in range(steps):
            self.insert()
            trace.append(self.remove().rank)
            if (step + 1) % sample_every == 0:
                ranks = self.top_ranks()
                sample_steps.append(step + 1)
                max_ranks.append(max(ranks))
                mean_ranks.append(sum(ranks) / len(ranks))
        return SampledRun(
            trace=trace,
            sample_steps=np.asarray(sample_steps, dtype=np.int64),
            max_top_ranks=np.asarray(max_ranks, dtype=np.int64),
            mean_top_ranks=np.asarray(mean_ranks, dtype=float),
        )

    def __repr__(self) -> str:
        return (
            f"SequentialProcess(n={self.n_queues}, beta={self.beta}, "
            f"present={self.present_count}, inserted={self.labels_inserted})"
        )
