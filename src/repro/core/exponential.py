"""The exponential process (Section 4) and the Theorem 2 coupling.

The analysis device of the paper: instead of inserting consecutive
integer labels, each bin ``i`` generates real-valued labels as cumulative
sums of ``Exp(1/pi_i)`` increments.  Theorem 2 states that after
insertion, the *rank* content of the bins has exactly the same
distribution as in the original process — for every global rank ``r``
and bin ``j``, ``Pr[rank r lands in bin j] = pi_j``, independently
across ranks.

This module provides:

* :class:`ExponentialProcess` — finite-horizon generation of ``m``
  labels plus (1+beta) removals with exact rank-cost accounting;
* :class:`ExponentialTopProcess` — the infinite-supply variant used by
  the potential analysis of Theorem 3 (bins never empty; only the top
  weights matter);
* :func:`coupled_removal_costs` — the operational coupling: both
  processes driven by one choice stream over one shared rank layout pay
  *identical* costs, which is the bridge the proof of Theorem 1 crosses.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.policies import RemovalChooser
from repro.core.rank import RankOracle
from repro.core.records import RankTrace, RemovalRecord
from repro.utils.rngtools import SeedLike, as_generator


class ExponentialProcess:
    """Finite-horizon exponential process with rank-cost accounting.

    ``generate(m)`` lazily merges the ``n`` per-bin renewal streams in
    increasing label order, assigning global ranks ``0..m-1`` as it goes;
    by the memorylessness argument of Theorem 2, each successive rank
    lands in bin ``j`` with probability ``pi_j`` independently.

    Removals then run the (1+beta) rule over the *ranks* (the real
    values have served their purpose once ranks are assigned), paying
    the present-rank cost exactly as the original process does.
    """

    def __init__(
        self,
        n_queues: int,
        capacity: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n_queues = n_queues
        self.beta = beta
        gen = as_generator(rng)
        self._rng = gen
        self._chooser = RemovalChooser(n_queues, beta, gen)
        if insert_probs is None:
            self._means = np.full(n_queues, float(n_queues))
        else:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            self._means = 1.0 / probs
        #: Per-bin queues of (value, rank) pairs, increasing in both.
        self._bins: List[Deque[Tuple[float, int]]] = [deque() for _ in range(n_queues)]
        #: Pending smallest-ungenerated value per bin, as a merge heap of
        #: (value, bin).  Persisting it across generate() calls keeps the
        #: conditioning exact: a bin that lost merges up to value v is
        #: known to have its next renewal beyond v.
        self._frontier: Optional[List[Tuple[float, int]]] = None
        self._oracle = RankOracle(capacity)
        self._generated = 0
        self._removal_step = 0
        self.empty_redraws = 0

    # -- generation -------------------------------------------------------

    def generate(self, m: int) -> None:
        """Generate the next ``m`` labels in global increasing order."""
        if self._generated + m > self._oracle.capacity:
            raise RuntimeError(
                f"capacity {self._oracle.capacity} exhausted; size the process larger"
            )
        rng = self._rng
        means = self._means
        if self._frontier is None:
            self._frontier = [
                (rng.exponential(means[i]), i) for i in range(self.n_queues)
            ]
            heapq.heapify(self._frontier)
        frontier = self._frontier
        for _ in range(m):
            value, i = heapq.heappop(frontier)
            rank = self._generated
            self._bins[i].append((value, rank))
            self._oracle.insert(rank)
            self._generated += 1
            heapq.heappush(frontier, (value + rng.exponential(means[i]), i))

    @property
    def generated(self) -> int:
        """Total labels generated so far."""
        return self._generated

    @property
    def present_count(self) -> int:
        """Labels currently present (generated minus removed)."""
        return self._oracle.present_count

    def bin_assignment(self) -> np.ndarray:
        """Array mapping each global rank to the bin that holds it.

        Only meaningful before removals.  Theorem 2 predicts the entries
        are i.i.d. draws from ``pi`` — the statistical equivalence tests
        compare this against the original process's insertion choices.
        """
        assignment = np.full(self._generated, -1, dtype=np.int64)
        for i, bin_ in enumerate(self._bins):
            for _value, rank in bin_:
                assignment[rank] = i
        if np.any(assignment < 0):
            raise RuntimeError("bin_assignment called after removals")
        return assignment

    def bin_rank_sequences(self) -> List[List[int]]:
        """Per-bin lists of the global ranks currently held, in order."""
        return [[rank for _v, rank in bin_] for bin_ in self._bins]

    def top_weights(self) -> List[Optional[float]]:
        """Real-valued label on top of each bin (``None`` when empty)."""
        return [bin_[0][0] if bin_ else None for bin_ in self._bins]

    # -- removal -----------------------------------------------------------

    def remove(self) -> RemovalRecord:
        """One (1+beta) removal over the bins; cost = present rank."""
        if self._oracle.present_count == 0:
            raise LookupError("remove from empty exponential process")
        bins = self._bins
        while True:
            two, i, j = self._chooser.draw()
            if two:
                bi, bj = bins[i], bins[j]
                if bi and bj:
                    idx = i if bi[0][0] <= bj[0][0] else j
                elif bi:
                    idx = i
                elif bj:
                    idx = j
                else:
                    self.empty_redraws += 1
                    continue
            else:
                if bins[i]:
                    idx = i
                else:
                    self.empty_redraws += 1
                    continue
            break
        _value, rank = bins[idx].popleft()
        cost = self._oracle.remove(rank)
        record = RemovalRecord(
            step=self._removal_step, label=rank, rank=cost, queue=idx, two_choice=two
        )
        self._removal_step += 1
        return record

    def run_drain(self, removals: int) -> RankTrace:
        """Remove ``removals`` elements, returning the rank trace."""
        trace = RankTrace()
        for _ in range(removals):
            trace.append(self.remove().rank)
        return trace

    def __repr__(self) -> str:
        return (
            f"ExponentialProcess(n={self.n_queues}, beta={self.beta}, "
            f"present={self.present_count})"
        )


class ExponentialTopProcess:
    """Infinite-supply exponential process tracking only bin tops.

    This is precisely the object the potential argument of Theorem 3
    manipulates: ``n`` bins, bin ``i`` holding a top weight ``w_i``;
    each step removes per the (1+beta) rule and the removed bin's top
    advances by a fresh ``Exp(1/pi_i)`` increment (``kappa`` in Lemma 1).
    Bins never empty, so the process runs forever — ideal for verifying
    that ``E[Gamma(t)]`` stays ``O(n)`` uniformly in ``t``.
    """

    def __init__(
        self,
        n_queues: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        self.n_queues = n_queues
        self.beta = beta
        gen = as_generator(rng)
        self._rng = gen
        self._chooser = RemovalChooser(n_queues, beta, gen)
        if insert_probs is None:
            self._means = np.full(n_queues, float(n_queues))
        else:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            self._means = 1.0 / probs
        # Initial tops: first renewal of each bin (the t=0 state of
        # Lemma 13, whose Gamma(0) = O(n) computation assumes exactly this).
        self._tops = np.array([gen.exponential(m) for m in self._means])
        self.steps = 0

    @property
    def top_weights(self) -> np.ndarray:
        """Current top weight of each bin (a copy)."""
        return self._tops.copy()

    def step(self) -> int:
        """One (1+beta) removal; returns the bin removed from."""
        two, i, j = self._chooser.draw()
        if two:
            idx = i if self._tops[i] <= self._tops[j] else j
        else:
            idx = i
        self._tops[idx] += self._rng.exponential(self._means[idx])
        self.steps += 1
        return idx

    def run(self, steps: int) -> None:
        """Advance the process by ``steps`` removals."""
        for _ in range(steps):
            self.step()

    def __repr__(self) -> str:
        return f"ExponentialTopProcess(n={self.n_queues}, beta={self.beta}, t={self.steps})"


def coupled_removal_costs(
    n_queues: int,
    prefill: int,
    removals: int,
    beta: float = 1.0,
    insert_probs: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Tuple[RankTrace, RankTrace]:
    """Run the Theorem-2 coupling end to end; returns both rank traces.

    The exponential process generates ``prefill`` labels; its per-bin
    rank layout is then *replayed* as the original process's insertion
    outcome (legitimate, because Theorem 2 says the layouts are equal in
    distribution).  Both sides then consume an identical stream of
    beta-coins and queue choices.  Under this coupling the two cost
    sequences are **identical step by step** — the returned traces must
    compare equal, and a test enforces it.
    """
    if removals > prefill:
        raise ValueError(f"cannot remove {removals} of {prefill} labels")
    seeds = as_generator(seed).integers(2**63, size=3)

    exp_proc = ExponentialProcess(
        n_queues, prefill, beta=beta, insert_probs=insert_probs, rng=int(seeds[0])
    )
    exp_proc.generate(prefill)
    layout = exp_proc.bin_rank_sequences()

    # Original-process side: same layout, fresh oracle, same choice stream.
    chooser_orig = RemovalChooser(n_queues, beta, int(seeds[1]))
    chooser_exp = RemovalChooser(n_queues, beta, int(seeds[1]))
    # Replace the exponential process's internal chooser so both sides
    # consume the identical stream from here on.
    exp_proc._chooser = chooser_exp

    bins: List[Deque[int]] = [deque(ranks) for ranks in layout]
    oracle = RankOracle(prefill)
    for ranks in layout:
        for r in ranks:
            oracle.insert(r)

    trace_orig = RankTrace()
    for _ in range(removals):
        while True:
            two, i, j = chooser_orig.draw()
            if two:
                bi, bj = bins[i], bins[j]
                if bi and bj:
                    idx = i if bi[0] <= bj[0] else j
                elif bi:
                    idx = i
                elif bj:
                    idx = j
                else:
                    continue
            else:
                if bins[i]:
                    idx = i
                else:
                    continue
            break
        label = bins[idx].popleft()
        trace_orig.append(oracle.remove(label))

    trace_exp = exp_proc.run_drain(removals)
    return trace_orig, trace_exp
