"""The process under *general* priority insertions (Section 5 discussion).

The analyzed process inserts strictly increasing labels (FIFO
semantics).  The paper notes the practical MultiQueue faces *general*
priorities and sketches why the guarantees should persist when inserts
do not create visible priority inversions.  This module implements the
general-insertion process so the question becomes measurable: priorities
arrive in any prescribed order (increasing, shuffled, decreasing,
clustered...), each queue is a real heap, removals follow the (1+beta)
rule, and every removal pays its exact present-rank.

The planned priority sequence is fixed up front, which lets rank
accounting stay O(log M): positions in the globally sorted order are
precomputed and tracked in a Fenwick tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.policies import RemovalChooser
from repro.core.records import RankTrace, RemovalRecord
from repro.pqueues import BinaryHeap
from repro.utils.fenwick import FenwickTree
from repro.utils.rngtools import SeedLike, as_generator


class GeneralPriorityProcess:
    """(1+beta) process over an arbitrary planned priority sequence.

    Parameters
    ----------
    priorities:
        The full sequence of priorities the run will insert, in arrival
        order.  Ties are broken by arrival index (stable).
    n_queues:
        Number of queues.
    beta:
        Two-choice probability.
    insert_probs:
        Optional biased insertion distribution.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        priorities: Sequence,
        n_queues: int,
        beta: float = 1.0,
        insert_probs: Optional[np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if len(priorities) == 0:
            raise ValueError("priority sequence must be non-empty")
        self.n_queues = n_queues
        self.beta = beta
        gen = as_generator(rng)
        self._rng = gen
        self._chooser = RemovalChooser(n_queues, beta, gen)
        if insert_probs is not None:
            probs = np.asarray(insert_probs, dtype=float)
            if len(probs) != n_queues:
                raise ValueError(
                    f"insert_probs has length {len(probs)}, expected {n_queues}"
                )
            self._cum_probs: Optional[np.ndarray] = np.cumsum(probs)
        else:
            self._cum_probs = None
        self._priorities = list(priorities)
        # Global sorted position of each arrival index, ties by index.
        order = sorted(range(len(self._priorities)), key=lambda k: (self._priorities[k], k))
        self._position = [0] * len(order)
        for pos, idx in enumerate(order):
            self._position[idx] = pos
        self._tree = FenwickTree(len(self._priorities))
        self._queues: List[BinaryHeap] = [BinaryHeap() for _ in range(n_queues)]
        self._next_index = 0
        self._removal_step = 0
        self.empty_redraws = 0

    # -- state ------------------------------------------------------------

    @property
    def present_count(self) -> int:
        """Elements currently in the system."""
        return self._tree.total

    @property
    def inserted(self) -> int:
        """Arrivals consumed so far."""
        return self._next_index

    @property
    def remaining(self) -> int:
        """Arrivals not yet inserted."""
        return len(self._priorities) - self._next_index

    def queue_sizes(self) -> List[int]:
        """Current size of each queue."""
        return [len(q) for q in self._queues]

    # -- operations ---------------------------------------------------------

    def insert(self) -> int:
        """Insert the next planned priority; returns the queue index."""
        if self._next_index >= len(self._priorities):
            raise RuntimeError("priority sequence exhausted")
        idx = self._next_index
        self._next_index += 1
        if self._cum_probs is None:
            q = int(self._rng.integers(self.n_queues))
        else:
            q = int(np.searchsorted(self._cum_probs, self._rng.random(), side="right"))
        # Heap entries are (priority, arrival index); heap stability is
        # irrelevant because the pair is already unique and ordered.
        self._queues[q].push((self._priorities[idx], idx), idx)
        self._tree.add(self._position[idx], 1)
        return q

    def prefill(self, m: int) -> None:
        """Insert the next ``m`` planned priorities."""
        for _ in range(m):
            self.insert()

    def remove(self) -> RemovalRecord:
        """One (1+beta) removal; cost = exact rank among present."""
        if self._tree.total == 0:
            raise LookupError("remove from empty process")
        queues = self._queues
        while True:
            two, i, j = self._chooser.draw()
            if two:
                qi, qj = queues[i], queues[j]
                ti = qi.top_or_none()
                tj = qj.top_or_none()
                if ti is not None and (tj is None or ti.priority <= tj.priority):
                    chosen = i
                elif tj is not None:
                    chosen = j
                else:
                    self.empty_redraws += 1
                    continue
            else:
                if len(queues[i]):
                    chosen = i
                else:
                    self.empty_redraws += 1
                    continue
            break
        entry = queues[chosen].pop()
        arrival_idx = entry.item
        pos = self._position[arrival_idx]
        rank = self._tree.prefix_sum(pos)
        self._tree.add(pos, -1)
        record = RemovalRecord(
            step=self._removal_step,
            label=arrival_idx,
            rank=rank,
            queue=chosen,
            two_choice=two,
        )
        self._removal_step += 1
        return record

    def run_steady_state(self, prefill: int, steps: int) -> RankTrace:
        """Prefill, then alternate insert+remove while arrivals last."""
        if prefill + steps > len(self._priorities):
            raise ValueError(
                f"need {prefill + steps} priorities, have {len(self._priorities)}"
            )
        self.prefill(prefill)
        trace = RankTrace()
        for _ in range(steps):
            self.insert()
            trace.append(self.remove().rank)
        return trace

    def run_prefill_drain(self, prefill: int, removals: int) -> RankTrace:
        """Insert ``prefill`` then remove ``removals``."""
        if removals > prefill:
            raise ValueError(f"cannot remove {removals} of {prefill}")
        self.prefill(prefill)
        trace = RankTrace()
        for _ in range(removals):
            trace.append(self.remove().rank)
        return trace

    def __repr__(self) -> str:
        return (
            f"GeneralPriorityProcess(n={self.n_queues}, beta={self.beta}, "
            f"present={self.present_count}, remaining={self.remaining})"
        )


# -- canned priority orders for experiments ---------------------------------


def priority_sequence(kind: str, m: int, rng: SeedLike = None) -> np.ndarray:
    """Generate a planned priority sequence of a named shape.

    Kinds: ``increasing`` (the analyzed FIFO case), ``decreasing`` (every
    insert is a visible inversion — LIFO-adversarial), ``random``
    (i.i.d. uniform), ``zipf`` (heavy duplicate mass on small values),
    ``sawtooth`` (repeated increasing runs — Dijkstra-ish).
    """
    gen = as_generator(rng)
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if kind == "increasing":
        return np.arange(m)
    if kind == "decreasing":
        return np.arange(m)[::-1].copy()
    if kind == "random":
        return gen.integers(0, 2**40, size=m)
    if kind == "zipf":
        return np.minimum(gen.zipf(1.5, size=m), 10**6)
    if kind == "sawtooth":
        run = max(m // 20, 1)
        return np.concatenate(
            [np.arange(run) + (k * run) // 2 for k in range(-(-m // run))]
        )[:m]
    raise ValueError(f"unknown priority sequence kind {kind!r}")
