"""Fenwick tree (binary indexed tree) over a fixed integer index space.

The rank bookkeeping at the heart of the reproduction — "what is the rank
of this label among labels still present in any queue?" — is a dynamic
prefix-count problem.  A Fenwick tree answers it in ``O(log M)`` per
update/query, where ``M`` is the size of the label universe.
"""

from __future__ import annotations

from typing import List


class FenwickTree:
    """A Fenwick (binary indexed) tree supporting point update / prefix sum.

    Indices are 0-based externally and may range over ``[0, size)``.

    Example
    -------
    >>> ft = FenwickTree(8)
    >>> ft.add(3, 1)
    >>> ft.add(5, 1)
    >>> ft.prefix_sum(4)   # counts indices 0..4
    1
    >>> ft.prefix_sum(5)
    2
    """

    __slots__ = ("_size", "_tree", "_total")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree: List[int] = [0] * (size + 1)
        self._total = 0

    @property
    def size(self) -> int:
        """The size of the index universe."""
        return self._size

    @property
    def total(self) -> int:
        """Sum of all stored values (``prefix_sum(size - 1)``, but O(1))."""
        return self._total

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` to position ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        self._total += delta
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Return the sum of positions ``0..index`` inclusive.

        ``index == -1`` is allowed and returns 0.
        """
        if index >= self._size:
            raise IndexError(f"index {index} out of range [-1, {self._size})")
        s = 0
        i = index + 1
        tree = self._tree
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    def range_sum(self, lo: int, hi: int) -> int:
        """Return the sum of positions ``lo..hi`` inclusive."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def get(self, index: int) -> int:
        """Return the value stored at ``index``."""
        return self.range_sum(index, index)

    def find_kth(self, k: int) -> int:
        """Return the smallest index such that ``prefix_sum(index) >= k``.

        ``k`` is 1-based: ``find_kth(1)`` locates the first non-zero
        position when all values are 0/1 counts.  Raises ``ValueError``
        if the total mass is less than ``k``.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if k > self._total:
            raise ValueError(f"k={k} exceeds total mass {self._total}")
        pos = 0
        remaining = k
        # Highest power of two <= size.
        bit = 1
        while bit * 2 <= self._size:
            bit *= 2
        tree = self._tree
        while bit > 0:
            nxt = pos + bit
            if nxt <= self._size and tree[nxt] < remaining:
                pos = nxt
                remaining -= tree[nxt]
            bit //= 2
        return pos  # 0-based index of the k-th unit

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"FenwickTree(size={self._size}, total={self._total})"
