"""Shared low-level utilities: Fenwick trees, RNG stream management."""

from repro.utils.fenwick import FenwickTree
from repro.utils.rngtools import RngStreams, as_generator, spawn_seeds

__all__ = ["FenwickTree", "RngStreams", "as_generator", "spawn_seeds"]
