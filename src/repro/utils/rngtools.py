"""Deterministic random-number stream management.

All stochastic components in the library accept either a seed, a
``numpy.random.Generator``, or a ``SeedSequence``.  Experiments that
need *independent but reproducible* streams (e.g. one per simulated
thread) use :class:`RngStreams`, which spawns child generators from a
single root seed via ``numpy``'s ``SeedSequence`` machinery.

**The entropy boundary.**  The CLI is the only place allowed to decide
"no seed given, draw OS entropy" — everything below it (library code,
sweep cells, workers) must thread an explicit seed, or cached results
stop being a function of their parameters and cross-host replays
silently diverge.  Concretely:

* :func:`as_generator` requires its argument.  Passing an explicit
  ``None`` still yields a fresh-entropy generator for the CLI-boundary
  case, but ``repro check`` (DET101) flags any ``as_generator(None)``
  outside ``repro/cli.py``.
* :func:`spawn_seeds` and :class:`RngStreams` reject ``None`` outright:
  spawning *independent named streams* from entropy is never
  reproducible, so there is no boundary case to allow.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an integer seed, a ``SeedSequence``, an existing
    ``Generator`` (returned unchanged), or an explicit ``None`` (fresh
    OS entropy).  The argument is required: callers must *state* their
    seeding decision.  ``None`` is legal only at the CLI entropy
    boundary — library and worker code passing it trips DET101 in
    ``repro check``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Return ``count`` statistically independent generators.

    Derived deterministically from ``seed`` when it is an int or
    ``SeedSequence``; if ``seed`` is already a ``Generator``, children are
    spawned from it (still independent, reproducible given the generator
    state).  ``seed=None`` is rejected: unseeded independent streams are
    unreproducible by construction, and the silent-entropy default was
    exactly the footgun DET101 exists to catch.
    """
    if seed is None:
        raise ValueError(
            "spawn_seeds(None, ...) would draw OS entropy; pass an explicit "
            "seed — only the CLI may decide to run unseeded"
        )
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


class RngStreams:
    """A named registry of independent random streams under one root seed.

    Used by the concurrency simulator so that e.g. thread scheduling noise
    and algorithmic coin flips draw from independent streams — varying one
    does not perturb the other, which keeps A/B comparisons paired.

    The root seed is required and may not be ``None`` (same rationale as
    :func:`spawn_seeds`).

    Example
    -------
    >>> streams = RngStreams(1234)
    >>> a = streams.get("scheduler")
    >>> b = streams.get("choices")
    >>> a is streams.get("scheduler")
    True
    """

    def __init__(self, seed: SeedLike) -> None:
        if seed is None:
            raise ValueError(
                "RngStreams(None) would draw OS entropy; pass an explicit "
                "root seed — only the CLI may decide to run unseeded"
            )
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        elif isinstance(seed, np.random.Generator):
            self._root = seed.bit_generator.seed_seq.spawn(1)[0]
        else:
            self._root = np.random.SeedSequence(seed)
        self._streams: dict = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Stream identity is derived from the *name*, so the set of streams
        requested elsewhere does not affect this stream's values.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + (_stable_hash(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def __repr__(self) -> str:
        return f"RngStreams(streams={sorted(self._streams)})"


def _stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (``hash()`` is salted)."""
    h = 2166136261
    for ch in name.encode("utf-8"):
        h = (h ^ ch) * 16777619 % (1 << 32)
    return h
