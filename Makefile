# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench examples report lint-clean check all

install:
	# Offline-friendly editable install (pip install -e . needs network
	# for build isolation; setup.py develop does not).
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro report

# Static gates: syscall-discipline lint, whole-program determinism +
# lock-order check (against the committed baseline), and one race-free
# sanitized run.
check:
	$(PYTHON) -m repro lint
	$(PYTHON) -m repro check --baseline staticcheck.baseline.json
	$(PYTHON) -m repro sanitize --scenario chaos --variant lock-better --seeds 1

all: install test bench
