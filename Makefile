# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench examples report lint-clean all

install:
	# Offline-friendly editable install (pip install -e . needs network
	# for build isolation; setup.py develop does not).
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro report

all: install test bench
