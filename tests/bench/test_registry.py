"""Tests for the experiment registry."""

import pathlib

import pytest

from repro.bench.registry import all_experiments, coverage_report, get_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_all_experiments_nonempty(self):
        specs = all_experiments()
        assert len(specs) >= 20
        assert len({s.experiment_id for s in specs}) == len(specs)  # unique ids

    def test_get_experiment(self):
        spec = get_experiment("fig1")
        assert spec.paper_ref == "Figure 1"
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_every_bench_file_exists(self):
        """The registry must not drift from the benchmarks directory."""
        bench_dir = REPO_ROOT / "benchmarks"
        for spec in all_experiments():
            assert (bench_dir / spec.bench_file).exists(), spec.bench_file

    def test_every_bench_file_registered(self):
        """Conversely, every bench file must be in the registry."""
        bench_dir = REPO_ROOT / "benchmarks"
        registered = {s.bench_file for s in all_experiments()}
        on_disk = {p.name for p in bench_dir.glob("test_*.py")}
        assert on_disk == registered

    def test_coverage_report_rows(self):
        rows = coverage_report(REPO_ROOT)
        assert len(rows) == len(all_experiments())
        assert all(r["bench exists"] for r in rows)

    def test_result_name_derivation(self):
        assert get_experiment("fig1").result_name == "fig1_throughput"
