"""Tests for table formatting."""

import pytest

from repro.bench.tables import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert "title" in format_table([], title="title")

    def test_alignment_and_title(self):
        out = format_table(
            [{"n": 8, "rank": 6.5}, {"n": 128, "rank": 100.25}], title="Theorem 1"
        )
        lines = out.splitlines()
        assert lines[0] == "Theorem 1"
        assert "n" in lines[1] and "rank" in lines[1]
        assert len(lines) == 5

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header
        assert header.index("c") < header.index("a")

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert out  # no crash

    def test_floatfmt(self):
        out = format_table([{"x": 1.23456}], floatfmt=".4f")
        assert "1.2346" in out

    def test_bools_render_as_words(self):
        out = format_table([{"ok": True}])
        assert "True" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series([1, 2], [10.0, 20.0], x_label="t", y_label="rank")
        assert "t" in out and "rank" in out
        assert "10.00" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1, 2])
