"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult, make_reducer, run_seeds, sweep


class TestExperimentResult:
    def test_column_extraction(self):
        res = ExperimentResult("demo", rows=[{"x": 1}, {"x": 2}])
        assert list(res.column("x")) == [1, 2]
        assert "demo" in repr(res)


class TestRunSeeds:
    def test_runs_each_seed(self):
        outputs = run_seeds(lambda s: s * 2, [1, 2, 3])
        assert outputs == [2, 4, 6]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(lambda s: s, [])


class TestSweep:
    def test_averages_numeric_outputs(self):
        def fn(n, seed):
            return {"value": n * 10 + seed, "tag": f"n{n}"}

        rows = sweep(fn, "n", [1, 2], seeds=[0, 2])
        assert rows[0]["n"] == 1
        assert rows[0]["value"] == pytest.approx(11.0)  # mean of 10, 12
        assert rows[0]["tag"] == "n1"  # non-numeric from first seed
        assert rows[1]["value"] == pytest.approx(21.0)

    def test_median_reduce(self):
        def fn(n, seed):
            return {"value": seed}

        rows = sweep(fn, "n", [1], seeds=[0, 1, 100], reduce="median")
        assert rows[0]["value"] == 1.0

    def test_unknown_reduce(self):
        with pytest.raises(ValueError):
            sweep(lambda n, seed: {}, "n", [1], seeds=[0], reduce="max")

    def test_percentile_reduce(self):
        def fn(n, seed):
            return {"value": seed}

        rows = sweep(fn, "n", [1], seeds=list(range(101)), reduce="p95")
        assert rows[0]["value"] == pytest.approx(95.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            make_reducer("p101")
        with pytest.raises(ValueError):
            make_reducer("pxx")
        assert make_reducer("p50")([1.0, 2.0, 3.0]) == 2.0

    def test_with_sd_adds_companion_columns(self):
        def fn(n, seed):
            return {"value": seed, "tag": f"n{n}"}

        rows = sweep(fn, "n", [1], seeds=[0, 2, 4], with_sd=True)
        assert rows[0]["value"] == pytest.approx(2.0)
        assert rows[0]["value_sd"] == pytest.approx(2.0)  # sd of 0,2,4 (ddof=1)
        assert "tag_sd" not in rows[0]  # non-numeric columns get no sd

    def test_with_sd_single_seed_is_zero(self):
        rows = sweep(lambda n, seed: {"value": seed}, "n", [1], seeds=[3], with_sd=True)
        assert rows[0]["value_sd"] == 0.0

    def test_fixed_kwargs_passed(self):
        def fn(n, seed, offset):
            return {"value": n + offset}

        rows = sweep(fn, "n", [1], seeds=[0], offset=100)
        assert rows[0]["value"] == 101.0
