"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    ExperimentResult,
    make_reducer,
    run_seeds,
    sweep,
    sweep_cells,
)


def parity_fn(n, seed):
    """Module-level (worker-safe) fn with numeric, bool, and text columns."""
    return {"value": n * 10 + seed, "parity_ok": seed != 3, "tag": f"n{n}"}


class TestExperimentResult:
    def test_column_extraction(self):
        res = ExperimentResult("demo", rows=[{"x": 1}, {"x": 2}])
        assert list(res.column("x")) == [1, 2]
        assert "demo" in repr(res)

    def test_ragged_rows_error_names_the_row(self):
        res = ExperimentResult("demo", rows=[{"x": 1}, {"y": 2}, {"x": 3}])
        with pytest.raises(KeyError, match=r"row 1 .*'demo'.* no column 'x'"):
            res.column("x")
        with pytest.raises(KeyError, match=r"row keys: \['y'\]"):
            res.column("x")


class TestRunSeeds:
    def test_runs_each_seed(self):
        outputs = run_seeds(lambda s: s * 2, [1, 2, 3])
        assert outputs == [2, 4, 6]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(lambda s: s, [])


class TestSweep:
    def test_averages_numeric_outputs(self):
        def fn(n, seed):
            return {"value": n * 10 + seed, "tag": f"n{n}"}

        rows = sweep(fn, "n", [1, 2], seeds=[0, 2])
        assert rows[0]["n"] == 1
        assert rows[0]["value"] == pytest.approx(11.0)  # mean of 10, 12
        assert rows[0]["tag"] == "n1"  # non-numeric from first seed
        assert rows[1]["value"] == pytest.approx(21.0)

    def test_median_reduce(self):
        def fn(n, seed):
            return {"value": seed}

        rows = sweep(fn, "n", [1], seeds=[0, 1, 100], reduce="median")
        assert rows[0]["value"] == 1.0

    def test_unknown_reduce(self):
        with pytest.raises(ValueError):
            sweep(lambda n, seed: {}, "n", [1], seeds=[0], reduce="max")

    def test_percentile_reduce(self):
        def fn(n, seed):
            return {"value": seed}

        rows = sweep(fn, "n", [1], seeds=list(range(101)), reduce="p95")
        assert rows[0]["value"] == pytest.approx(95.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            make_reducer("p101")
        with pytest.raises(ValueError):
            make_reducer("pxx")
        assert make_reducer("p50")([1.0, 2.0, 3.0]) == 2.0

    def test_with_sd_adds_companion_columns(self):
        def fn(n, seed):
            return {"value": seed, "tag": f"n{n}"}

        rows = sweep(fn, "n", [1], seeds=[0, 2, 4], with_sd=True)
        assert rows[0]["value"] == pytest.approx(2.0)
        assert rows[0]["value_sd"] == pytest.approx(2.0)  # sd of 0,2,4 (ddof=1)
        assert "tag_sd" not in rows[0]  # non-numeric columns get no sd

    def test_with_sd_single_seed_is_zero(self):
        rows = sweep(lambda n, seed: {"value": seed}, "n", [1], seeds=[3], with_sd=True)
        assert rows[0]["value_sd"] == 0.0

    def test_fixed_kwargs_passed(self):
        def fn(n, seed, offset):
            return {"value": n + offset}

        rows = sweep(fn, "n", [1], seeds=[0], offset=100)
        assert rows[0]["value"] == 101.0


class TestBoolColumns:
    """Regression: flags must never be mean-reduced into floats."""

    def test_flags_are_not_averaged(self):
        # Seeds 1,2,4 pass, seed 3 fails: the old code averaged the
        # column to 0.75 because isinstance(True, int) holds.
        rows = sweep(parity_fn, "n", [1], seeds=[1, 2, 3, 4])
        assert rows[0]["parity_ok"] is False  # all(), and stays a bool
        assert not isinstance(rows[0]["parity_ok"], float)
        assert rows[0]["parity_ok_seeds"] == [True, True, False, True]

    def test_unanimous_flags_stay_scalar(self):
        rows = sweep(parity_fn, "n", [1], seeds=[1, 2])
        assert rows[0]["parity_ok"] is True
        assert "parity_ok_seeds" not in rows[0]

    def test_numpy_bools_treated_as_flags(self):
        def fn(n, seed):
            return {"ok": np.bool_(seed != 1)}

        rows = sweep(fn, "n", [1], seeds=[0, 1])
        assert rows[0]["ok"] is False

    def test_flags_get_no_sd_column(self):
        rows = sweep(parity_fn, "n", [1], seeds=[1, 3], with_sd=True)
        assert "parity_ok_sd" not in rows[0]
        assert "value_sd" in rows[0]


class TestKeySetValidation:
    """Regression: ragged per-seed dicts must fail loudly, naming the seed."""

    def test_extra_key_names_the_seed(self):
        def fn(n, seed):
            row = {"value": seed}
            if seed == 3:
                row["surprise"] = 1
            return row

        with pytest.raises(ValueError, match=r"seed 3 extra keys \['surprise'\]"):
            sweep(fn, "n", [1], seeds=[0, 3])

    def test_missing_key_names_the_seed_and_keys(self):
        def fn(n, seed):
            return {"value": seed} if seed != 2 else {}

        with pytest.raises(ValueError, match=r"seed 2 missing keys \['value'\]"):
            sweep(fn, "n", [1], seeds=[0, 2])


class TestOrchestratedSweep:
    def test_workers_match_serial(self):
        serial = sweep(parity_fn, "n", [1, 2], seeds=[1, 2])
        parallel = sweep(parity_fn, "n", [1, 2], seeds=[1, 2], workers=2)
        assert parallel == serial

    def test_cache_dir_resumes_and_writes_manifest(self, tmp_path):
        manifest_path = tmp_path / "run.manifest.json"
        kwargs = dict(seeds=[1, 2], cache_dir=tmp_path / "cells")
        first = sweep(parity_fn, "n", [1, 2], **kwargs)
        second = sweep(
            parity_fn, "n", [1, 2], manifest_path=manifest_path, **kwargs
        )
        assert second == first
        assert manifest_path.exists()
        from repro.orchestrate import RunManifest

        manifest = RunManifest.read(manifest_path)
        assert manifest.cache_hits == 4 and manifest.cache_misses == 0

    def test_sweep_cells_returns_unreduced_grid(self):
        run = sweep_cells(parity_fn, "n", [1, 2], [1, 2])
        assert [r.payload["value"] for r in run.results] == [11, 12, 21, 22]
        assert run.manifest.grid == {"n": [1, 2]}
