"""Tests for the chaos layer: fault specs, injection, watchdog, leases."""

import pytest

from repro.sim.engine import CONTROL_TID, DeadlockError, Engine, LivelockError
from repro.sim.faults import (
    CrashStop,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    LockHolderPreempt,
    LockHolderStall,
)
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import (
    Acquire,
    Delay,
    GuardedWrite,
    Holding,
    Release,
    TryAcquire,
    Write,
)


class TestFaultSpecs:
    def test_crash_stop_validation(self):
        with pytest.raises(ValueError):
            CrashStop(at=-1.0, thread=0)

    def test_delay_spike_validation(self):
        with pytest.raises(ValueError):
            DelaySpike(prob=1.5, cycles=10)
        with pytest.raises(ValueError):
            DelaySpike(prob=0.5, cycles=0)
        with pytest.raises(ValueError):
            DelaySpike(prob=0.5, cycles=10, start=5.0, stop=5.0)

    def test_lock_holder_preempt_validation(self):
        with pytest.raises(ValueError):
            LockHolderPreempt(prob=-0.1, cycles=10)

    def test_lock_holder_stall_validation(self):
        with pytest.raises(ValueError):
            LockHolderStall(at=1.0, duration=0)
        with pytest.raises(ValueError):
            LockHolderStall(at=1.0, duration=10, min_locks=0)
        with pytest.raises(ValueError):
            LockHolderStall(at=1.0, duration=10, retry_every=0)

    def test_plan_rejects_unknown_specs(self):
        with pytest.raises(TypeError):
            FaultPlan(["not-a-fault"])

    def test_plan_splits_triggers_from_stochastic(self):
        crash = CrashStop(at=10.0, thread=0)
        spike = DelaySpike(prob=0.1, cycles=5)
        plan = FaultPlan([crash, spike])
        assert plan.triggers == [crash]
        assert plan.stochastic == [spike]

    def test_injector_attaches_once(self):
        injector = FaultInjector(FaultPlan())
        injector.attach(Engine())
        with pytest.raises(RuntimeError):
            injector.attach(Engine())


class TestCrashStop:
    def test_crash_kills_thread_mid_run(self):
        cell = SimCell(0, name="c")

        def victim():
            for _ in range(100):
                yield Delay(10)
                yield Write(cell, (yield Delay(0)) or 1)
            return "survived"

        eng = Engine()
        tid = eng.spawn(victim(), name="victim")
        FaultInjector(FaultPlan([CrashStop(at=50.0, thread="victim")])).attach(eng)
        eng.run()
        assert eng.stats[tid].crashed
        assert eng.stats[tid].result is None
        assert eng.stats[tid].finished_at == pytest.approx(50.0)

    def test_crash_without_release_dead_holds_lock(self):
        lock = SimLock(name="l")
        probe_result = {}

        def victim():
            yield Acquire(lock)
            yield Delay(1000)
            yield Release(lock)

        def prober():
            yield Delay(500)
            probe_result["got"] = yield TryAcquire(lock)

        eng = Engine()
        vtid = eng.spawn(victim(), name="victim")
        eng.spawn(prober(), name="prober")
        FaultInjector(FaultPlan([CrashStop(at=100.0, thread="victim")])).attach(eng)
        eng.run()
        assert probe_result["got"] is False
        assert lock.held_by == vtid
        assert eng.locks_held_by(vtid) == [lock]

    def test_crash_with_release_hands_lock_off(self):
        lock = SimLock(name="l")
        probe_result = {}

        def victim():
            yield Acquire(lock)
            yield Delay(1000)
            yield Release(lock)

        def prober():
            yield Delay(500)
            probe_result["got"] = yield TryAcquire(lock)
            yield Release(lock)

        eng = Engine()
        eng.spawn(victim(), name="victim")
        eng.spawn(prober(), name="prober")
        FaultInjector(
            FaultPlan([CrashStop(at=100.0, thread="victim", release_locks=True)])
        ).attach(eng)
        eng.run()
        assert probe_result["got"] is True
        assert lock.held_by is None

    def test_crash_on_finished_thread_is_noop(self):
        def body():
            yield Delay(10)

        eng = Engine()
        tid = eng.spawn(body(), name="quick")
        injector = FaultInjector(
            FaultPlan([CrashStop(at=50.0, thread="quick")])
        ).attach(eng)

        def keepalive():
            yield Delay(100)

        eng.spawn(keepalive())
        eng.run()
        assert not eng.stats[tid].crashed
        assert injector.crashed_tids == []

    def test_crash_releases_waiter_slot(self):
        """A crashed thread parked on a lock leaves the wait queue."""
        lock = SimLock(name="l")

        def holder():
            yield Acquire(lock)
            yield Delay(1000)
            yield Release(lock)

        def waiter():
            yield Delay(10)
            yield Acquire(lock)
            yield Release(lock)

        eng = Engine()
        eng.spawn(holder(), name="holder")
        eng.spawn(waiter(), name="waiter")
        FaultInjector(FaultPlan([CrashStop(at=100.0, thread="waiter")])).attach(eng)
        eng.run()  # must not deadlock or hand the lock to a corpse
        assert lock.held_by is None
        assert not lock.waiters


class TestStochasticFaults:
    def test_delay_spike_slows_run(self):
        def body():
            for _ in range(200):
                yield Delay(10)

        def timed(plan):
            eng = Engine()
            eng.spawn(body())
            FaultInjector(plan).attach(eng)
            eng.run()
            return eng.now

        clean = timed(FaultPlan())
        spiky = timed(FaultPlan([DelaySpike(prob=0.2, cycles=1000)], rng=3))
        assert spiky > clean + 1000

    def test_delay_spike_window_respected(self):
        def body():
            for _ in range(100):
                yield Delay(10)

        eng = Engine()
        eng.spawn(body())
        injector = FaultInjector(
            FaultPlan([DelaySpike(prob=1.0, cycles=50, start=10_000.0)], rng=3)
        ).attach(eng)
        eng.run()
        assert injector.injected_stalls == {}

    def test_lock_holder_preempt_only_hits_holders(self):
        lock = SimLock(name="l")

        def lockless():
            for _ in range(100):
                yield Delay(10)

        eng = Engine()
        eng.spawn(lockless())
        injector = FaultInjector(
            FaultPlan([LockHolderPreempt(prob=1.0, cycles=500)], rng=3)
        ).attach(eng)
        eng.run()
        assert injector.injected_stalls == {}
        assert eng.now == pytest.approx(1000.0)

        def holder():
            yield Acquire(lock)
            for _ in range(10):
                yield Delay(10)
            yield Release(lock)

        # prob=1.0 would re-stall the deferred resume forever (an OS that
        # always preempts is a genuine livelock); use a fair coin.
        eng2 = Engine()
        eng2.spawn(holder())
        injector2 = FaultInjector(
            FaultPlan([LockHolderPreempt(prob=0.5, cycles=500)], rng=3)
        ).attach(eng2)
        eng2.run()
        assert injector2.injected_stalls["LockHolderPreempt"] > 0

    def test_fault_rng_determinism(self):
        def body():
            for _ in range(300):
                yield Delay(10)

        def run_once():
            eng = Engine()
            eng.spawn(body())
            injector = FaultInjector(
                FaultPlan([DelaySpike(prob=0.1, cycles=777)], rng=42)
            ).attach(eng)
            eng.run()
            return eng.now, injector.injected_stalls.get("DelaySpike", 0)

        assert run_once() == run_once()


class TestLockHolderStall:
    def test_stall_targets_heaviest_holder(self):
        a, b = SimLock(name="a"), SimLock(name="b")
        log = []

        def heavy():
            yield Acquire(a)
            yield Acquire(b)
            yield Delay(2_000)  # long window holding both locks
            log.append(("heavy-done", None))
            yield Release(b)
            yield Release(a)

        def light():
            yield Delay(10_000)

        eng = Engine()
        htid = eng.spawn(heavy(), name="heavy")
        eng.spawn(light(), name="light")
        injector = FaultInjector(
            FaultPlan([LockHolderStall(at=500.0, duration=5_000.0, min_locks=2)])
        ).attach(eng)
        eng.run()
        assert injector.fired_stalls == [(500.0, htid, 5_000.0)]
        assert eng.now >= 5_000.0

    def test_stall_rearms_until_holder_appears(self):
        lock = SimLock(name="l")

        def late_holder():
            yield Delay(2_000)
            yield Acquire(lock)
            yield Delay(100)
            yield Release(lock)
            yield Delay(10_000)

        eng = Engine()
        tid = eng.spawn(late_holder(), name="late")
        injector = FaultInjector(
            FaultPlan([LockHolderStall(at=0.0, duration=4_000.0, retry_every=100.0)])
        ).attach(eng)
        eng.run()
        assert [t for _, t, _ in injector.fired_stalls] == [tid]

    def test_control_events_dropped_when_run_over(self):
        def body():
            yield Delay(10)

        eng = Engine()
        eng.spawn(body())
        FaultInjector(
            FaultPlan([CrashStop(at=10_000.0, thread="nobody")])
        ).attach(eng)
        eng.run()
        # The pending trigger must not stall completion or advance time.
        assert eng.now == pytest.approx(10_000.0) or eng.now == pytest.approx(10.0)


class TestWatchdog:
    def test_progress_budget_validation(self):
        with pytest.raises(ValueError):
            Engine(progress_budget=0)

    def test_livelock_raises_with_diagnostics(self):
        lock = SimLock(name="hot")

        def holder():
            yield Acquire(lock)
            yield Delay(1e9)
            yield Release(lock)

        def spinner():
            while True:
                ok = yield TryAcquire(lock)
                if ok:
                    yield Release(lock)
                    return
                yield Delay(100)

        eng = Engine(progress_budget=10_000.0)
        eng.spawn(holder(), name="holder")
        eng.spawn(spinner(), name="spinner")
        with pytest.raises(LivelockError) as err:
            eng.run()
        assert "hot" in str(err.value)
        assert "holder" in str(err.value)

    def test_progress_resets_watchdog(self):
        lock = SimLock(name="l")

        def worker():
            for _ in range(100):
                yield Acquire(lock)  # each grant is a progress marker
                yield Delay(900)
                yield Release(lock)

        eng = Engine(progress_budget=1_000.0)
        eng.spawn(worker())
        eng.run()  # never trips: progress happens every 900 cycles
        assert eng.now > 0


class TestDeadlockDiagnostics:
    def test_deadlock_error_names_cycle(self):
        a, b = SimLock(name="a"), SimLock(name="b")

        def alpha():
            yield Acquire(a)
            yield Delay(10)
            yield Acquire(b)
            yield Release(b)
            yield Release(a)

        def beta():
            yield Acquire(b)
            yield Delay(10)
            yield Acquire(a)
            yield Release(a)
            yield Release(b)

        eng = Engine()
        eng.spawn(alpha(), name="alpha")
        eng.spawn(beta(), name="beta")
        with pytest.raises(DeadlockError) as err:
            eng.run()
        exc = err.value
        assert exc.waits == {"alpha": "b", "beta": "a"}
        assert exc.holds == {"alpha": ["a"], "beta": ["b"]}
        assert exc.cycle in (
            ["alpha", "beta", "alpha"],
            ["beta", "alpha", "beta"],
        )
        assert "cycle:" in str(exc)

    def test_wait_on_crashed_holder_reported_without_cycle(self):
        lock = SimLock(name="l")

        def victim():
            yield Acquire(lock)
            yield Delay(1_000)
            yield Release(lock)

        def waiter():
            yield Delay(10)
            yield Acquire(lock)
            yield Release(lock)

        eng = Engine()
        eng.spawn(victim(), name="victim")
        eng.spawn(waiter(), name="waiter")
        FaultInjector(FaultPlan([CrashStop(at=100.0, thread="victim")])).attach(eng)
        with pytest.raises(DeadlockError) as err:
            eng.run()
        exc = err.value
        assert exc.waits == {"waiter": "l"}
        assert exc.cycle == []
        assert "victim [crashed]" in str(exc)


class TestLockLeases:
    def test_lease_validation(self):
        with pytest.raises(ValueError):
            SimLock(lease=0)

    def test_revocation_and_release_result(self):
        lock = SimLock(name="l", lease=100.0)
        seen = {}

        def staller():
            yield Acquire(lock)
            yield Delay(10_000)
            seen["holding"] = yield Holding(lock)
            seen["release"] = yield Release(lock)

        def prober():
            yield Delay(500)
            seen["probe"] = yield TryAcquire(lock)
            seen["probe_release"] = yield Release(lock)

        eng = Engine()
        eng.spawn(staller(), name="staller")
        eng.spawn(prober(), name="prober")
        eng.run()
        assert seen["probe"] is True  # lease expired -> revoked -> granted
        assert seen["probe_release"] is True
        assert seen["holding"] is False
        assert seen["release"] is False  # benign no-op, loss reported
        assert lock.revocations == 1

    def test_guarded_write_noop_after_revocation(self):
        lock = SimLock(name="l", lease=100.0)
        cell = SimCell("old", name="c")
        seen = {}

        def staller():
            yield Acquire(lock)
            yield Delay(10_000)
            seen["gw"] = yield GuardedWrite(cell, "stale", lock)
            yield Release(lock)

        def prober():
            yield Delay(500)
            ok = yield TryAcquire(lock)
            assert ok
            seen["gw2"] = yield GuardedWrite(cell, "fresh", lock)
            yield Release(lock)

        eng = Engine()
        eng.spawn(staller(), name="staller")
        eng.spawn(prober(), name="prober")
        eng.run()
        assert seen["gw"] is False
        assert seen["gw2"] is True
        assert cell.value == "fresh"

    def test_lease_hands_to_parked_waiter(self):
        lock = SimLock(name="l", lease=100.0)
        order = []

        def staller():
            yield Acquire(lock)
            yield Delay(10_000)
            order.append(("staller-release", (yield Release(lock))))

        def blocker():
            yield Delay(500)
            yield Acquire(lock)  # parks; woken by a third party's probe
            order.append(("blocker-got", True))
            yield Delay(10)
            yield Release(lock)

        def prober():
            yield Delay(1_000)
            got = yield TryAcquire(lock)  # triggers revocation for the waiter
            if got:
                yield Release(lock)

        eng = Engine()
        eng.spawn(staller(), name="staller")
        eng.spawn(blocker(), name="blocker")
        eng.spawn(prober(), name="prober")
        eng.run()
        assert ("blocker-got", True) in order
        assert ("staller-release", False) in order

    def test_no_revocation_before_lease_expires(self):
        lock = SimLock(name="l", lease=1e9)
        seen = {}

        def holder():
            yield Acquire(lock)
            yield Delay(1_000)
            seen["release"] = yield Release(lock)

        def prober():
            yield Delay(500)
            seen["probe"] = yield TryAcquire(lock)

        eng = Engine()
        eng.spawn(holder(), name="holder")
        eng.spawn(prober(), name="prober")
        eng.run()
        assert seen["probe"] is False
        assert seen["release"] is True
        assert lock.revocations == 0


class TestEngineHooks:
    def test_kill_unknown_tid_is_noop(self):
        eng = Engine()
        eng.kill(99)

    def test_thread_by_name(self):
        def body():
            yield Delay(10)

        eng = Engine()
        tid = eng.spawn(body(), name="worker-0")
        assert eng.thread_by_name("worker-0") == tid
        assert eng.thread_by_name("nope") is None
        eng.run()
        assert eng.thread_by_name("worker-0") is None  # finished

    def test_stall_defers_resume(self):
        def body():
            yield Delay(10)
            yield Delay(10)

        eng = Engine()
        tid = eng.spawn(body())
        eng.schedule_control(5.0, lambda e: e.stall(tid, 1_000.0))
        eng.run()
        assert eng.now == pytest.approx(1_015.0)

    def test_control_tid_constant(self):
        # The pseudo-tid must never collide with real thread ids.
        assert CONTROL_TID == -1

    def test_faulted_run_reproducible_end_to_end(self):
        lock = SimLock  # noqa: F841 — keep imports honest

        def run_once():
            l = SimLock(name="l")
            trace = []

            def worker(k):
                for _ in range(20):
                    ok = yield TryAcquire(l)
                    if ok:
                        yield Delay(25)
                        yield Release(l)
                    else:
                        yield Delay(40)
                trace.append((k, None))

            eng = Engine()
            for k in range(3):
                eng.spawn(worker(k), name=f"w{k}")
            FaultInjector(
                FaultPlan(
                    [
                        DelaySpike(prob=0.05, cycles=300),
                        LockHolderPreempt(prob=0.2, cycles=200),
                    ],
                    rng=9,
                )
            ).attach(eng)
            eng.run()
            return eng.now, eng.events_processed, tuple(trace)

        assert run_once() == run_once()
