"""Integration: the tracer attached to a full MultiQueue workload run."""

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.sim.workload import AlternatingWorkload


class TestTracedWorkload:
    def test_full_run_traced(self):
        eng = Engine()
        tracer = Tracer.attach(eng)
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        model.prefill(range(100))
        AlternatingWorkload(model, 3, 40, rng=2).spawn_on(eng)
        eng.run()
        counts = tracer.counts()
        # Every op acquires and releases a queue lock.
        assert counts["trylock"] >= counts["unlock"] > 0
        # Top-cell reads happen on the delete fast path.
        assert counts["read"] > 0
        # Timeline renders for all three workers.
        out = tracer.render_timeline(width=60)
        assert "T0" in out and "T2" in out

    def test_lock_timeline_alternates(self):
        """A specific queue lock's history alternates grant/release."""
        eng = Engine()
        tracer = Tracer.attach(eng)
        model = ConcurrentMultiQueue(eng, 2, rng=3)
        model.prefill(range(50))
        AlternatingWorkload(model, 2, 30, rng=4).spawn_on(eng)
        eng.run()
        timeline = tracer.lock_timeline(model._locks[0])
        events = [e for _t, _tid, e in timeline]
        # Between consecutive unlocks there is at least one (try)lock.
        unlock_positions = [i for i, e in enumerate(events) if e == "unlock"]
        for a, b in zip(unlock_positions, unlock_positions[1:]):
            assert any(events[i] in ("lock", "trylock") for i in range(a + 1, b))

    def test_tracing_does_not_change_results(self):
        """Attaching a tracer must not perturb the simulation (no probe
        effect — unlike the paper's timestamp methodology)."""

        def run(traced):
            eng = Engine()
            if traced:
                Tracer.attach(eng)
            model = ConcurrentMultiQueue(eng, 4, rng=5)
            model.prefill(range(100))
            AlternatingWorkload(model, 3, 40, rng=6).spawn_on(eng)
            eng.run()
            return eng.now, model.total_size()

        assert run(False) == run(True)
