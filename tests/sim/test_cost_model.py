"""Tests for the cost model."""

import math

import pytest

from repro.sim.cost_model import CostModel


class TestCostModel:
    def test_pq_cost_grows_with_size(self):
        cm = CostModel()
        assert cm.pq_op_cost(10) < cm.pq_op_cost(10_000)

    def test_pq_cost_log_shape(self):
        cm = CostModel(pq_base=0.0, pq_per_level=1.0)
        assert cm.pq_op_cost(62) == pytest.approx(math.log2(64))

    def test_scaled(self):
        cm = CostModel()
        doubled = cm.scaled(2.0)
        assert doubled.cas == 2 * cm.cas
        assert doubled.cache_transfer == 2 * cm.cache_transfer
        # Original unchanged.
        assert cm.cas == CostModel().cas

    def test_with_contention(self):
        cm = CostModel().with_contention(500.0)
        assert cm.cache_transfer == 500.0
        assert cm.cas == CostModel().cas
