"""Tests for the simulated barrier."""

import pytest

from repro.sim.engine import DeadlockError, Engine
from repro.sim.primitives import SimBarrier
from repro.sim.syscalls import BarrierWait, Delay


class TestBarrier:
    def test_parties_validation(self):
        with pytest.raises(ValueError):
            SimBarrier(0)

    def test_wrong_target_type(self):
        def body():
            yield BarrierWait("not-a-barrier")

        eng = Engine()
        eng.spawn(body())
        with pytest.raises(TypeError):
            eng.run()

    def test_all_wait_for_last(self):
        barrier = SimBarrier(3)
        release_times = []

        def body(delay, engine):
            yield Delay(delay)
            yield BarrierWait(barrier)
            release_times.append(engine.now)

        eng = Engine()
        for delay in (10, 50, 200):
            eng.spawn(body(delay, eng))
        eng.run()
        assert len(release_times) == 3
        # Everyone released together, after the slowest arriver.
        assert len(set(release_times)) == 1
        assert release_times[0] > 200

    def test_arrival_index_identifies_leader(self):
        barrier = SimBarrier(2)
        indices = []

        def body(delay):
            yield Delay(delay)
            idx = yield BarrierWait(barrier)
            indices.append(idx)

        eng = Engine()
        eng.spawn(body(5))
        eng.spawn(body(99))
        eng.run()
        assert sorted(indices) == [0, 1]

    def test_cyclic_reuse(self):
        barrier = SimBarrier(2)
        rounds = []

        def body(engine):
            for _ in range(3):
                yield BarrierWait(barrier)
                rounds.append(engine.now)

        eng = Engine()
        eng.spawn(body(eng))
        eng.spawn(body(eng))
        eng.run()
        assert barrier.generation == 3
        assert len(rounds) == 6

    def test_single_party_never_blocks(self):
        barrier = SimBarrier(1)

        def body():
            idx = yield BarrierWait(barrier)
            return idx

        eng = Engine()
        tid = eng.spawn(body())
        eng.run()
        assert eng.stats[tid].result == 0

    def test_missing_party_deadlocks(self):
        barrier = SimBarrier(2)

        def body():
            yield BarrierWait(barrier)

        eng = Engine()
        eng.spawn(body())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_repr(self):
        assert "parties=2" in repr(SimBarrier(2, name="b"))
