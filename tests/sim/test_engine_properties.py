"""Property tests of the simulation engine's concurrency semantics.

Hypothesis generates random thread programs; the engine must uphold the
invariants any real machine would: mutual exclusion under locks,
atomicity of CAS increments, determinism, and monotone time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import CAS, Acquire, Delay, Read, Release, TryAcquire, Write


@settings(max_examples=40, deadline=None)
@given(
    n_threads=st.integers(min_value=1, max_value=6),
    sections=st.integers(min_value=1, max_value=8),
    delays=st.lists(st.floats(min_value=0, max_value=50), min_size=1, max_size=8),
)
def test_mutual_exclusion_blocking(n_threads, sections, delays):
    """No two threads are ever inside the same lock simultaneously."""
    lock = SimLock()
    inside = {"count": 0, "violated": False}

    def worker(k):
        for s in range(sections):
            yield Acquire(lock)
            inside["count"] += 1
            if inside["count"] > 1:
                inside["violated"] = True
            yield Delay(delays[(k + s) % len(delays)])
            inside["count"] -= 1
            yield Release(lock)

    eng = Engine()
    for k in range(n_threads):
        eng.spawn(worker(k))
    eng.run()
    assert not inside["violated"]
    assert not lock.locked


@settings(max_examples=40, deadline=None)
@given(
    n_threads=st.integers(min_value=1, max_value=6),
    increments=st.integers(min_value=1, max_value=20),
)
def test_cas_increment_atomicity(n_threads, increments):
    """CAS-retry counters never lose updates, whatever the interleaving."""
    counter = SimCell(0)

    def worker():
        done = 0
        while done < increments:
            v = yield Read(counter)
            ok = yield CAS(counter, v, v + 1)
            if ok:
                done += 1

    eng = Engine()
    for _ in range(n_threads):
        eng.spawn(worker())
    eng.run()
    assert counter.value == n_threads * increments


@settings(max_examples=30, deadline=None)
@given(
    n_threads=st.integers(min_value=2, max_value=5),
    tries=st.integers(min_value=1, max_value=12),
)
def test_try_lock_critical_sections_exclusive(n_threads, tries):
    """TryAcquire-based critical sections are also exclusive."""
    lock = SimLock()
    inside = {"count": 0, "violated": False, "acquired": 0}

    def worker():
        for _ in range(tries):
            ok = yield TryAcquire(lock)
            if not ok:
                yield Delay(7)
                continue
            inside["acquired"] += 1
            inside["count"] += 1
            if inside["count"] > 1:
                inside["violated"] = True
            yield Delay(13)
            inside["count"] -= 1
            yield Release(lock)

    eng = Engine()
    for _ in range(n_threads):
        eng.spawn(worker())
    eng.run()
    assert not inside["violated"]
    assert inside["acquired"] == lock.acquisitions


@settings(max_examples=25, deadline=None)
@given(
    program=st.lists(
        st.tuples(st.integers(0, 2), st.floats(min_value=0, max_value=30)),
        min_size=1,
        max_size=20,
    ),
    n_threads=st.integers(min_value=1, max_value=4),
)
def test_determinism_under_random_programs(program, n_threads):
    """Identical programs produce identical final times and cell states."""

    def run_once():
        cell = SimCell(0)
        lock = SimLock()

        def worker(k):
            for op, amount in program:
                if op == 0:
                    yield Delay(amount + k)
                elif op == 1:
                    v = yield Read(cell)
                    yield Write(cell, v + 1)
                else:
                    yield Acquire(lock)
                    yield Delay(amount)
                    yield Release(lock)

        eng = Engine()
        for k in range(n_threads):
            eng.spawn(worker(k))
        eng.run()
        return eng.now, cell.value, eng.events_processed

    assert run_once() == run_once()


@settings(max_examples=25, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_observed_time_monotone(delays):
    """A thread never observes time going backwards."""
    observed = []

    def worker(engine):
        for d in delays:
            yield Delay(d)
            observed.append(engine.now)

    eng = Engine()
    eng.spawn(worker(eng))
    eng.run()
    assert observed == sorted(observed)
    assert eng.now == pytest.approx(sum(delays))


@settings(max_examples=20, deadline=None)
@given(
    n_threads=st.integers(min_value=2, max_value=5),
    ops=st.integers(min_value=1, max_value=15),
)
def test_hot_cell_time_lower_bound(n_threads, ops):
    """A contended cell enforces at least one transfer per ownership
    change — simulated time respects the serialization floor."""
    cost = CostModel()
    cell = SimCell(0)
    changes = {"count": 0, "last": None}

    def worker(k):
        for _ in range(ops):
            yield Read(cell)
            if changes["last"] != k:
                changes["count"] += 1
                changes["last"] = k

    eng = Engine(cost)
    for k in range(n_threads):
        eng.spawn(worker(k))
    eng.run()
    ownership_changes = max(changes["count"] - 1, 0)
    assert eng.now >= ownership_changes * cost.cache_transfer - 1e-6
