"""Tests for contention metrics."""

import pytest

from repro.concurrent import ConcurrentMultiQueue, KLSMPQ, LindenJonssonPQ
from repro.sim.engine import Engine
from repro.sim.metrics import cell_report, contention_summary, hottest_cells, lock_report
from repro.sim.primitives import SimCell, SimLock
from repro.sim.workload import AlternatingWorkload


class TestReports:
    def test_cell_report_fields(self):
        cell = SimCell(0, name="hot")
        cell.accesses, cell.transfers = 10, 4
        (row,) = cell_report([cell])
        assert row["cell"] == "hot"
        assert row["contention"] == pytest.approx(0.4)

    def test_lock_report_fields(self):
        lock = SimLock(name="guard")
        lock.acquisitions, lock.failed_tries = 6, 2
        (row,) = lock_report([lock])
        assert row["failure"] == pytest.approx(0.25)

    def test_hottest_cells_sorted(self):
        cells = []
        for k in range(4):
            c = SimCell(0, name=f"c{k}")
            c.transfers = k
            c.accesses = 10
            cells.append(c)
        top = hottest_cells(cells, top=2)
        assert [r["cell"] for r in top] == ["c3", "c2"]
        with pytest.raises(ValueError):
            hottest_cells(cells, top=0)


class TestContentionSummary:
    def _run(self, make_model, threads=4):
        eng = Engine()
        model = make_model(eng)
        model.prefill(range(500))
        AlternatingWorkload(model, threads, 100, rng=1).spawn_on(eng)
        eng.run()
        return contention_summary(model)

    def test_multiqueue_summary(self):
        s = self._run(lambda eng: ConcurrentMultiQueue(eng, 8, rng=2))
        assert s["locks"] == 8
        assert s["acquisitions"] > 0
        assert 0 <= s["lock_failure_ratio"] < 1
        assert s["cell_accesses"] > 0

    def test_lj_head_is_hot(self):
        eng = Engine()
        model = LindenJonssonPQ(eng, rng=3)
        model.prefill(range(500))
        AlternatingWorkload(model, 8, 100, rng=4).spawn_on(eng)
        eng.run()
        s = contention_summary(model)
        assert s["cell_contention_ratio"] > 0.5  # the head ping-pongs

    def test_klsm_summary_includes_shared_lock(self):
        s = self._run(lambda eng: KLSMPQ(eng, relaxation=16, rng=5))
        assert s["locks"] == 1
        assert s["acquisitions"] > 0

    def test_unknown_model_zeros(self):
        class Dummy:
            pass

        s = contention_summary(Dummy())
        assert s["acquisitions"] == 0
        assert s["cell_contention_ratio"] == 0.0
