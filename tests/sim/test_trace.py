"""Tests for the execution tracer."""

import pytest

from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import CAS, Acquire, Delay, Read, Release, Write
from repro.sim.trace import Tracer


def _run_traced(bodies):
    eng = Engine()
    tracer = Tracer.attach(eng)
    for body in bodies:
        eng.spawn(body)
    eng.run()
    return tracer


class TestRecording:
    def test_records_all_kinds(self):
        cell = SimCell(0, name="c")
        lock = SimLock(name="l")

        def body():
            yield Delay(10)
            yield Read(cell)
            yield Write(cell, 1)
            yield CAS(cell, 1, 2)
            yield Acquire(lock)
            yield Release(lock)

        tracer = _run_traced([body()])
        kinds = [r.kind for r in tracer.records]
        assert kinds == ["delay", "read", "write", "cas", "lock", "unlock"]
        assert tracer.counts()["read"] == 1

    def test_by_thread_and_kind(self):
        def body():
            yield Delay(5)
            yield Delay(5)

        tracer = _run_traced([body(), body()])
        assert len(tracer.by_thread(0)) == 2
        assert len(tracer.by_kind("delay")) == 4

    def test_timestamps_non_decreasing(self):
        def body():
            for _ in range(5):
                yield Delay(7)

        tracer = _run_traced([body()])
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_lock_timeline(self):
        lock = SimLock(name="guard")

        def body():
            yield Acquire(lock)
            yield Delay(10)
            yield Release(lock)

        tracer = _run_traced([body()])
        timeline = tracer.lock_timeline(lock)
        assert [event for _t, _tid, event in timeline] == ["lock", "unlock"]

    def test_max_records_drops(self):
        def body():
            for _ in range(10):
                yield Delay(1)

        eng = Engine()
        tracer = Tracer.attach(eng, max_records=3)
        eng.spawn(body())
        eng.run()
        assert len(tracer.records) == 3
        assert tracer.dropped == 7

    def test_max_records_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)


class TestRendering:
    def test_empty_trace(self):
        assert "(empty trace)" in Tracer().render_timeline()

    def test_timeline_lanes(self):
        def body():
            yield Delay(50)
            yield Delay(50)

        tracer = _run_traced([body(), body()])
        out = tracer.render_timeline(width=40)
        assert "T0  |" in out
        assert "T1  |" in out
        assert "delay" in out  # legend

    def test_kind_filter(self):
        cell = SimCell(0, name="c")

        def body():
            yield Delay(10)
            yield Read(cell)

        tracer = _run_traced([body()])
        out = tracer.render_timeline(width=20, kinds=["read"])
        # Delay markers filtered out of the lane.
        lane = [l for l in out.splitlines() if l.startswith("T0")][0]
        assert "." not in lane
        assert "r" in lane

    def test_repr(self):
        assert "records=0" in repr(Tracer())
